"""Command-line entry point: ``python -m repro.obs``.

Trace analysis for the span tracer's JSONL files::

    python -m repro.obs report trace.jsonl           # profile tree
    python -m repro.obs report trace.jsonl --top 80  # deeper tree
    python -m repro.obs report a.jsonl --diff b.jsonl  # A/B two traces

The profile attributes every traced second to a span path (cumulative
and self time), prints per-span-kind duration histograms, and in
``--diff`` mode compares two traces span kind by span kind — the tool
that turns a BENCH regression into a named hot span.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.obs.report import build_profile, load_events, render_diff, render_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Analyse span traces produced by --trace / REPRO_TRACE.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="profile tree + duration histograms for a trace file",
        description="Aggregate a JSONL span trace into a self-time/"
        "cumulative-time profile tree.",
    )
    report.add_argument("trace", help="trace file written by --trace/REPRO_TRACE")
    report.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="compare against a second trace instead of printing the tree "
        "(OTHER is 'B', the positional trace is 'A')",
    )
    report.add_argument(
        "--top", type=int, default=40, metavar="N",
        help="maximum tree rows / diff rows to print (default 40)",
    )
    report.set_defaults(handler=_cmd_report)
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    profile = build_profile(load_events(args.trace))
    if args.diff:
        other = build_profile(load_events(args.diff))
        print(render_diff(profile, other, top=args.top))
    else:
        print(render_report(profile, top=args.top))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.obs``); exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
