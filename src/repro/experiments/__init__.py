"""Evaluation subsystem: scenario registry and experiment runner (paper §6).

The paper's evaluation compares network-aware placement against baselines
across many applications and cloud conditions.  This package makes that
comparison a first-class, runnable artifact:

* :mod:`repro.experiments.scenarios` — named, parameterised end-to-end
  scenarios composing the workload generator, synthetic providers, and the
  placement stack;
* :mod:`repro.experiments.placers` — the placement-algorithm grid;
* :mod:`repro.experiments.trials` — the unit of work: one seeded
  (scenario, placer, trial) cell, picklable and JSON-serialisable;
* :mod:`repro.experiments.backends` — pluggable execution backends
  (``inline``, ``process``, ``subprocess-pool``) behind a registry;
* :mod:`repro.experiments.cache` — the persistent content-addressed
  result store, keyed by (scenario, params, placer, trial, seed,
  code_version);
* :mod:`repro.experiments.runner` — grid construction, cache lookup,
  backend dispatch, and assembly;
* :mod:`repro.experiments.results` — structured JSON results with
  speedup-over-baseline summaries (the Figure-9-style comparison);
* :mod:`repro.experiments.cli` — ``python -m repro.experiments``.
"""

from repro.experiments.backends import (
    BackendSpec,
    ExecutionBackend,
    backend_names,
    create_backend,
    get_backend,
    register_backend,
)
from repro.experiments.cache import CacheKey, ResultStore, code_version, tree_digest
from repro.experiments.placers import (
    PlacerSpec,
    get_placer,
    list_placers,
    placer_names,
    resolve_placer,
)
from repro.experiments.results import ExperimentResult, TrialRecord
from repro.experiments.runner import (
    DEFAULT_PLACERS,
    ExperimentConfig,
    ExperimentRunner,
    RunStats,
)
from repro.experiments.trials import WorkItem, run_trial, trial_seed
from repro.experiments.scenarios import (
    MODE_BATCH,
    MODE_SEQUENCE,
    MODE_SERVICE,
    ScenarioInstance,
    ScenarioSpec,
    ServiceSettings,
    fresh_provider,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)

__all__ = [
    "BackendSpec",
    "ExecutionBackend",
    "backend_names",
    "create_backend",
    "get_backend",
    "register_backend",
    "CacheKey",
    "ResultStore",
    "code_version",
    "tree_digest",
    "PlacerSpec",
    "get_placer",
    "list_placers",
    "placer_names",
    "resolve_placer",
    "ExperimentResult",
    "TrialRecord",
    "DEFAULT_PLACERS",
    "ExperimentConfig",
    "ExperimentRunner",
    "RunStats",
    "WorkItem",
    "run_trial",
    "trial_seed",
    "MODE_BATCH",
    "MODE_SEQUENCE",
    "MODE_SERVICE",
    "ScenarioInstance",
    "ScenarioSpec",
    "ServiceSettings",
    "fresh_provider",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario",
    "scenario_names",
]
