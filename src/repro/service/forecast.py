"""Next-epoch rate forecasts from the §6.1 predictors.

The service records, per ordered VM pair, the rate observed during each
completed epoch, and forecasts the coming epoch by running one of the
paper's predictors over that series: ``previous-hour`` (last epoch's
value), ``time-of-day`` (mean of the same epoch-of-day on prior days),
``combined`` (average of the two, the paper's best), or ``stale`` (the
hour-0 value, the frozen-profile control every offline scenario implicitly
uses).  The ``oracle`` predictor is resolved by the engine — it reads true
rates off the ground-truth timeline and never measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.network_profile import NetworkProfile
from repro.errors import ServiceError
from repro.workloads.predictability import (
    combined_predictor,
    previous_hour_predictor,
    time_of_day_predictor,
)

#: Predictors the forecaster itself can run (the engine adds ``oracle``).
HISTORY_PREDICTORS: Tuple[str, ...] = (
    "previous-hour", "time-of-day", "combined", "stale",
)

#: Every predictor a service session accepts.
PREDICTOR_NAMES: Tuple[str, ...] = HISTORY_PREDICTORS + ("oracle",)

_PREDICTOR_FNS = {
    "previous-hour": previous_hour_predictor,
    "time-of-day": time_of_day_predictor,
    "combined": combined_predictor,
}


def validate_predictor(name: str) -> str:
    """Return ``name`` if it is a known predictor, raise otherwise."""
    if name not in PREDICTOR_NAMES:
        raise ServiceError(
            f"unknown predictor {name!r}; known: {list(PREDICTOR_NAMES)}"
        )
    return name


class RateForecaster:
    """Per-pair epoch series plus §6.1 prediction on top of them.

    The series are epoch-indexed; epochs in which a pair went unmeasured
    carry the last known value forward (the cache serves the same value, so
    the series reflects what the service believed).
    """

    def __init__(self, predictor: str = "combined"):
        if predictor not in HISTORY_PREDICTORS:
            raise ServiceError(
                f"forecaster predictor must be one of {list(HISTORY_PREDICTORS)}, "
                f"got {predictor!r}"
            )
        self.predictor = predictor
        self._series: Dict[Tuple[str, str], List[float]] = {}
        self._recorded_through = -1

    @property
    def epochs_recorded(self) -> int:
        """How many completed epochs the history covers."""
        return self._recorded_through + 1

    def record_epoch(self, epoch: int, profile: NetworkProfile) -> None:
        """Store the rates observed during ``epoch`` (monotonic, gap-free).

        Args:
            epoch: the *completed* epoch index the observations belong to.
            profile: the cache's merged view at the end of that epoch.
        """
        if epoch != self._recorded_through + 1:
            raise ServiceError(
                f"epochs must be recorded in order; expected "
                f"{self._recorded_through + 1}, got {epoch}"
            )
        for pair, rate in profile.rates_bps.items():
            series = self._series.setdefault(pair, [])
            while len(series) < epoch:
                # Pair first observed mid-session: backfill with its first
                # observation so predictor indices line up with epochs.
                series.append(rate)
            series.append(rate)
        self._recorded_through = epoch

    def forecast_pair(self, pair: Tuple[str, str], epoch: int) -> Optional[float]:
        """Forecast one pair's rate for ``epoch`` (``None`` without history)."""
        series = self._series.get(pair)
        if not series:
            return None
        history = series[: min(epoch, len(series))]
        if not history:
            return None
        if self.predictor == "stale":
            return history[0]
        predicted = _PREDICTOR_FNS[self.predictor](history, len(history))
        return predicted if predicted is not None else history[-1]

    def forecast_profile(
        self,
        current: NetworkProfile,
        epoch: int,
    ) -> NetworkProfile:
        """The profile the placer should see for placements during ``epoch``.

        Every pair of ``current`` is replaced by its forecast; pairs with no
        recorded history yet (epoch 0, or a freshly added VM) keep the
        measured value, so the degenerate first-epoch case reduces to the
        classic measure-then-place flow.
        """
        rates: Dict[Tuple[str, str], float] = {}
        for pair, measured in current.rates_bps.items():
            predicted = self.forecast_pair(pair, epoch)
            rates[pair] = max(predicted, 1.0) if predicted is not None else measured
        return NetworkProfile(
            vms=list(current.vms),
            rates_bps=rates,
            intra_vm_rate_bps=current.intra_vm_rate_bps,
            sharing_model=current.sharing_model,
            measured_at=current.measured_at,
            measurement_duration_s=current.measurement_duration_s,
        )
