"""Seeded churn sessions: provider + timeline + arrival stream in one call.

A *churn session* is the service's unit of evaluation: a fresh provider
with a drifting ground-truth timeline attached, an arrival stream of
generated applications, and one :class:`~repro.service.engine.PlacementService`
run over them.  :func:`build_churn_session` is a pure function of ``(seed,
params)`` — the CLI, the ``service-churn`` scenario, the ``service_churn``
benchmark, and the tests all realise identical sessions from it, and two
predictors compared on the same seed face the *same* network and
applications (paired comparison, as in §6).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from repro.cloud.provider import CloudProvider
from repro.cloud.registry import make_provider
from repro.core.placement.base import ClusterState, Placer
from repro.errors import ServiceError
from repro.faults import FaultTimeline, attach_faults, generate_faults
from repro.service.engine import PlacementService, ServiceReport
from repro.service.timeline import (
    DEFAULT_EPOCH_S,
    NetworkTimeline,
    attach_timeline,
    generate_timeline,
)
from repro.units import GBYTE
from repro.workloads.application import Application
from repro.workloads.generator import HPCloudWorkloadGenerator, WorkloadSpec

#: Epochs generated past the session horizon so draining flows stay on a
#: defined (still drifting) network.
TAIL_EPOCHS = 8

#: Seed offsets: the timeline, workload, and fault streams must not be
#: correlated with the provider's own RNG (which seeds VM host choices and
#: hose caps) or with each other.
_TIMELINE_SEED_SALT = 0x7117E
_WORKLOAD_SEED_SALT = 0xA9915
_FAULT_SEED_SALT = 0xFA0175


def build_churn_session(
    seed: int,
    n_vms: int = 8,
    hours: float = 6.0,
    drift: str = "random-walk",
    drift_strength: Optional[float] = None,
    apps_per_hour: float = 1.5,
    max_tasks: int = 6,
    provider_name: str = "ec2",
    epoch_s: float = DEFAULT_EPOCH_S,
    timeline_path: Optional[str] = None,
    faults: str = "none",
    fault_strength: Optional[float] = None,
    faults_path: Optional[str] = None,
) -> Tuple[CloudProvider, ClusterState, List[Application], NetworkTimeline]:
    """Realise one seeded churn session (timeline already attached).

    Args:
        seed: drives the provider, the timeline drift, and the workload.
        n_vms: tenant VMs.
        hours: admission horizon in epochs.
        drift: timeline drift generator (ignored when ``timeline_path`` is
            given).
        drift_strength: generator knob; ``None`` uses the drift's default.
        apps_per_hour: Poisson arrival rate of the application stream.
        max_tasks: cap on generated application size (keeps admissions
            CPU-feasible on small clusters).
        provider_name: registered cloud provider.
        epoch_s: epoch length (the tests shrink it to keep sessions fast).
        timeline_path: load a recorded timeline from disk instead of
            generating one (its VM names must match the provider's).
        faults: fault-timeline generator (``"none"`` attaches nothing, so
            the session is bit-identical to a pre-faults one).
        fault_strength: generator knob; ``None`` uses the generator's
            default.
        faults_path: load a recorded fault timeline from disk instead of
            generating one (overrides ``faults``; its VM names must be a
            subset of the provider's).
    """
    if n_vms < 2:
        raise ServiceError("a churn session needs at least two VMs")
    if hours <= 0:
        raise ServiceError("hours must be positive")
    if apps_per_hour <= 0:
        raise ServiceError("apps_per_hour must be positive")

    # Colocation off: same-host VM pairs advertise the 4 Gbit/s intra-host
    # path, which lures the myopic greedy chain onto whatever VM happens to
    # share a host — luck that would drown the predictor comparison the
    # churn session exists to make.
    provider = make_provider(
        provider_name, seed=seed, colocation_probability=0.0
    )
    provider.request_vms(n_vms)
    cluster = ClusterState.from_vms(provider.vms())

    if timeline_path is not None:
        timeline = NetworkTimeline.load(timeline_path)
    else:
        n_epochs = int(hours) + TAIL_EPOCHS
        timeline = generate_timeline(
            provider.base_hose_rates(),
            n_epochs=n_epochs,
            drift=drift,
            seed=seed ^ _TIMELINE_SEED_SALT,
            strength=drift_strength,
            epoch_s=epoch_s,
        )
    attach_timeline(provider, timeline)

    if faults_path is not None:
        fault_timeline = FaultTimeline.load(faults_path)
    else:
        # Fault events land inside the admission horizon (not the drain
        # tail): a preemption after the last arrival still exercises
        # recovery, but one after the drain would be unobservable.
        # Rack identities come from the provider's topology so correlated
        # generators (rack-outage) take out exactly the VMs behind one ToR.
        racks = {
            vm.name: provider.topology.rack_of(vm.host) or vm.host
            for vm in provider.vms()
        }
        fault_timeline = generate_faults(
            [vm.name for vm in provider.vms()],
            n_epochs=max(2, int(round(hours))),
            faults=faults,
            seed=seed ^ _FAULT_SEED_SALT,
            strength=fault_strength,
            epoch_s=timeline.epoch_s,
            racks=racks,
        )
    if not fault_timeline.is_empty:
        attach_faults(provider, fault_timeline)

    horizon = hours * timeline.epoch_s
    n_apps = max(1, int(round(apps_per_hour * hours)))
    # CPU-heavy tasks so applications *must* span machines: a fully
    # colocated app never touches the network and would be blind to drift.
    spec = WorkloadSpec(
        min_tasks=4,
        max_tasks=max(4, max_tasks),
        mean_total_bytes=4 * GBYTE,
        cpu_choices=(2.0, 3.0, 4.0),
        arrival_rate_per_hour=apps_per_hour,
        diurnal=False,
    )
    gen = HPCloudWorkloadGenerator(spec, seed=seed ^ _WORKLOAD_SEED_SALT)
    # The generator's arrival processes are hour-based; rescale to the
    # session's epoch so shrunken test epochs keep the same churn shape.
    raw = gen.generate_applications(n_apps)
    scale = timeline.epoch_s / 3600.0
    apps: List[Application] = []
    for app in raw:
        start = app.start_time * scale
        if start >= horizon:
            continue
        app.start_time = start
        apps.append(app)
    if not apps:
        # The Poisson stream can overshoot a short horizon: anchor one
        # arrival at the session start so every session admits something.
        first = raw[0]
        first.start_time = 0.0
        apps = [first]
    return provider, cluster, apps, timeline


def run_churn_session(
    seed: int,
    predictor: str = "combined",
    placer: str = "greedy",
    placer_params: Optional[Mapping[str, object]] = None,
    migrate: bool = True,
    improvement_threshold: float = 0.1,
    ttl_s: Optional[float] = None,
    telemetry: bool = False,
    **session_kwargs,
) -> ServiceReport:
    """Build a churn session and run the service over it.

    ``placer`` is a name from the experiment placer registry (aliases
    accepted); ``session_kwargs`` go to :func:`build_churn_session`;
    ``telemetry`` attaches the opt-in observability block to the report
    (see :meth:`PlacementService.run_session`).
    """
    provider, cluster, apps, timeline = build_churn_session(
        seed, **session_kwargs
    )
    service = PlacementService(
        provider,
        cluster,
        _resolve_placer(placer, seed, placer_params),
        predictor=predictor,
        ttl_s=ttl_s,
        migrate=migrate,
        improvement_threshold=improvement_threshold,
    )
    hours = float(session_kwargs.get("hours", 6.0))
    return service.run_session(apps, hours=hours, telemetry=telemetry)


def _resolve_placer(
    name_or_placer, seed: int, params: Optional[Mapping[str, object]]
) -> Placer:
    """Resolve a placer name through the experiments registry.

    Imported lazily: :mod:`repro.experiments.scenarios` imports this module
    for the ``service-churn`` scenario, so a module-level import would be
    circular.
    """
    if isinstance(name_or_placer, Placer):
        return name_or_placer
    from repro.experiments.placers import resolve_placer

    return resolve_placer(str(name_or_placer)).create(seed, params)
