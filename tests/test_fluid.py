"""Fluid-simulator tests: max-min rates and completion times match hand
calculations on the paper's Figure 3(a) dumbbell topology."""

import pytest

from repro.net.flows import Flow
from repro.net.fluid import FluidSimulation
from repro.net.topology import build_dumbbell
from repro.units import GBITPS, MBYTE

# 1 Gbit/s shared link; 10 Gbit/s access links so the dumbbell is the only
# bottleneck and rates are exact fractions.
SHARED = 1 * GBITPS


@pytest.fixture
def dumbbell():
    return build_dumbbell(n_pairs=3, shared_link_bps=SHARED, access_link_bps=10 * GBITPS)


def _backlogged(i: int, duration: float) -> Flow:
    return Flow(
        flow_id=f"f{i}", src=f"s{i}", dst=f"r{i}",
        size_bytes=None, start_time=0.0, end_time=duration,
    )


def test_two_backlogged_flows_split_shared_link_evenly(dumbbell):
    sim = FluidSimulation(dumbbell)
    sim.add_flows([_backlogged(1, 10.0), _backlogged(2, 10.0)])
    result = sim.run(until=10.0)
    for fid in ("f1", "f2"):
        assert result.timelines[fid].average_rate(0.0, 10.0) == pytest.approx(SHARED / 2)


def test_max_min_respects_per_flow_rate_cap(dumbbell):
    # One flow is capped at 100 Mbit/s, so max-min gives the other two
    # (1 Gbit/s - 100 Mbit/s) / 2 = 450 Mbit/s each.
    capped = Flow(
        flow_id="capped", src="s1", dst="r1",
        size_bytes=None, start_time=0.0, end_time=10.0,
        max_rate_bps=0.1 * GBITPS,
    )
    sim = FluidSimulation(dumbbell)
    sim.add_flow(capped)
    sim.add_flows([_backlogged(2, 10.0), _backlogged(3, 10.0)])
    result = sim.run(until=10.0)
    assert result.timelines["capped"].average_rate(0.0, 10.0) == pytest.approx(0.1 * GBITPS)
    for fid in ("f2", "f3"):
        assert result.timelines[fid].average_rate(0.0, 10.0) == pytest.approx(0.45 * GBITPS)


def test_finite_flow_completion_time_is_bytes_over_rate(dumbbell):
    # 125 MByte = 1 Gbit; alone on a 1 Gbit/s bottleneck -> exactly 1 second.
    flow = Flow(flow_id="xfer", src="s1", dst="r1", size_bytes=125 * MBYTE)
    sim = FluidSimulation(dumbbell)
    sim.add_flow(flow)
    result = sim.run()
    assert result.completion_time("xfer") == pytest.approx(1.0)
    assert result.states["xfer"].value == "completed"


def test_departing_flow_releases_bandwidth_to_survivor(dumbbell):
    # A: 125 MByte, B: 62.5 MByte, both start at 0 sharing 1 Gbit/s.
    # Each gets 0.5 Gbit/s; B (0.5 Gbit of data) finishes at t=1.0; A then
    # has 62.5 MByte left at the full 1 Gbit/s -> finishes at t=1.5.
    sim = FluidSimulation(dumbbell)
    sim.add_flow(Flow(flow_id="A", src="s1", dst="r1", size_bytes=125 * MBYTE))
    sim.add_flow(Flow(flow_id="B", src="s2", dst="r2", size_bytes=62.5 * MBYTE))
    result = sim.run()
    assert result.completion_time("B") == pytest.approx(1.0)
    assert result.completion_time("A") == pytest.approx(1.5)
    # A's timeline records the rate change: 0.5 Gbit/s then 1 Gbit/s.
    rates = [seg.rate_bps for seg in result.timelines["A"].segments]
    assert rates == pytest.approx([0.5 * GBITPS, 1.0 * GBITPS])
