"""Full-mesh measurement orchestration (paper §2.2, §4.1).

Choreo measures every ordered VM pair before placing an application.  With
packet trains, a ten-VM topology (90 pairs) takes under three minutes,
including the overhead of collecting results at a central server — versus
ten seconds of netperf per pair.  :class:`NetworkMeasurer` runs that
campaign against a synthetic provider and returns a
:class:`~repro.core.network_profile.NetworkProfile` the placement algorithms
consume; it also tracks how long the campaign would have taken and advances
the provider clock accordingly, so temporal drift is honoured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.measurement.cross_traffic import estimate_cross_traffic
from repro.core.measurement.packet_train import estimate_throughput
from repro.core.network_profile import NetworkProfile
from repro.errors import MeasurementError
from repro.net.packets import PacketTrainSpec
from repro.cloud.provider import CloudProvider, VMFlow


#: Campaign counters (``obs.metrics.snapshot()`` under ``repro.measure.*``):
#: campaigns run, pairs probed, probe retries, pairs degraded after
#: exhausting their retries.
_CAMPAIGNS = obs.Counter("repro.measure.campaigns_run")
_PROBES = obs.Counter("repro.measure.probes")
_RETRIES = obs.Counter("repro.measure.probe_retries")
_DEGRADED = obs.Counter("repro.measure.probes_degraded")


#: Approximate per-pair overhead of collecting train results at a central
#: server (scheduling, ssh, copying timestamps), in seconds.  Chosen so a
#: 90-pair mesh lands a little under three minutes, as reported in §4.1.
DEFAULT_PER_PAIR_OVERHEAD_S = 1.0


@dataclass(frozen=True)
class MeasurementPlan:
    """What a measurement campaign should do.

    Attributes:
        method: ``"packet_train"`` (fast, the Choreo default) or
            ``"netperf"`` (slow 10-second bulk transfers, the baseline).
        train_spec: packet-train parameters (after §4.1 calibration).
        netperf_duration_s: bulk-transfer duration for the netperf method.
        estimate_cross_traffic: also estimate the equivalent number of
            background connections per path from the measured rate and the
            advertised path capacity.
        per_pair_overhead_s: fixed per-pair orchestration overhead.
        advance_clock: advance the provider clock by the campaign duration.
        parallelism: how many VM-disjoint pairs the central coordinator
            probes simultaneously per round (the paper's coordinator model);
            ``1`` reproduces the serial mesh exactly.
        max_retries: how many times a failed probe of one pair is retried
            (with exponential backoff) before the pair is declared degraded.
        retry_backoff_s: base backoff before the first retry; each further
            retry doubles it.  Backoff and re-probe time are charged to the
            campaign duration so resilience has an honest wall-clock cost.
        probe_budget: campaign-wide cap on *extra* (retry) probes; ``None``
            is unlimited.  Every pair always gets its initial probe.
    """

    method: str = "packet_train"
    train_spec: PacketTrainSpec = field(default_factory=PacketTrainSpec)
    netperf_duration_s: float = 10.0
    estimate_cross_traffic: bool = False
    per_pair_overhead_s: float = DEFAULT_PER_PAIR_OVERHEAD_S
    advance_clock: bool = True
    parallelism: int = 1
    max_retries: int = 2
    retry_backoff_s: float = 2.0
    probe_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in ("packet_train", "netperf"):
            raise MeasurementError(f"unknown measurement method {self.method!r}")
        if self.netperf_duration_s <= 0 or self.per_pair_overhead_s < 0:
            raise MeasurementError("invalid measurement plan timings")
        if self.parallelism < 1:
            raise MeasurementError("parallelism must be >= 1")
        if self.max_retries < 0:
            raise MeasurementError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise MeasurementError("retry_backoff_s must be >= 0")
        if self.probe_budget is not None and self.probe_budget < 0:
            raise MeasurementError("probe_budget must be >= 0 (or None)")


class NetworkMeasurer:
    """Runs measurement campaigns against a provider."""

    def __init__(self, provider: CloudProvider, plan: MeasurementPlan = MeasurementPlan()):
        self.provider = provider
        self.plan = plan

    # ------------------------------------------------------------- timings
    def per_pair_time_s(self) -> float:
        """Wall-clock cost of measuring one ordered pair."""
        if self.plan.method == "netperf":
            active = self.plan.netperf_duration_s
        else:
            spec = self.plan.train_spec
            # One train: bursts plus inter-burst gaps, rounded up to a second
            # of sending/receiving overhead.
            active = max(1.0, spec.n_bursts * self.plan.train_spec.inter_burst_gap_s)
        return active + self.plan.per_pair_overhead_s

    def campaign_time_s(self, n_vms: int) -> float:
        """Wall-clock cost of a full mesh over ``n_vms`` VMs.

        With ``plan.parallelism > 1`` the mesh is probed in rounds of
        VM-disjoint pairs, so the campaign costs one
        :meth:`per_pair_time_s` per *round* rather than per pair.
        """
        if n_vms < 2:
            raise MeasurementError("need at least two VMs")
        if self.plan.parallelism == 1:
            rounds = n_vms * (n_vms - 1)
        else:
            rounds = len(self.schedule_rounds([f"vm{i}" for i in range(n_vms)]))
        return rounds * self.per_pair_time_s()

    def schedule_rounds(
        self,
        vm_names: Sequence[str],
        pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> List[List[Tuple[str, str]]]:
        """Batch ordered pairs into rounds of non-interfering probes.

        Two probes interfere when they share a VM (they would contend for
        the endpoint's NIC and hose cap), so each round holds at most
        ``plan.parallelism`` pairs with pairwise-disjoint VM sets.  The
        greedy schedule is deterministic: pairs are considered in nested
        source/destination order and each round takes the earliest pairs
        that still fit.  With ``parallelism == 1`` every round holds exactly
        one pair, in the same order the serial mesh used.

        ``pairs`` restricts the schedule to a subset of the mesh (the TTL
        cache's stale pairs); by default the full ordered mesh is probed.
        """
        if pairs is None:
            pending = [(s, d) for s in vm_names for d in vm_names if s != d]
        else:
            known = set(vm_names)
            for src, dst in pairs:
                if src == dst or src not in known or dst not in known:
                    raise MeasurementError(
                        f"cannot schedule pair ({src!r}, {dst!r})"
                    )
            pending = list(dict.fromkeys(pairs))  # dedupe, keep order
        limit = self.plan.parallelism
        if limit == 1:
            return [[pair] for pair in pending]
        rounds: List[List[Tuple[str, str]]] = []
        while pending:
            busy: set = set()
            batch: List[Tuple[str, str]] = []
            rest: List[Tuple[str, str]] = []
            for pair in pending:
                src, dst = pair
                if len(batch) < limit and src not in busy and dst not in busy:
                    batch.append(pair)
                    busy.add(src)
                    busy.add(dst)
                else:
                    rest.append(pair)
            rounds.append(batch)
            pending = rest
        return rounds

    # ------------------------------------------------------------ campaign
    def measure_pair(
        self,
        src_vm: str,
        dst_vm: str,
        background: Sequence[VMFlow] = (),
    ) -> float:
        """Measure one ordered pair with the configured method."""
        if self.plan.method == "netperf":
            return self.provider.run_netperf(
                src_vm, dst_vm,
                duration=self.plan.netperf_duration_s,
                background=background,
            )
        observation = self.provider.send_packet_train(
            src_vm, dst_vm, spec=self.plan.train_spec, background=background
        )
        return estimate_throughput(observation).rate_bps

    def measure(
        self,
        vm_names: Optional[Sequence[str]] = None,
        background: Sequence[VMFlow] = (),
        pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> NetworkProfile:
        """Measure the (full or partial) mesh and return a :class:`NetworkProfile`.

        Args:
            vm_names: VMs to include; defaults to every VM on the provider.
            background: flows currently running on the tenant's VMs (e.g.
                previously placed applications, §2.4) that the measurement
                should see as cross traffic.
            pairs: restrict the campaign to these ordered pairs (the stale
                subset of a TTL cache); the returned profile covers only
                them.  ``None`` probes the full ordered mesh.

        Every probed pair carries its own timestamp in
        :attr:`NetworkProfile.pair_measured_at` — pairs from later campaign
        rounds are measured later, which is what per-pair TTL invalidation
        keys on.

        A probe that raises :class:`MeasurementError` (lost trains, injected
        probe faults) is retried up to ``plan.max_retries`` times with
        exponential backoff, drawing on the shared ``plan.probe_budget``;
        a pair whose retries are exhausted lands in
        :attr:`NetworkProfile.degraded_pairs` instead of crashing the
        campaign.
        """
        names = (
            list(vm_names)
            if vm_names is not None
            else [vm.name for vm in self.provider.vms()]
        )
        if len(names) < 2:
            raise MeasurementError("need at least two VMs to measure")

        started_at = self.provider.now
        rates: Dict[Tuple[str, str], float] = {}
        cross: Dict[Tuple[str, str], float] = {}
        pair_times: Dict[Tuple[str, str], float] = {}
        degraded: Dict[Tuple[str, str], str] = {}
        advertised = self.provider.params.instance_type.advertised_egress_bps
        rounds = self.schedule_rounds(names, pairs=pairs)
        round_time = self.per_pair_time_s()
        retry_time = 0.0
        retries = 0
        retries_left = self.plan.probe_budget  # None == unlimited
        n_pairs = sum(len(batch) for batch in rounds)
        campaign = obs.span(
            "measure.campaign",
            vms=len(names),
            pairs=n_pairs,
            rounds=len(rounds),
            method=self.plan.method,
        )
        with campaign:
            for round_index, batch in enumerate(rounds):
                probed_at = started_at + round_index * round_time
                for src, dst in batch:
                    rate = None
                    attempt = 0
                    while True:
                        try:
                            rate = self.measure_pair(
                                src, dst, background=background
                            )
                            break
                        except MeasurementError as exc:
                            out_of_budget = (
                                retries_left is not None and retries_left <= 0
                            )
                            if attempt >= self.plan.max_retries or out_of_budget:
                                reason = "probe budget exhausted" \
                                    if out_of_budget else f"{exc}"
                                degraded[(src, dst)] = (
                                    f"{attempt + 1} probe(s) failed: {reason}"
                                )
                                break
                            retry_time += (
                                self.plan.retry_backoff_s * (2.0 ** attempt)
                                + round_time
                            )
                            if retries_left is not None:
                                retries_left -= 1
                            attempt += 1
                            retries += 1
                    if rate is None:
                        continue
                    rates[(src, dst)] = max(rate, 1.0)
                    pair_times[(src, dst)] = probed_at
                    if self.plan.estimate_cross_traffic and rate > 0:
                        cross[(src, dst)] = estimate_cross_traffic(
                            rate, max(advertised, rate)
                        )
            campaign.set(retries=retries, degraded=len(degraded))

        _CAMPAIGNS.inc()
        _PROBES.inc(n_pairs)
        _RETRIES.inc(retries)
        _DEGRADED.inc(len(degraded))
        duration = len(rounds) * round_time + retry_time
        if self.plan.advance_clock:
            self.provider.advance_time(duration)
        return NetworkProfile(
            vms=names,
            rates_bps=rates,
            cross_traffic=cross,
            sharing_model="hose",
            measured_at=started_at,
            measurement_duration_s=duration,
            pair_measured_at=pair_times,
            degraded_pairs=degraded,
        )
