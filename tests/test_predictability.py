"""Tests for the §6.1 predictors on synthetic drifting hourly series."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import HPCloudWorkloadGenerator
from repro.workloads.predictability import (
    HOURS_PER_DAY,
    combined_predictor,
    evaluate_predictability,
    previous_hour_predictor,
    time_of_day_predictor,
)


class TestPredictorFunctions:
    def test_previous_hour_is_last_value(self):
        series = [10.0, 20.0, 40.0]
        assert previous_hour_predictor(series, 2) == 20.0
        assert previous_hour_predictor(series, 1) == 10.0

    def test_previous_hour_has_no_history_at_zero(self):
        assert previous_hour_predictor([10.0], 0) is None

    def test_time_of_day_averages_same_hour_of_prior_days(self):
        # Hour 50 is hour 2 of day 2; prior same-hour samples are hours 2
        # and 26.
        series = [0.0] * 72
        series[2] = 10.0
        series[26] = 30.0
        assert time_of_day_predictor(series, 50) == pytest.approx(20.0)

    def test_time_of_day_needs_a_full_day(self):
        assert time_of_day_predictor([1.0] * 10, 5) is None

    def test_combined_is_mean_of_both(self):
        series = [0.0] * 72
        series[2] = 10.0
        series[26] = 30.0
        series[49] = 6.0
        # previous-hour at 50 is series[49] = 6, time-of-day is 20.
        assert combined_predictor(series, 50) == pytest.approx(13.0)

    def test_combined_falls_back_to_available_component(self):
        series = [10.0, 20.0, 30.0]
        # No full day of history: only the previous-hour component exists.
        assert combined_predictor(series, 2) == pytest.approx(20.0)


class TestRelativeErrorDistributions:
    def test_hand_computed_errors_on_a_tiny_series(self):
        # Two days plus two hours; warmup of one day leaves hours 24..25.
        series = list(range(HOURS_PER_DAY)) + [100.0, 50.0]
        reports = evaluate_predictability([series], warmup_hours=HOURS_PER_DAY)

        # hour 24: actual 100, prev-hour predicts series[23] = 23 -> 0.77;
        # hour 25: actual 50, prev-hour predicts 100 -> 1.0.
        assert reports["previous-hour"].relative_errors == pytest.approx(
            [0.77, 1.0]
        )
        # hour 24: time-of-day predicts series[0] = 0 -> 1.0;
        # hour 25: predicts series[1] = 1 -> |50-1|/50 = 0.98.
        assert reports["time-of-day"].relative_errors == pytest.approx(
            [1.0, 0.98]
        )
        # combined: (23+0)/2 = 11.5 -> 0.885; (100+1)/2 = 50.5 -> 0.01.
        assert reports["combined"].relative_errors == pytest.approx(
            [0.885, 0.01]
        )
        assert reports["combined"].median_error == pytest.approx(0.4475)
        assert reports["combined"].mean_error == pytest.approx(0.4475)
        assert reports["combined"].fraction_within(0.5) == pytest.approx(0.5)

    def test_zero_traffic_hours_do_not_divide_by_zero(self):
        series = [0.0] * (HOURS_PER_DAY + 2)
        reports = evaluate_predictability([series])
        assert reports["previous-hour"].relative_errors == [0.0, 0.0]

    def test_short_series_are_skipped(self):
        reports = evaluate_predictability([[1.0, 2.0]])
        assert reports["combined"].n_predictions == 0

    def test_warmup_must_be_positive(self):
        with pytest.raises(WorkloadError):
            evaluate_predictability([[1.0] * 48], warmup_hours=0)


class TestCombinedBeatsComponentsOnDiurnalSeries:
    """The paper's claim: on diurnal traffic with noise, averaging the two
    predictors beats either alone (both median and mean relative error)."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_combined_wins_on_generated_dataset(self, seed):
        gen = HPCloudWorkloadGenerator(seed=seed)
        data = gen.generate_hourly_dataset(n_applications=12, n_hours=7 * 24)
        reports = evaluate_predictability(data)
        combined = reports["combined"]
        for other in ("previous-hour", "time-of-day"):
            assert combined.median_error < reports[other].median_error
            assert combined.mean_error < reports[other].mean_error

    def test_previous_hour_tracks_a_random_walk_best(self):
        # On a driftless random walk the time-of-day structure is absent, so
        # the previous hour alone is the better component.
        rng = np.random.default_rng(3)
        series = [1e9]
        for _ in range(6 * 24 - 1):
            series.append(max(series[-1] * float(rng.lognormal(0.0, 0.3)), 1.0))
        reports = evaluate_predictability([series])
        assert (
            reports["previous-hour"].median_error
            < reports["time-of-day"].median_error
        )
