"""Named, parameterised end-to-end evaluation scenarios (paper §6).

A *scenario* bundles everything one trial of the evaluation needs: a
synthetic provider (built through :mod:`repro.cloud.registry`), a set of
tenant VMs, the applications to place, optional cross traffic, and how the
trial should run (place everything up front, or replay the §2.4 arrival
sequence).  Scenarios are registered by name so the experiment runner and
the CLI can address them as data, and every builder is a pure function of
``(seed, params)`` so trials are reproducible and can be re-created inside
worker processes.

Adding a scenario::

    @scenario("my-scenario", description="...", tags=("ec2",),
              defaults={"n_vms": 8})
    def _build_my_scenario(seed, n_vms):
        provider, cluster = fresh_provider("ec2", seed=seed, n_vms=n_vms)
        app = mapreduce("job", 4, 4, 10 * GBYTE)
        return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.provider import CloudProvider, VMFlow
from repro.cloud.registry import make_provider
from repro.core.placement.base import ClusterState
from repro.errors import ExperimentError
from repro.units import GBYTE, MBYTE
from repro.workloads.application import Application, Task, TrafficMatrix
from repro.workloads.generator import HPCloudWorkloadGenerator, WorkloadSpec
from repro.workloads.patterns import mapreduce, scatter_gather, uniform_mesh

#: How a scenario's applications are executed by the runner.
MODE_BATCH = "batch"  #: all applications placed at time zero, run together
MODE_SEQUENCE = "sequence"  #: applications arrive and are placed one by one (§2.4)
MODE_SERVICE = "service"  #: streamed through the online placement service


@dataclass(frozen=True)
class ServiceSettings:
    """How a :data:`MODE_SERVICE` scenario drives the placement service.

    The *placer* stays a grid dimension; these settings pin the service's
    own knobs (predictor, horizon, migration) per scenario cell, so sweeps
    compare predictor choices x placers under drift via
    ``--param predictor=...``.
    """

    predictor: str = "combined"
    hours: float = 6.0
    ttl_s: Optional[float] = None
    migrate: bool = True
    improvement_threshold: float = 0.1


@dataclass
class ScenarioInstance:
    """One concrete, seeded realisation of a scenario.

    Attributes:
        provider: the synthetic cloud, with the tenant's VMs already
            requested.
        cluster: the tenant's machines as a placement cluster.
        apps: the applications to place (start times matter in
            ``sequence`` and ``service`` modes).
        background: cross-traffic flows sharing the network with the
            tenant's applications; they must be finite (have a size or an
            end time) so simulations terminate.
        mode: :data:`MODE_BATCH`, :data:`MODE_SEQUENCE`, or
            :data:`MODE_SERVICE`.
        service: service-mode settings (required for :data:`MODE_SERVICE`).
    """

    provider: CloudProvider
    cluster: ClusterState
    apps: List[Application]
    background: List[VMFlow] = field(default_factory=list)
    mode: str = MODE_BATCH
    service: Optional[ServiceSettings] = None

    def __post_init__(self) -> None:
        if self.mode not in (MODE_BATCH, MODE_SEQUENCE, MODE_SERVICE):
            raise ExperimentError(f"unknown scenario mode {self.mode!r}")
        if not self.apps:
            raise ExperimentError("a scenario instance needs at least one application")
        if self.mode == MODE_SERVICE and self.service is None:
            raise ExperimentError(
                "service-mode scenarios must supply ServiceSettings"
            )
        for flow in self.background:
            if flow.size_bytes is None and flow.end_time is None:
                raise ExperimentError(
                    f"background flow {flow.flow_id!r} is unbounded; give it a "
                    "size or an end time so simulations terminate"
                )


#: A builder takes ``(seed, **params)`` and returns a :class:`ScenarioInstance`.
ScenarioBuilder = Callable[..., ScenarioInstance]


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: metadata plus a parameterised builder."""

    name: str
    description: str
    builder: ScenarioBuilder
    tags: Tuple[str, ...] = ()
    defaults: Mapping[str, object] = field(default_factory=dict)

    def validate_params(self, overrides: Mapping[str, object]) -> None:
        """Raise :class:`ExperimentError` for override keys the builder lacks."""
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ExperimentError(
                f"scenario {self.name!r} has no parameters {sorted(unknown)}; "
                f"available: {sorted(self.defaults)}"
            )

    def build(self, seed: int = 0, **overrides) -> ScenarioInstance:
        """Realise the scenario with ``seed`` and parameter overrides."""
        self.validate_params(overrides)
        params = {**self.defaults, **overrides}
        return self.builder(seed=seed, **params)


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a scenario spec; duplicate names raise :class:`ExperimentError`."""
    if spec.name in _REGISTRY:
        raise ExperimentError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario(
    name: str,
    description: str,
    tags: Sequence[str] = (),
    defaults: Optional[Mapping[str, object]] = None,
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator form of :func:`register_scenario`."""

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        register_scenario(
            ScenarioSpec(
                name=name,
                description=description,
                builder=builder,
                tags=tuple(tags),
                defaults=dict(defaults or {}),
            )
        )
        return builder

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from exc


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def list_scenarios(tag: Optional[str] = None) -> List[ScenarioSpec]:
    """All registered scenarios (optionally filtered by tag), sorted by name."""
    specs = [_REGISTRY[name] for name in scenario_names()]
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs


# ---------------------------------------------------------------------------
# Builder helpers
# ---------------------------------------------------------------------------
def fresh_provider(
    provider_name: str, seed: int, n_vms: int, **provider_kwargs
) -> Tuple[CloudProvider, ClusterState]:
    """A seeded provider with ``n_vms`` tenant VMs and its placement cluster."""
    if n_vms < 2:
        raise ExperimentError("scenarios need at least two VMs")
    provider = make_provider(provider_name, seed=seed, **provider_kwargs)
    provider.request_vms(n_vms)
    cluster = ClusterState.from_vms(provider.vms())
    return provider, cluster


def _light_workload_spec(max_tasks: int = 8) -> WorkloadSpec:
    """Generator knobs that keep single trials CPU-feasible and fast."""
    return WorkloadSpec(
        min_tasks=4,
        max_tasks=max_tasks,
        cpu_choices=(0.5, 1.0, 2.0),
        diurnal=False,
    )


# ---------------------------------------------------------------------------
# Registered scenarios
# ---------------------------------------------------------------------------
@scenario(
    "smoke",
    description="Tiny MapReduce on 4 EC2 VMs; the CI fast path.",
    tags=("ec2", "fast"),
    defaults={"n_vms": 4, "shuffle_gbytes": 0.5},
)
def _build_smoke(seed: int, n_vms: int, shuffle_gbytes: float) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    app = mapreduce(
        "smoke-job", 2, 2, float(shuffle_gbytes) * GBYTE,
        rng=np.random.default_rng(seed),
    )
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "single-app-ec2",
    description="One generated HP-Cloud-like application placed on EC2 (§6.2).",
    tags=("ec2", "generator"),
    defaults={"n_vms": 8, "max_tasks": 8},
)
def _build_single_app(seed: int, n_vms: int, max_tasks: int) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    gen = HPCloudWorkloadGenerator(_light_workload_spec(int(max_tasks)), seed=seed)
    app = gen.generate_application()
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "multi-app-sequence",
    description=(
        "Applications arrive one by one and are placed as they arrive, with "
        "running apps acting as cross traffic (§2.4, §6.3)."
    ),
    tags=("ec2", "sequence"),
    defaults={"n_vms": 10, "n_apps": 4, "arrival_gap_s": 30.0},
)
def _build_sequence(
    seed: int, n_vms: int, n_apps: int, arrival_gap_s: float
) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    gen = HPCloudWorkloadGenerator(_light_workload_spec(max_tasks=6), seed=seed)
    # Compressed arrival times so transfers overlap and later placements see
    # earlier applications as cross traffic.
    apps = [
        gen.generate_application(start_time=i * float(arrival_gap_s))
        for i in range(int(n_apps))
    ]
    return ScenarioInstance(
        provider=provider, cluster=cluster, apps=apps, mode=MODE_SEQUENCE
    )


@scenario(
    "all-to-all",
    description="Uniform all-to-all mesh, the pattern Choreo can least improve (§7.1).",
    tags=("ec2", "pattern"),
    defaults={"n_vms": 6, "n_tasks": 6, "pair_mbytes": 200.0},
)
def _build_all_to_all(
    seed: int, n_vms: int, n_tasks: int, pair_mbytes: float
) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    app = uniform_mesh(
        "mesh", int(n_tasks), bytes_per_pair=float(pair_mbytes) * MBYTE,
        cpu_per_task=1.0,
    )
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "partition-aggregate",
    description="Scatter/gather frontend with heavy worker responses.",
    tags=("ec2", "pattern"),
    defaults={"n_vms": 8, "n_workers": 7, "response_mbytes": 400.0},
)
def _build_partition_aggregate(
    seed: int, n_vms: int, n_workers: int, response_mbytes: float
) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    app = scatter_gather(
        "svc", int(n_workers),
        request_bytes=4 * MBYTE,
        response_bytes=float(response_mbytes) * MBYTE,
        cpu_per_task=1.0,
    )
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "bursty-mapreduce",
    description="Skewed MapReduce shuffle with hot reducers (lognormal weights).",
    tags=("ec2", "pattern"),
    defaults={"n_vms": 8, "n_mappers": 4, "n_reducers": 4, "shuffle_gbytes": 4.0,
              "skew": 1.5},
)
def _build_bursty_mapreduce(
    seed: int, n_vms: int, n_mappers: int, n_reducers: int,
    shuffle_gbytes: float, skew: float,
) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    app = mapreduce(
        "bursty-job", int(n_mappers), int(n_reducers),
        float(shuffle_gbytes) * GBYTE, skew=float(skew),
        rng=np.random.default_rng(seed),
    )
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "cross-traffic",
    description=(
        "Placement while another tenant's bulk transfers load random paths; "
        "measurement sees them as cross traffic (§3.2)."
    ),
    tags=("ec2", "cross-traffic"),
    defaults={"n_vms": 6, "n_cross_flows": 4, "cross_gbytes": 2.0},
)
def _build_cross_traffic(
    seed: int, n_vms: int, n_cross_flows: int, cross_gbytes: float
) -> ScenarioInstance:
    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    rng = np.random.default_rng(seed + 0x5EED)
    names = cluster.machine_names()
    background: List[VMFlow] = []
    for i in range(int(n_cross_flows)):
        src, dst = rng.choice(names, size=2, replace=False)
        background.append(
            VMFlow(
                flow_id=f"cross:{i}",
                src_vm=str(src),
                dst_vm=str(dst),
                size_bytes=float(cross_gbytes) * GBYTE,
                start_time=0.0,
                tag="cross-traffic",
            )
        )
    gen = HPCloudWorkloadGenerator(_light_workload_spec(max_tasks=6), seed=seed)
    app = gen.generate_application()
    return ScenarioInstance(
        provider=provider, cluster=cluster, apps=[app], background=background
    )


@scenario(
    "hetero-topology",
    description=(
        "EC2 with an extra aggregation tier (8-hop core paths, Figure 8) and "
        "more aggressive colocation."
    ),
    tags=("ec2", "topology"),
    defaults={"n_vms": 8, "colocation_probability": 0.15},
)
def _build_hetero_topology(
    seed: int, n_vms: int, colocation_probability: float
) -> ScenarioInstance:
    provider, cluster = fresh_provider(
        "ec2", seed=seed, n_vms=int(n_vms),
        extra_agg_layer=True,
        colocation_probability=float(colocation_probability),
    )
    gen = HPCloudWorkloadGenerator(_light_workload_spec(max_tasks=8), seed=seed)
    app = gen.generate_application()
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "ec2-trace-replay",
    description=(
        "Replay sFlow-like flow-record traces through the full "
        "profile->measure->place pipeline: applications are profiled from "
        "records, then placed as they arrive (§2.1, §6.1).  With "
        "trace_path, the records come from a recorded CSV/JSONL file on "
        "disk instead of being generated."
    ),
    tags=("ec2", "trace", "sequence"),
    defaults={
        "n_vms": 10, "n_apps": 3, "records_per_pair": 4, "arrival_gap_s": 45.0,
        "trace_path": "",
    },
)
def _build_trace_replay(
    seed: int, n_vms: int, n_apps: int, records_per_pair: int,
    arrival_gap_s: float, trace_path: str,
) -> ScenarioInstance:
    # Import here: core.profiler is a consumer of workloads, and scenarios
    # otherwise stay importable without the placement stack.
    from repro.core.profiler import ApplicationProfiler

    provider, cluster = fresh_provider("ec2", seed=seed, n_vms=int(n_vms))
    profiler = ApplicationProfiler()

    if trace_path:
        # Recorded replay: the trace is the only ground truth.  CPU demands
        # are not part of flow records, so the profiler's default applies.
        from repro.workloads.trace import load_trace

        records = load_trace(str(trace_path))
        if not records:
            raise ExperimentError(f"trace {trace_path!r} contains no records")
        app_names = sorted(
            {record.application for record in records},
            key=lambda name: min(
                r.timestamp for r in records if r.application == name
            ),
        )
        apps = [
            profiler.profile_application(records, name)
            for name in app_names
        ]
        return ScenarioInstance(
            provider=provider, cluster=cluster, apps=apps, mode=MODE_SEQUENCE
        )

    gen = HPCloudWorkloadGenerator(_light_workload_spec(max_tasks=6), seed=seed)
    # Ground truth: generated applications, exploded into flow records as a
    # network monitor would report them...
    source_apps = [
        gen.generate_application(start_time=i * float(arrival_gap_s))
        for i in range(int(n_apps))
    ]
    records = []
    for app in source_apps:
        records.extend(
            gen.application_to_records(
                app,
                n_records_per_pair=int(records_per_pair),
                duration_s=float(arrival_gap_s),
            )
        )
    records.sort(key=lambda record: record.timestamp)
    # ...then what the placer actually sees: applications re-profiled from
    # the trace.  CPU demands come from the tenant (traces carry none).
    apps = [
        profiler.profile_application(
            records,
            app.name,
            task_cpu_cores={task.name: task.cpu_cores for task in app.tasks},
            start_time=app.start_time,
        )
        for app in source_apps
    ]
    return ScenarioInstance(
        provider=provider, cluster=cluster, apps=apps, mode=MODE_SEQUENCE
    )


@scenario(
    "rack-hotspot",
    description=(
        "Two racks behind oversubscribed ToR uplinks, a slow-hose VM tail, "
        "and a descending chain of heavy transfers.  Greedy's colocation "
        "ties ignore future egress, so it parks heavy senders on slow VMs "
        "— the Figure-9 regime where the exact `ilp` placer has headroom."
    ),
    tags=("synthetic", "topology", "ilp"),
    defaults={
        "n_vms": 10,
        "n_tasks": 12,
        "uplink_gbps": 2.0,
        "slow_fraction": 0.4,
        "chain_gbytes": 4.0,
    },
)
def _build_rack_hotspot(
    seed: int,
    n_vms: int,
    n_tasks: int,
    uplink_gbps: float,
    slow_fraction: float,
    chain_gbytes: float,
) -> ScenarioInstance:
    from repro.cloud.provider import ProviderParams
    from repro.net.topology import TreeSpec
    from repro.units import GBITPS, MBITPS

    n_vms, n_tasks = int(n_vms), int(n_tasks)
    if n_tasks > 2 * n_vms:
        raise ExperimentError("rack-hotspot needs n_tasks <= 2 * n_vms")
    slow_fraction = float(slow_fraction)

    def hotspot_hose(rng: np.random.Generator) -> float:
        # Bimodal egress caps: a fast mode and a pronounced slow tail, so
        # machine choice matters and interchangeability is rare.
        if rng.random() < slow_fraction:
            return float(rng.uniform(300.0, 500.0)) * MBITPS
        return float(rng.uniform(900.0, 1100.0)) * MBITPS

    params = ProviderParams(
        name="rack-hotspot",
        hose_sampler=hotspot_hose,
        colocation_probability=0.0,
        intra_host_rate_bps=4 * GBITPS,
        temporal_sigma=0.005,
        temporal_tau_s=600.0,
        measurement_noise=0.002,
        tree_spec=TreeSpec(
            hosts_per_rack=max(2, (n_vms + 1) // 2),
            racks_per_pod=2,
            pods=1,
            num_cores=1,
            host_link_bps=10 * GBITPS,
            # The hotspot: both racks funnel through thin ToR uplinks.
            tor_agg_link_bps=float(uplink_gbps) * GBITPS,
            agg_core_link_bps=float(uplink_gbps) * GBITPS,
            intra_host_bps=4 * GBITPS,
        ),
    )
    provider = CloudProvider(params, seed=seed)
    provider.request_vms(n_vms)
    cluster = ClusterState.from_vms(provider.vms())

    # A chain of transfers with geometrically decaying volumes: greedy
    # colocates (t0,t1), (t2,t3), ... and the odd tasks become the heavy
    # cross-machine senders — on machines greedy picked by name, not by
    # egress cap.
    rng = np.random.default_rng(seed + 0x401)
    tasks = [Task(f"t{k}", cpu_cores=2.0) for k in range(n_tasks)]
    traffic = TrafficMatrix()
    volume = float(chain_gbytes) * GBYTE
    for k in range(n_tasks - 1):
        jitter = float(rng.uniform(0.9, 1.1))
        traffic.add(f"t{k}", f"t{k + 1}", volume * jitter)
        volume *= 0.85
    app = Application(name="hotspot-chain", tasks=tasks, traffic=traffic)
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "service-churn",
    description=(
        "A churn session through the online placement service: hourly "
        "ground-truth matrices drift (random-walk / diurnal / hotspot-flap) "
        "while applications stream in; placements use §6.1 predictor "
        "forecasts, and running apps migrate at epoch ticks.  Sweep "
        "`predictor` (stale / previous-hour / time-of-day / combined / "
        "oracle) x placers to reproduce the §6.1 claim under drift."
    ),
    tags=("ec2", "service", "drift"),
    defaults={
        "n_vms": 8,
        "hours": 4,
        "drift": "hotspot-flap",
        "predictor": "combined",
        "apps_per_hour": 1.5,
        "epoch_s": 300.0,
        "migrate": True,
    },
)
def _build_service_churn(
    seed: int,
    n_vms: int,
    hours: float,
    drift: str,
    predictor: str,
    apps_per_hour: float,
    epoch_s: float,
    migrate: bool,
) -> ScenarioInstance:
    # Imported here so the scenario registry stays importable without the
    # service stack (and because repro.service.session resolves placers
    # through this package — a module-level import would be circular).
    from repro.service.forecast import validate_predictor
    from repro.service.session import build_churn_session

    validate_predictor(str(predictor))
    provider, cluster, apps, _timeline = build_churn_session(
        seed,
        n_vms=int(n_vms),
        hours=float(hours),
        drift=str(drift),
        apps_per_hour=float(apps_per_hour),
        epoch_s=float(epoch_s),
    )
    return ScenarioInstance(
        provider=provider,
        cluster=cluster,
        apps=apps,
        mode=MODE_SERVICE,
        service=ServiceSettings(
            predictor=str(predictor),
            hours=float(hours),
            migrate=bool(migrate),
        ),
    )


@scenario(
    "fault-churn",
    description=(
        "The service-churn session under injected infrastructure faults: "
        "VMs are preempted mid-session (their tasks re-placed via the "
        "migration engine), links degrade (targeted re-measurement), and "
        "probes are lost (the measurer retries, then coasts on forecasts). "
        "Sweep `faults` (random-preempt / rack-outage / link-flap / "
        "lossy-probes) to stress the self-healing control loop; seeded, "
        "so reruns are bit-identical."
    ),
    tags=("ec2", "service", "faults"),
    defaults={
        "n_vms": 8,
        "hours": 4,
        "drift": "random-walk",
        "predictor": "combined",
        "apps_per_hour": 1.5,
        "epoch_s": 300.0,
        "migrate": True,
        "faults": "random-preempt",
        "fault_strength": 0.0,
    },
)
def _build_fault_churn(
    seed: int,
    n_vms: int,
    hours: float,
    drift: str,
    predictor: str,
    apps_per_hour: float,
    epoch_s: float,
    migrate: bool,
    faults: str,
    fault_strength: float,
) -> ScenarioInstance:
    # Same lazy imports as service-churn (circular-import avoidance).
    from repro.service.forecast import validate_predictor
    from repro.service.session import build_churn_session

    validate_predictor(str(predictor))
    provider, cluster, apps, _timeline = build_churn_session(
        seed,
        n_vms=int(n_vms),
        hours=float(hours),
        drift=str(drift),
        apps_per_hour=float(apps_per_hour),
        epoch_s=float(epoch_s),
        faults=str(faults),
        # Scenario params must be JSON scalars, so None (generator default)
        # is spelled 0.0 here.
        fault_strength=float(fault_strength) or None,
    )
    return ScenarioInstance(
        provider=provider,
        cluster=cluster,
        apps=apps,
        mode=MODE_SERVICE,
        service=ServiceSettings(
            predictor=str(predictor),
            hours=float(hours),
            migrate=bool(migrate),
        ),
    )


@scenario(
    "legacy-ec2-zone",
    description="The highly variable May-2012 EC2 network, one availability zone (Figure 1).",
    tags=("ec2-legacy",),
    defaults={"n_vms": 6, "zone": "us-east-1a"},
)
def _build_legacy_zone(seed: int, n_vms: int, zone: str) -> ScenarioInstance:
    provider, cluster = fresh_provider(
        "ec2-legacy", seed=seed, n_vms=int(n_vms), zone=str(zone)
    )
    gen = HPCloudWorkloadGenerator(_light_workload_spec(max_tasks=6), seed=seed)
    app = gen.generate_application()
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])


@scenario(
    "rackspace-uniform",
    description="Rackspace's uniform 300 Mbit/s network, where colocation is the only win.",
    tags=("rackspace",),
    defaults={"n_vms": 6, "shuffle_gbytes": 2.0},
)
def _build_rackspace(seed: int, n_vms: int, shuffle_gbytes: float) -> ScenarioInstance:
    provider, cluster = fresh_provider("rackspace", seed=seed, n_vms=int(n_vms))
    app = mapreduce(
        "rs-job", 3, 3, float(shuffle_gbytes) * GBYTE,
        rng=np.random.default_rng(seed),
    )
    return ScenarioInstance(provider=provider, cluster=cluster, apps=[app])
