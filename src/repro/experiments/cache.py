"""Persistent content-addressed result store for experiment sweeps.

The runner memoizes repeated grid cells within one run, but that memo dies
with the process, so a grown grid re-pays every cell on every invocation.
:class:`ResultStore` keeps trial records on disk instead, keyed by
*everything that determines a trial's outcome*:

``(scenario, params, placer, placer_params, trial, seed, code_version)``

where ``code_version`` is a digest of the installed ``repro`` source tree.
Change any source file and every key changes, so a store can never serve
results computed by different code — stale cells are simply never addressed
again (and :meth:`ResultStore.prune_stale` reclaims their disk space).

Layout: one JSON file per cell, addressed by the SHA-256 of the canonical
JSON encoding of the key::

    <root>/<code_version[:16]>/<digest[:2]>/<digest>.json

Each file carries the full key next to the record, so a hash collision (or
a corrupted file) is detected on read and treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.experiments.results import TrialRecord

#: Schema tag written into every cell file.
CACHE_SCHEMA = "repro.experiments/cache/v1"


# ---------------------------------------------------------------------------
# Code-version digest
# ---------------------------------------------------------------------------
def tree_digest(root: Union[str, Path]) -> str:
    """SHA-256 over the relative paths and contents of a source tree.

    Only ``*.py`` files count: bytecode caches, editor droppings, and result
    files must not invalidate the store.
    """
    root = Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package source (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        _CODE_VERSION = tree_digest(Path(repro.__file__).resolve().parent)
    return _CODE_VERSION


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CacheKey:
    """Everything that determines one trial's outcome."""

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    placer: str
    trial: int
    seed: int
    code_version: str
    placer_params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        scenario: str,
        placer: str,
        trial: int,
        seed: int,
        params: Optional[Mapping[str, object]] = None,
        version: Optional[str] = None,
        placer_params: Optional[Mapping[str, object]] = None,
    ) -> "CacheKey":
        return cls(
            scenario=scenario,
            params=tuple(sorted((params or {}).items())),
            placer=placer,
            trial=trial,
            seed=seed,
            code_version=version if version is not None else code_version(),
            placer_params=tuple(sorted((placer_params or {}).items())),
        )

    def to_json_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "params": {key: value for key, value in self.params},
            "placer": self.placer,
            "placer_params": {key: value for key, value in self.placer_params},
            "trial": self.trial,
            "seed": self.seed,
            "code_version": self.code_version,
        }

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical JSON encoding."""
        canonical = json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":"),
            default=repr,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------
class ResultStore:
    """Disk-backed content-addressed store of trial records.

    Args:
        root: directory holding the store (created on first write).
        version: the code version new keys default to; omit for the digest
            of the installed ``repro`` tree.  Tests inject explicit tokens
            to exercise invalidation without editing source files.
    """

    def __init__(self, root: Union[str, Path], version: Optional[str] = None):
        self.root = Path(root)
        self.version = version if version is not None else code_version()
        self._stats = {"hits": 0, "misses": 0, "stored": 0, "invalidated": 0}

    # ------------------------------------------------------------- addressing
    def key_for(
        self,
        scenario: str,
        placer: str,
        trial: int,
        seed: int,
        params: Optional[Mapping[str, object]] = None,
        placer_params: Optional[Mapping[str, object]] = None,
    ) -> CacheKey:
        """A :class:`CacheKey` bound to this store's code version."""
        return CacheKey.make(
            scenario, placer, trial, seed, params=params, version=self.version,
            placer_params=placer_params,
        )

    def _path(self, key: CacheKey) -> Path:
        digest = key.digest()
        return self.root / key.code_version[:16] / digest[:2] / f"{digest}.json"

    # ---------------------------------------------------------------- access
    def get(self, key: CacheKey) -> Optional[TrialRecord]:
        """The stored record for ``key``, or ``None`` (counted as a miss).

        A cell file that fails to parse, carries the wrong schema, or whose
        embedded key disagrees with ``key`` (hash collision) is removed and
        counted under ``invalidated``.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self._stats["misses"] += 1
            return None
        # ValueError covers JSONDecodeError and UnicodeDecodeError alike.
        except (OSError, ValueError):
            self._invalidate(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != json.loads(json.dumps(key.to_json_dict(), default=repr))
        ):
            self._invalidate(path)
            return None
        try:
            record = TrialRecord(**payload["record"])
        except (KeyError, TypeError):
            self._invalidate(path)
            return None
        self._stats["hits"] += 1
        return record

    def put(self, key: CacheKey, record: TrialRecord) -> Path:
        """Store ``record`` under ``key`` (atomic write-then-rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key.to_json_dict(),
            "record": asdict(record),
        }
        text = json.dumps(payload, sort_keys=True, default=repr)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._stats["stored"] += 1
        return path

    def _invalidate(self, path: Path) -> None:
        self._stats["misses"] += 1
        self._stats["invalidated"] += 1
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------ maintenance
    def prune_stale(self) -> int:
        """Drop every cell written under a different code version.

        This is the store's eviction policy: old-version cells can never be
        addressed again (their keys embed the old digest), so reclaiming
        them is always safe.  Returns the number of cells removed.
        """
        removed = 0
        current = self.version[:16]
        if not self.root.is_dir():
            return 0
        for version_dir in self.root.iterdir():
            if not version_dir.is_dir() or version_dir.name == current:
                continue
            removed += sum(1 for _ in version_dir.rglob("*.json"))
            # rmtree, not per-cell unlink: stale dirs may also hold .tmp
            # droppings from writes interrupted mid-put.
            shutil.rmtree(version_dir, ignore_errors=True)
        self._stats["invalidated"] += removed
        return removed

    # ------------------------------------------------------------- inspection
    @property
    def stats(self) -> Dict[str, int]:
        """Counters: ``hits``, ``misses``, ``stored``, ``invalidated``."""
        return dict(self._stats)

    def __len__(self) -> int:
        """Cells stored under the *current* code version."""
        version_dir = self.root / self.version[:16]
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.rglob("*.json"))

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"version={self.version[:16]!r}, cells={len(self)})"
        )
