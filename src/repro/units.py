"""Unit constants and conversion helpers.

Conventions used throughout the library:

* **Rates** are floats in bits per second.
* **Data volumes** are floats (or ints) in bytes.
* **Time** is in seconds.

The paper quotes rates in Mbit/s and Gbit/s and data in MBytes/GBytes, so the
constants below keep experiment code readable, e.g. ``rate = 300 * MBITPS`` or
``bytes_to_send = 100 * MBYTE``.
"""

from __future__ import annotations

# --- rate units (bits per second) -------------------------------------------
BITPS = 1.0
KBITPS = 1e3
MBITPS = 1e6
GBITPS = 1e9

# --- data units (bytes) ------------------------------------------------------
BYTE = 1.0
KBYTE = 1e3
MBYTE = 1e6
GBYTE = 1e9
KIBYTE = 1024.0
MIBYTE = 1024.0 ** 2
GIBYTE = 1024.0 ** 3

# --- time units (seconds) ----------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

# Bits per byte, used when converting between data volume and transfer time.
BITS_PER_BYTE = 8.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to a bit count."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to a byte count."""
    return num_bits / BITS_PER_BYTE


def transfer_time(num_bytes: float, rate_bps: float) -> float:
    """Time in seconds to move ``num_bytes`` at ``rate_bps`` bits/second.

    A rate of zero (or a non-positive rate) means the transfer never
    completes; ``float('inf')`` is returned in that case.  Zero bytes always
    takes zero time, even on a dead path.
    """
    if num_bytes <= 0:
        return 0.0
    if rate_bps <= 0:
        return float("inf")
    return bytes_to_bits(num_bytes) / rate_bps


def rate_for_transfer(num_bytes: float, duration_s: float) -> float:
    """Average rate in bits/second for ``num_bytes`` moved in ``duration_s``."""
    if duration_s <= 0:
        return float("inf") if num_bytes > 0 else 0.0
    return bytes_to_bits(num_bytes) / duration_s


def mbps(rate_bps: float) -> float:
    """Express a bits/second rate in Mbit/s (for reporting)."""
    return rate_bps / MBITPS
