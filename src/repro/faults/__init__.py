"""Fault injection: discrete failure events over the synthetic cloud.

Public surface of the faults subsystem (see :mod:`repro.faults.timeline`
for the model and docs/faults.md for the tour):

- :class:`FaultTimeline` plus the event types
  :class:`LinkDegradation` / :class:`VmPreemption` / :class:`ProbeLoss`;
- :func:`generate_faults` with the seeded generators named by
  :data:`FAULT_NAMES` (``none`` / ``random-preempt`` / ``rack-outage`` /
  ``link-flap`` / ``lossy-probes``);
- :func:`attach_faults` to hook a timeline onto a provider.
"""

from repro.faults.timeline import (
    FAULT_NAMES,
    FaultEvent,
    FaultTimeline,
    LinkDegradation,
    PREEMPTED_RATE_BPS,
    ProbeLoss,
    VmPreemption,
    attach_faults,
    generate_faults,
)

__all__ = [
    "FAULT_NAMES",
    "FaultEvent",
    "FaultTimeline",
    "LinkDegradation",
    "PREEMPTED_RATE_BPS",
    "ProbeLoss",
    "VmPreemption",
    "attach_faults",
    "generate_faults",
]
