"""EC2-like synthetic provider for the May-2012 network (Figure 1).

When the Choreo project started, EC2 path throughputs were highly variable:
Figure 1 shows CDFs per availability zone ranging from about 100 Mbit/s to
almost 1 Gbit/s.  This provider reproduces that earlier regime with much
wider per-VM egress-cap distributions, parameterised per availability zone,
so the Figure 1 experiment can draw one CDF per zone.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.cloud.instances import EC2_MEDIUM
from repro.cloud.provider import CloudProvider, ProviderParams
from repro.cloud.registry import register_provider
from repro.errors import CloudError
from repro.net.topology import TreeSpec
from repro.units import GBITPS, MBITPS

# Per-zone (low, high, shape) parameters of a beta-scaled throughput
# distribution, chosen so the four CDFs spread out as in Figure 1.
EC2_LEGACY_ZONES: Dict[str, Tuple[float, float, float]] = {
    "us-east-1a": (100 * MBITPS, 750 * MBITPS, 1.6),
    "us-east-1b": (150 * MBITPS, 850 * MBITPS, 2.2),
    "us-east-1c": (200 * MBITPS, 950 * MBITPS, 3.0),
    "us-east-1d": (300 * MBITPS, 1000 * MBITPS, 4.0),
}


def legacy_hose_sampler(zone: str):
    """Sampler factory for the given 2012 availability zone."""
    if zone not in EC2_LEGACY_ZONES:
        raise CloudError(f"unknown legacy EC2 zone {zone!r}")
    low, high, shape = EC2_LEGACY_ZONES[zone]

    def sampler(rng: np.random.Generator) -> float:
        return float(low + (high - low) * rng.beta(shape, 1.6))

    return sampler


def ec2_legacy_params(zone: str = "us-east-1a") -> ProviderParams:
    """Parameters of the 2012 EC2-like provider for one availability zone."""
    return ProviderParams(
        name=f"ec2-2012-{zone}",
        instance_type=EC2_MEDIUM,
        hose_sampler=legacy_hose_sampler(zone),
        colocation_probability=0.02,
        intra_host_rate_bps=2 * GBITPS,
        temporal_sigma=0.08,
        temporal_tau_s=300.0,
        measurement_noise=0.01,
        train_jitter_std_s=400e-6,
        train_limiter_depth_bytes=None,
        train_rate_noise=0.1,
        loss_rate=0.0005,
        traceroute_visible_hops=None,
        tree_spec=TreeSpec(
            hosts_per_rack=4,
            racks_per_pod=2,
            pods=3,
            num_cores=2,
            host_link_bps=1 * GBITPS,
            tor_agg_link_bps=10 * GBITPS,
            agg_core_link_bps=10 * GBITPS,
            intra_host_bps=2 * GBITPS,
        ),
    )


class EC2LegacyProvider(CloudProvider):
    """The May-2012 EC2-like provider (one instance per availability zone)."""

    def __init__(self, zone: str = "us-east-1a", seed: int = 0,
                 params: Optional[ProviderParams] = None):
        self.zone = zone
        if params is None:
            params = ec2_legacy_params(zone)
        super().__init__(params, seed=seed)


register_provider("ec2-legacy", EC2LegacyProvider)
