"""The unified telemetry layer (`repro.obs`): span tracer JSONL round
trips, trace-on/trace-off bit-identity across backends, the metrics
registry vs. the legacy ``.stats`` views, worker ``/metrics`` exposition
(including mid-lease freshness), the ``obs report`` profile math, the
``--stats`` CLI fold, and the service report's opt-in telemetry block."""

import gc
import http.client
import json
import re

import pytest

from repro import obs
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    ResultStore,
    WorkItem,
    create_backend,
    run_trial,
)
from repro.experiments.cli import main as experiments_main
from repro.experiments.results import HOST_TIMING_FIELDS
from repro.experiments.worker import WorkerClient, spawn_local_workers
from repro.obs.report import (
    TraceError,
    build_profile,
    load_events,
    render_diff,
    render_report,
)


@pytest.fixture
def trace_to(tmp_path):
    """Enable tracing to a temp file for the test; always restore off."""
    path = tmp_path / "trace.jsonl"
    obs.configure(str(path), export_env=False)
    try:
        yield path
    finally:
        obs.configure(None, export_env=False)


def _canonical(records):
    return json.dumps(
        [
            {k: v for k, v in vars(rec).items() if k not in HOST_TIMING_FIELDS}
            for rec in records
        ],
        sort_keys=True,
    )


# ----------------------------------------------------------------- tracer
def test_span_off_by_default_is_shared_noop():
    assert not obs.enabled()
    assert obs.span("a", x=1) is obs.span("b")  # one shared no-op object
    with obs.span("a") as s:
        s.set(y=2)  # dropped, not an error
    obs.point("tick", z=3)  # dropped, not an error


def test_span_nesting_and_attrs_round_trip(trace_to):
    with obs.span("outer", depth=0):
        with obs.span("inner", label="x") as inner:
            inner.set(found=2)
            obs.point("tick", k=3)
    obs.configure(None, export_env=False)

    events = load_events(trace_to)
    spans = {ev["name"]: ev for ev in events if ev["ev"] == "span"}
    points = [ev for ev in events if ev["ev"] == "point"]
    assert set(spans) == {"outer", "inner"}
    outer, inner = spans["outer"], spans["inner"]
    assert outer["parent"] is None
    assert inner["parent"] == outer["span"]
    assert outer["attrs"] == {"depth": 0}
    assert inner["attrs"] == {"label": "x", "found": 2}  # set() merged in
    assert inner["dur"] <= outer["dur"]
    assert [p["name"] for p in points] == ["tick"]
    assert points[0]["attrs"] == {"k": 3}
    assert points[0]["parent"] == inner["span"]  # points attach to the stack
    assert {outer["pid"], inner["pid"], points[0]["pid"]} == {outer["pid"]}


def test_span_records_exceptions_and_unwinds_stack(trace_to):
    with pytest.raises(ValueError):
        with obs.span("boom"):
            raise ValueError("no")
    with obs.span("after"):
        pass
    obs.configure(None, export_env=False)
    spans = {ev["name"]: ev for ev in load_events(trace_to)}
    assert spans["boom"]["error"] == "ValueError"
    assert spans["after"]["parent"] is None  # the failed span was popped


# ----------------------------------------------- bit-identity across backends
def test_traced_inline_sweep_is_bit_identical(tmp_path):
    config = ExperimentConfig(
        scenarios=("smoke",), placers=("greedy", "random"), trials=2,
        baseline="random", workers=1, backend="inline",
    )
    untraced = ExperimentRunner(config).run()
    obs.configure(str(tmp_path / "sweep.jsonl"), export_env=False)
    try:
        traced = ExperimentRunner(config).run()
    finally:
        obs.configure(None, export_env=False)
    assert json.dumps(traced.canonical_json_dict(), sort_keys=True) == json.dumps(
        untraced.canonical_json_dict(), sort_keys=True
    )
    names = {ev["name"] for ev in load_events(tmp_path / "sweep.jsonl")}
    assert "experiments.run" in names


def test_traced_remote_sweep_is_bit_identical_and_workers_trace(tmp_path):
    items = [
        WorkItem.make("smoke", placer, trial, 0)
        for placer in ("greedy", "random")
        for trial in range(2)
    ]
    expected = create_backend("inline").map_trials(items)
    trace = tmp_path / "fabric.jsonl"
    # export_env=True so the spawned worker subprocess traces into the
    # same file (REPRO_TRACE is inherited); configure(None) pops it.
    obs.configure(str(trace))
    try:
        records = create_backend("remote", workers=1).map_trials(items)
    finally:
        obs.configure(None)
    assert _canonical(records) == _canonical(expected)
    events = load_events(trace)
    assert {ev["pid"] for ev in events if ev["ev"] == "span"} != set()
    assert len({ev["pid"] for ev in events}) >= 2  # scheduler and worker
    names = {ev["name"] for ev in events}
    assert "fabric.map_trials" in names
    assert "fabric.lease" in names  # the dispatch point event


# ------------------------------------------------- metrics vs. legacy views
def test_metrics_snapshot_matches_legacy_stats_views(tmp_path):
    from repro.net.alloc import IncrementalAllocator
    from repro.net.fairness import FlowDemand

    gc.collect()  # dying instruments must not skew the before/after delta
    before = obs.metrics.snapshot()

    alloc = IncrementalAllocator({"l0": 1e9, "l1": 1e9})
    alloc.add_demand("f0", FlowDemand(links=("l0",)))
    alloc.solve()
    alloc.add_demand("f1", FlowDemand(links=("l1",)))
    alloc.solve()

    store = ResultStore(tmp_path, version="v1")
    key = store.key_for("smoke", "random", 0, 42)
    assert store.get(key) is None  # miss
    store.put(key, run_trial("smoke", "random", 0, 42))
    assert store.get(key) is not None  # hit

    after = obs.metrics.snapshot()
    alloc_view, store_view = alloc.solver_stats(), store.stats
    for view, prefix in ((alloc_view, "repro.alloc."), (store_view, "repro.store.")):
        for field, count in view.items():
            name = prefix + field
            assert after.get(name, 0) - before.get(name, 0) == count, name
    assert store_view["hits"] == 1 and store_view["misses"] == 1
    assert store_view["stored"] == 1
    assert alloc_view["full_solves"] >= 1


def test_prometheus_text_exposition_format():
    registry = obs.MetricsRegistry()
    hits = obs.Counter("test.exposition.hits", help="cache hits", register=False)
    registry.register(hits)
    depth = obs.Gauge("test.exposition.depth", register=False)
    registry.register(depth)
    lat = obs.Histogram("test.exposition.wait", buckets=(0.1, 1.0), register=False)
    registry.register(lat)
    hits.inc(3)
    depth.set(2.5)
    lat.observe(0.05)
    lat.observe(5.0)

    text = registry.prometheus_text()
    assert "# HELP test_exposition_hits cache hits" in text
    assert "# TYPE test_exposition_hits counter" in text
    assert "test_exposition_hits_total 3" in text  # counters gain _total
    assert "test_exposition_depth 2.5" in text
    assert 'test_exposition_wait_bucket{le="0.1"} 1' in text
    assert 'test_exposition_wait_bucket{le="+Inf"} 2' in text
    assert "test_exposition_wait_count 2" in text
    # Every non-comment line is `name[{labels}] value`.
    sample = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [-+0-9.einfa]+$")
    for line in text.strip().splitlines():
        assert line.startswith("#") or sample.match(line), line


def _get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=5)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read().decode()
    finally:
        conn.close()


def test_worker_metrics_exposition_and_health_stay_fresh_mid_lease(
    tmp_path, monkeypatch
):
    """A chaos-slowed worker streams a lease for seconds; ``/health`` and
    ``/metrics`` (answered from fresh threads) must respond mid-lease and
    show the chunk advancing."""
    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "slow")
    items = [WorkItem.make("smoke", "random", t, 0) for t in range(4)]
    with spawn_local_workers(1) as pool:
        host, port = pool.addresses[0]
        client = WorkerClient(host, port)
        stream = client.open_lease("t-obs", [i.to_json_dict() for i in items])
        saw_mid_lease, done = False, False
        try:
            for _ in range(400):
                for data in stream.poll(0.1):
                    done = done or bool(data.get("done"))
                health = client.health()
                lease = (health or {}).get("current_lease")
                if not done and lease and lease["lease_id"] == "t-obs":
                    assert lease["trials_total"] == len(items)
                    assert 0 <= lease["trials_done"] <= len(items)
                    status, text = _get(host, port, "/metrics")
                    assert status == 200 and "# TYPE" in text
                    saw_mid_lease = True
                if done or stream.eof:
                    break
        finally:
            stream.close()
        assert done and saw_mid_lease

        health = client.health()
        assert health["trials_done"] == len(items)
        assert health["current_lease"] is None
        assert health["uptime_s"] > 0
        status, text = _get(host, port, "/metrics")
        assert status == 200
        match = re.search(r"^repro_fluid_runs_total (\d+)", text, re.M)
        assert match and int(match.group(1)) > 0  # counters advanced in-worker
        assert client.shutdown()


# ----------------------------------------------------------- report math
def _span_line(name, span_id, parent, dur, pid=1):
    return {
        "ev": "span", "name": name, "span": span_id, "parent": parent,
        "ts": 0.0, "dur": dur, "pid": pid, "tid": 1,
    }


def test_report_profile_math_on_hand_built_trace(tmp_path):
    # root (10s) -> child (6s) -> grandchild (1s); a second root-level
    # child (2s); one orphan span in another process (5s); one point.
    events = [
        _span_line("grandchild", "a-3", "a-2", 1.0),
        _span_line("child", "a-2", "a-1", 6.0),
        _span_line("child", "a-4", "a-1", 2.0),
        _span_line("root", "a-1", None, 10.0),
        _span_line("orphan", "b-1", "b-0", 5.0, pid=2),  # parent never closed
        {"ev": "point", "name": "tick", "ts": 1.0, "pid": 1, "tid": 1},
    ]
    path = tmp_path / "hand.jsonl"
    path.write_text("\n".join(json.dumps(ev) for ev in events) + "\n")

    profile = build_profile(load_events(path))
    assert profile.n_spans == 5
    assert profile.n_processes == 2
    assert profile.paths[("root",)] == [1, 10.0, 2.0]  # 10 - (6 + 2) self
    assert profile.paths[("root", "child")] == [2, 8.0, 7.0]  # 8 - 1 self
    assert profile.paths[("root", "child", "grandchild")] == [1, 1.0, 1.0]
    assert profile.paths[("orphan",)] == [1, 5.0, 5.0]  # treated as a root
    assert profile.points == {"tick": 1}
    assert profile.total_self_s() == pytest.approx(15.0)  # no double count

    text = render_report(profile)
    assert "5 span(s) across 2 process(es)" in text
    assert "grandchild" in text and "tick" in text

    diff = render_diff(profile, profile)
    assert "root" in diff and "ratio" in diff

    with pytest.raises(TraceError):
        load_events(tmp_path / "missing.jsonl")
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    with pytest.raises(TraceError):
        load_events(bad)


def test_report_cli_renders_and_diffs(tmp_path, capsys):
    from repro.obs.__main__ import main as obs_main

    path = tmp_path / "t.jsonl"
    obs.configure(str(path), export_env=False)
    try:
        with obs.span("alpha"):
            with obs.span("beta"):
                pass
    finally:
        obs.configure(None, export_env=False)

    assert obs_main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "beta" in out

    assert obs_main(["report", str(path), "--diff", str(path)]) == 0
    assert "ratio" in capsys.readouterr().out

    assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2


# ----------------------------------------------------------------- CLI fold
def test_stats_flag_prints_snapshot_and_cache_stats_is_alias(tmp_path, capsys):
    out_path = tmp_path / "r.json"
    rc = experiments_main(
        ["run", "--scenario", "smoke", "--trials", "1",
         "--placers", "random", "--output", str(out_path), "--stats"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "telemetry snapshot:" in captured.out
    assert "repro.sweep.runs" in captured.out

    rc = experiments_main(
        ["run", "--scenario", "smoke", "--trials", "1",
         "--placers", "random", "--output", str(out_path), "--cache-stats"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "telemetry snapshot:" in captured.out  # alias reaches --stats
    assert "deprecated" in captured.err


# -------------------------------------------------- service telemetry block
def test_service_report_telemetry_is_opt_in_and_non_canonical():
    from repro.service.session import run_churn_session

    session = dict(n_vms=4, hours=2.0, epoch_s=60.0, apps_per_hour=1.0)
    plain = run_churn_session(3, placer="greedy", **session)
    with_telemetry = run_churn_session(
        3, placer="greedy", telemetry=True, **session
    )

    assert "telemetry" not in plain.to_json_dict()
    block = with_telemetry.to_json_dict()["telemetry"]
    assert "metrics" in block and "session_wall_s" in block
    assert any(name.startswith("repro.") for name in block["metrics"])

    # Canonical forms drop the block, so telemetry never breaks the
    # bit-identity the CI chaos jobs and the result cache rely on.
    assert json.dumps(
        plain.canonical_json_dict(), sort_keys=True
    ) == json.dumps(with_telemetry.canonical_json_dict(), sort_keys=True)
