"""Indexed, incremental max-min fair allocation engine.

:func:`repro.net.fairness.max_min_allocation` is the reference
progressive-filling implementation: it receives plain string-keyed mappings,
rebuilds its ``link -> members`` index on every call, and intersects member
sets against the unfrozen set at every water-filling step.  That is fine for
a one-off allocation, but the fluid simulator re-solves after *every* event
(a flow starting, finishing, or being switched off), so almost all of that
work is repeated with a nearly identical flow set.

:class:`IncrementalAllocator` keeps the state the solver needs *between*
solves:

* link ids and flow ids are interned to dense integer slots once;
* per-link member sets, member counts, and capacities live in flat lists
  indexed by those slots;
* :meth:`add_flow` / :meth:`remove_flow` apply deltas in O(path length);
* :meth:`solve` runs progressive filling over integer indices (counters
  instead of set intersections, a lazy heap for flow caps) and caches its
  result until the flow set changes again.

The solver performs the *same* floating-point operations in the same
per-flow order as the reference implementation, so its rates are
bit-identical on any instance where the reference's own (set-iteration-
order-dependent) tie-breaks do not matter — ``tests/test_hotpath.py``
checks agreement within 1e-9 on randomized instances, and
``python -m repro.bench`` re-checks it on every benchmark run.

Above a size threshold (see :func:`set_vector_thresholds`) :meth:`solve`
switches to an **array-backed water-filling path**: link capacities,
remaining headroom, and unfrozen-member counts live in NumPy vectors
indexed by the interned link slots, each flow's path is a cached int
index array (the rows of a CSR-style flow×link incidence), and the
per-round bottleneck search becomes one masked divide plus ``argmin``.
Because ``argmin`` breaks ties on the lowest index — exactly the
``(value, index)`` order of the scalar path's heaps — and the freeze
step performs the same subtract-then-clamp in the same dtype and
per-link order, the vector path is bit-identical to the scalar path
(and hence to the reference, with the caveat above).  Paths that repeat
a link fall back to the scalar solver, which handles them exactly.

Two further mechanisms keep event-loop re-solves cheap at scale:

* **Slot-rate output** — solves write per-slot rates into a flat float64
  vector; :meth:`solve_slots` hands that vector to array-based callers
  (the vectorised fluid loop) with no per-flow dict in sight, while
  :meth:`solve` builds the string-keyed mapping lazily on demand.
* **Partial re-solves** — progressive filling decomposes over connected
  components of the flow↔link sharing graph: a flow's rate depends only
  on flows it (transitively) shares links with.  After an edit, solve
  walks that graph outward from the edited links; when the affected
  closure is a minority of the flow set, only the closure is re-solved
  and every other slot keeps its previous (bit-identical) rate.  A
  retirement in one rack of a tree topology therefore re-solves one
  rack, not the datacenter.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.net.fairness import FlowDemand

__all__ = [
    "IncrementalAllocator",
    "set_vector_thresholds",
    "vector_thresholds",
]

#: Allocator modes accepted by :class:`IncrementalAllocator`.
_MODES = ("auto", "scalar", "vector")

# Instance sizes below which the vectorised solve is not worth its NumPy
# dispatch overhead.  Both must be met for ``mode="auto"`` to vectorise:
# small-but-wide or tall-but-narrow instances stay on the scalar path.
_VECTOR_MIN_FLOWS = 256
_VECTOR_MIN_LINKS = 256


def set_vector_thresholds(
    flows: Optional[int] = None, links: Optional[int] = None
) -> Tuple[int, int]:
    """Set the ``mode="auto"`` vectorisation thresholds; returns the old pair.

    An allocator in ``"auto"`` mode (the default) uses the array-backed
    solve only when it holds at least ``flows`` routed flows *and* its
    link universe has at least ``links`` links.  Pass ``0`` to always
    vectorise, or a huge value to never do so.  Tests and benchmarks use
    this to force one path or the other without constructing allocators
    differently.
    """
    global _VECTOR_MIN_FLOWS, _VECTOR_MIN_LINKS
    previous = (_VECTOR_MIN_FLOWS, _VECTOR_MIN_LINKS)
    if flows is not None:
        if flows < 0:
            raise SimulationError("vector flow threshold must be >= 0")
        _VECTOR_MIN_FLOWS = int(flows)
    if links is not None:
        if links < 0:
            raise SimulationError("vector link threshold must be >= 0")
        _VECTOR_MIN_LINKS = int(links)
    return previous


def vector_thresholds() -> Tuple[int, int]:
    """Current ``(flows, links)`` auto-vectorisation thresholds."""
    return (_VECTOR_MIN_FLOWS, _VECTOR_MIN_LINKS)


class IncrementalAllocator:
    """Max-min fair allocator with O(path) flow add/remove deltas.

    Args:
        capacities: mapping of link id to capacity in bits/second.  The link
            universe is fixed at construction; flows may only reference these
            links.
        mode: ``"auto"`` (default) picks the array-backed solve above the
            :func:`set_vector_thresholds` sizes, ``"scalar"`` always runs
            the heap-based solve, ``"vector"`` always runs the array-backed
            one.  All three produce bit-identical rates; flows whose path
            repeats a link force the scalar solve regardless of mode.
    """

    def __init__(
        self, capacities: Mapping[str, float], mode: str = "auto"
    ) -> None:
        if mode not in _MODES:
            raise SimulationError(
                f"unknown allocator mode {mode!r}; expected one of {_MODES}"
            )
        self._mode = mode
        self._link_ids: List[str] = []
        self._link_index: Dict[str, int] = {}
        self._capacity: List[float] = []
        for link_id, cap in capacities.items():
            self._link_index[link_id] = len(self._link_ids)
            self._link_ids.append(link_id)
            self._capacity.append(float(cap))
        # Capacity vector for the array-backed solve, built on first use so
        # scalar-only allocators pay nothing.
        self._capacity_np: Optional[np.ndarray] = None
        # Flow slots: a free-list keeps slot indices dense under churn.
        self._flow_slot: Dict[str, int] = {}
        self._slot_name: List[str] = []
        self._slot_links: List[Tuple[int, ...]] = []  # with duplicates, if any
        self._slot_unique_links: List[Tuple[int, ...]] = []
        # Flat CSR buffer of every slot's link row: slot ``s`` occupies
        # ``_row_data[_row_start[s] : _row_start[s] + _slot_nlinks[s]]``.
        # Rows are append-only; removing a flow orphans its segment, and the
        # buffer is compacted (vectorised) when orphans dominate.  This lets
        # the vector solve gather a whole freeze batch's links with one
        # fancy index instead of a per-slot Python loop.
        self._row_data = np.zeros(0, dtype=np.intp)
        self._row_start = np.zeros(0, dtype=np.int64)
        self._row_used = 0  # high-water mark of _row_data
        self._row_live = 0  # entries belonging to registered flows
        self._slot_cap: List[Optional[float]] = []
        self._free_slots: List[int] = []
        # Per-link membership (flow slots currently crossing the link) and a
        # refcount of links in use, so solves touch only occupied links.
        self._members: List[Set[int]] = [set() for _ in self._link_ids]
        self._link_use: Dict[int, int] = {}
        # Per-link member arrays for the vector solve, invalidated whenever
        # the link's membership changes.
        self._members_np: Dict[int, np.ndarray] = {}
        # Slots of live capped flows, slots of live linkless flows, and each
        # slot's path length, so the vector solve can build its working sets
        # without a Python sweep over every registered flow.
        self._capped: Set[int] = set()
        self._linkless: Set[int] = set()
        self._slot_nlinks = np.zeros(0, dtype=np.int64)
        # Flows whose path repeats a link break the share-heap monotonicity
        # (freezing subtracts the level once per occurrence, so a share can
        # shrink); while any such flow is registered, solve() selects
        # bottlenecks by linear scan instead.
        self._dup_link_flows = 0
        # Per-slot solved rates; solve() derives its dict from this lazily.
        self._slot_rate = np.zeros(0, dtype=np.float64)
        self._solved = False
        self._solution: Optional[Dict[str, float]] = None
        # True once any solve has populated _slot_rate: from then on edits
        # are tracked so the next solve can be partial.
        self._have_rates = False
        self._dirty_links: Set[int] = set()
        self._dirty_linkless: Set[int] = set()
        # Typed solve counters (thin-viewed by :meth:`solver_stats` and
        # aggregated process-wide by ``obs.metrics.snapshot()``).
        self._full_solves = obs.Counter("repro.alloc.full_solves")
        self._partial_solves = obs.Counter("repro.alloc.partial_solves")
        self._partial_slots = obs.Counter("repro.alloc.partial_slots")

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._flow_slot)

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._flow_slot

    def flow_ids(self) -> List[str]:
        """Ids of the flows currently registered."""
        return list(self._flow_slot)

    # ------------------------------------------------------------- mutation
    def add_flow(
        self,
        flow_id: str,
        links: Sequence[str],
        max_rate: Optional[float] = None,
    ) -> int:
        """Register a flow crossing ``links`` with an optional rate cap.

        Returns the flow's slot index — an index into the vector
        :meth:`solve_slots` returns, valid until the flow is removed.

        Raises:
            SimulationError: on duplicate flow ids or unknown links.
        """
        if flow_id in self._flow_slot:
            raise SimulationError(f"duplicate flow id {flow_id!r}")
        indexed: List[int] = []
        for link_id in links:
            index = self._link_index.get(link_id)
            if index is None:
                raise SimulationError(
                    f"flow {flow_id!r} references unknown link {link_id!r}"
                )
            indexed.append(index)
        link_tuple = tuple(indexed)
        # The reference subtracts the frozen level once per *occurrence* but
        # counts each flow once per link, so keep both views when a path
        # repeats a link (it normally never does).
        unique = (
            link_tuple
            if len(set(link_tuple)) == len(link_tuple)
            else tuple(dict.fromkeys(link_tuple))
        )
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_name[slot] = flow_id
            self._slot_links[slot] = link_tuple
            self._slot_unique_links[slot] = unique
            self._slot_cap[slot] = max_rate
        else:
            slot = len(self._slot_name)
            self._slot_name.append(flow_id)
            self._slot_links.append(link_tuple)
            self._slot_unique_links.append(unique)
            self._slot_cap.append(max_rate)
            if slot >= self._slot_rate.shape[0]:
                size = max(16, 2 * self._slot_rate.shape[0], slot + 1)
                grown = np.zeros(size, dtype=np.float64)
                grown[: self._slot_rate.shape[0]] = self._slot_rate
                self._slot_rate = grown
                grown_n = np.zeros(size, dtype=np.int64)
                grown_n[: self._slot_nlinks.shape[0]] = self._slot_nlinks
                self._slot_nlinks = grown_n
                grown_s = np.zeros(size, dtype=np.int64)
                grown_s[: self._row_start.shape[0]] = self._row_start
                self._row_start = grown_s
        # Write the row before registering the flow: a compaction triggered
        # by the capacity check must only see fully-recorded rows.
        n_row = len(link_tuple)
        if n_row:
            self._ensure_row_capacity(n_row)
            self._row_data[self._row_used : self._row_used + n_row] = indexed
            self._row_start[slot] = self._row_used
            self._row_used += n_row
            self._row_live += n_row
        else:
            self._row_start[slot] = self._row_used
        self._slot_nlinks[slot] = n_row
        self._flow_slot[flow_id] = slot
        if max_rate is not None:
            self._capped.add(slot)
        if not n_row:
            self._linkless.add(slot)
        if unique is not link_tuple:
            self._dup_link_flows += 1
        for index in unique:
            self._members[index].add(slot)
            self._link_use[index] = self._link_use.get(index, 0) + 1
            self._members_np.pop(index, None)
        if self._have_rates:
            if unique:
                self._dirty_links.update(unique)
            else:
                self._dirty_linkless.add(slot)
        self._solved = False
        self._solution = None
        return slot

    def add_demand(self, flow_id: str, demand: FlowDemand) -> int:
        """Register a flow from a :class:`~repro.net.fairness.FlowDemand`."""
        return self.add_flow(flow_id, demand.links, demand.max_rate)

    def remove_flow(self, flow_id: str) -> None:
        """Forget a flow previously registered with :meth:`add_flow`."""
        slot = self._flow_slot.pop(flow_id, None)
        if slot is None:
            raise SimulationError(f"unknown flow {flow_id!r}")
        if self._slot_unique_links[slot] is not self._slot_links[slot]:
            self._dup_link_flows -= 1
        for index in self._slot_unique_links[slot]:
            self._members[index].discard(slot)
            self._members_np.pop(index, None)
            left = self._link_use[index] - 1
            if left:
                self._link_use[index] = left
            else:
                del self._link_use[index]
        if self._have_rates:
            self._dirty_links.update(self._slot_unique_links[slot])
            self._dirty_linkless.discard(slot)
        self._slot_name[slot] = ""
        self._slot_links[slot] = ()
        self._slot_unique_links[slot] = ()
        self._slot_cap[slot] = None
        self._row_live -= int(self._slot_nlinks[slot])
        self._slot_nlinks[slot] = 0
        self._capped.discard(slot)
        self._linkless.discard(slot)
        self._free_slots.append(slot)
        self._solved = False
        self._solution = None

    def clear(self) -> None:
        """Remove every flow (capacities are kept)."""
        self._flow_slot.clear()
        self._slot_name.clear()
        self._slot_links.clear()
        self._slot_unique_links.clear()
        self._slot_cap.clear()
        self._row_data = np.zeros(0, dtype=np.intp)
        self._row_start = np.zeros(0, dtype=np.int64)
        self._row_used = 0
        self._row_live = 0
        self._free_slots.clear()
        for members in self._members:
            members.clear()
        self._link_use.clear()
        self._members_np.clear()
        self._capped.clear()
        self._linkless.clear()
        self._slot_nlinks = np.zeros(0, dtype=np.int64)
        self._dup_link_flows = 0
        self._slot_rate = np.zeros(0, dtype=np.float64)
        self._solved = False
        self._solution = None
        self._have_rates = False
        self._dirty_links.clear()
        self._dirty_linkless.clear()

    # --------------------------------------------------------------- solve
    @property
    def mode(self) -> str:
        """The allocator's configured mode (``auto``/``scalar``/``vector``)."""
        return self._mode

    def uses_vector_path(self) -> bool:
        """Whether the next :meth:`solve` will take the array-backed path."""
        if self._dup_link_flows:
            # The scalar solver is the only one that models a path crossing
            # the same link twice (one count, two capacity drains).
            return False
        if self._mode == "scalar":
            return False
        if self._mode == "vector":
            return True
        return (
            len(self._flow_slot) >= _VECTOR_MIN_FLOWS
            and len(self._link_ids) >= _VECTOR_MIN_LINKS
        )

    def solve(self) -> Dict[str, float]:
        """Max-min fair rates for the registered flows (cached between edits).

        Returns the same mapping a reference
        :func:`~repro.net.fairness.max_min_allocation` call over the current
        flow set would; callers must treat it as read-only.  The scalar and
        array-backed paths produce bit-identical mappings, so which one ran
        is unobservable from the result.
        """
        self._ensure_solved()
        if self._solution is None:
            n = len(self._flow_slot)
            slots = np.fromiter(self._flow_slot.values(), dtype=np.intp, count=n)
            self._solution = dict(
                zip(self._flow_slot.keys(), self._slot_rate[slots].tolist())
            )
        return self._solution

    def solve_slots(self) -> np.ndarray:
        """Solve and return the per-slot rate vector (no dict is built).

        ``result[slot]`` is the rate of the flow whose :meth:`add_flow`
        returned ``slot``.  The array is owned by the allocator: treat it as
        read-only, and re-fetch (or copy what you need) after any edit.
        Entries for freed slots are stale.
        """
        self._ensure_solved()
        return self._slot_rate

    def solver_stats(self) -> Dict[str, int]:
        """Counters: full solves, partial solves, slots re-solved partially.

        A thin view over this instance's :class:`repro.obs.Counter`
        instruments (the process-wide aggregate across allocators lives
        in ``obs.metrics.snapshot()`` under ``repro.alloc.*``).
        """
        return {
            "full_solves": self._full_solves.count,
            "partial_solves": self._partial_solves.count,
            "partial_slots": self._partial_slots.count,
        }

    def _ensure_solved(self) -> None:
        """Run a (possibly partial) solve so ``_slot_rate`` is current."""
        if self._solved:
            return
        # Partial re-solve: progressive filling decomposes over connected
        # components of the flow↔link sharing graph, so flows outside the
        # transitive closure of the edited links keep their previous rates
        # bit-for-bit.  Duplicate-link paths void the closure's heap-order
        # determinism, so they always take the full solve.
        partial = None
        if self._have_rates and not self._dup_link_flows:
            partial = self._dirty_closure()
        if partial is not None:
            for slot in self._dirty_linkless:
                cap = self._slot_cap[slot]
                self._slot_rate[slot] = math.inf if cap is None else cap
            if partial:
                self._solve_scalar(restrict=partial)
            self._partial_solves.inc()
            self._partial_slots.inc(len(partial))
        else:
            # Full solves are rare and expensive enough to trace; partial
            # re-solves run once per fluid event and get counters only.
            vectorised = self.uses_vector_path()
            with obs.span(
                "alloc.solve",
                mode="vector" if vectorised else "scalar",
                flows=len(self._flow_slot),
                links=len(self._link_ids),
            ):
                if vectorised:
                    self._solve_vector()
                else:
                    self._solve_scalar()
            self._full_solves.inc()
        self._dirty_links.clear()
        self._dirty_linkless.clear()
        self._solved = True
        self._have_rates = True

    def _dirty_closure(self) -> Optional[Set[int]]:
        """Flow slots transitively sharing links with the edited links.

        Returns None when the closure exceeds half the flow set — a partial
        re-solve would not pay for its bookkeeping — otherwise the set of
        affected slots (possibly empty).  The limit is additionally capped
        at 8192 slots: beyond that the restricted scalar solve loses to the
        array-backed full solve, and the abort itself must stay cheap (the
        walk is O(limit), so a giant single-component instance must not
        spend a half-scan discovering it cannot be partial).
        """
        if not self._dirty_links:
            return set()
        limit = max(64, min(len(self._flow_slot) // 2, 8192))
        members = self._members
        # First-hop bound: if any edited link alone carries more members
        # than the limit, the closure cannot fit — skip the walk entirely
        # (dense components hit this on every event).
        for link in self._dirty_links:
            if len(members[link]) > limit:
                return None
        slot_unique = self._slot_unique_links
        seen_links: Set[int] = set()
        seen_slots: Set[int] = set()
        stack = list(self._dirty_links)
        while stack:
            link = stack.pop()
            if link in seen_links:
                continue
            seen_links.add(link)
            for slot in members[link]:
                if slot in seen_slots:
                    continue
                seen_slots.add(slot)
                if len(seen_slots) > limit:
                    return None
                for other in slot_unique[slot]:
                    if other not in seen_links:
                        stack.append(other)
        return seen_slots

    def _solve_scalar(self, restrict: Optional[Set[int]] = None) -> None:
        """Heap-based progressive filling over interned int slots.

        With ``restrict``, only those slots (a transitively closed set: no
        member shares a link with a slot outside it) are re-solved; their
        links' counts are rebuilt from the restricted membership, which by
        closedness equals the global counts on those links.
        """
        slot_rate = self._slot_rate
        unfrozen: List[int] = []
        for slot in (
            self._flow_slot.values() if restrict is None else restrict
        ):
            if self._slot_links[slot]:
                unfrozen.append(slot)
            else:
                # Flows that traverse no links are only limited by their cap.
                cap = self._slot_cap[slot]
                slot_rate[slot] = math.inf if cap is None else cap

        # Working copies for only the links currently in play.
        capacity = self._capacity
        if restrict is None:
            counts: Dict[int, int] = dict(self._link_use)
        else:
            counts = {}
            for slot in unfrozen:
                for index in self._slot_unique_links[slot]:
                    counts[index] = counts.get(index, 0) + 1
        remaining: Dict[int, float] = {
            index: capacity[index] for index in counts
        }

        frozen = bytearray(len(self._slot_name))
        cap_heap: List[Tuple[float, int]] = [
            (self._slot_cap[slot], slot)
            for slot in unfrozen
            if self._slot_cap[slot] is not None
        ]
        heapq.heapify(cap_heap)
        # Lazy heap of per-link equal shares.  During progressive filling a
        # link's share never decreases (each frozen flow removes at most one
        # share's worth of capacity and one member), so stale entries are
        # safe: they pop early, get corrected in place, and re-sift.  A flow
        # that crosses the same link twice voids that invariant (freezing it
        # drains two shares from one member), so fall back to scanning.
        use_share_heap = self._dup_link_flows == 0
        share_heap: List[Tuple[float, int]] = []
        if use_share_heap:
            share_heap = [
                (remaining[index] / count, index)
                for index, count in counts.items()
            ]
            heapq.heapify(share_heap)

        slot_links = self._slot_links
        slot_unique = self._slot_unique_links
        n_left = len(unfrozen)
        while n_left:
            # The next "water level" is the smallest of: the equal share on
            # any link carrying unfrozen flows, and the smallest unfrozen cap.
            bottleneck_share = math.inf
            bottleneck_link = -1
            if use_share_heap:
                while share_heap:
                    share, index = share_heap[0]
                    count = counts[index]
                    if count <= 0:
                        heapq.heappop(share_heap)
                        continue
                    current = remaining[index] / count
                    if current > share:  # stale entry: correct and re-sift
                        heapq.heapreplace(share_heap, (current, index))
                        continue
                    bottleneck_share = current
                    bottleneck_link = index
                    break
            else:
                for index, count in counts.items():
                    if count <= 0:
                        continue
                    share = remaining[index] / count
                    if share < bottleneck_share:
                        bottleneck_share = share
                        bottleneck_link = index

            while cap_heap and frozen[cap_heap[0][1]]:
                heapq.heappop(cap_heap)

            if cap_heap and cap_heap[0][0] <= bottleneck_share:
                # A flow hits its own cap before any link saturates.
                level, capped_slot = heapq.heappop(cap_heap)
                to_freeze = [capped_slot]
            elif bottleneck_link >= 0:
                if use_share_heap:
                    # Freezing drains the bottleneck link, so drop its entry.
                    heapq.heappop(share_heap)
                level = bottleneck_share
                to_freeze = [
                    slot
                    for slot in self._members[bottleneck_link]
                    if not frozen[slot]
                ]
            else:
                # Unfrozen flows remain but nothing constrains them.
                for slot in unfrozen:
                    if not frozen[slot]:
                        slot_rate[slot] = math.inf
                break

            # Count the round's occurrences per link, then drain each link
            # once with the fused ``remaining - k*level`` (clamped at zero).
            # The level is constant within a round, so this is the same
            # allocation the per-occurrence drain produced, and it is the
            # form the array-backed solve computes — keeping the two paths
            # bit-identical costs one multiply per touched link.
            drains: Dict[int, int] = {}
            for slot in to_freeze:
                frozen[slot] = 1
                n_left -= 1
                slot_rate[slot] = level
                for index in slot_links[slot]:
                    drains[index] = drains.get(index, 0) + 1
                for index in slot_unique[slot]:
                    counts[index] -= 1
            for index, k in drains.items():
                left = remaining[index] - k * level
                remaining[index] = left if left > 0.0 else 0.0

    def _ensure_row_capacity(self, n: int) -> None:
        """Make room for ``n`` more entries at the end of ``_row_data``."""
        if self._row_used + n <= self._row_data.shape[0]:
            return
        if self._row_live + n <= self._row_data.shape[0] // 2:
            # Orphaned rows (from removed flows) dominate the buffer:
            # compacting frees more than doubling would add.
            self._compact_rows()
            return
        size = max(64, 2 * self._row_data.shape[0], self._row_used + n)
        grown = np.zeros(size, dtype=np.intp)
        grown[: self._row_used] = self._row_data[: self._row_used]
        self._row_data = grown

    def _compact_rows(self) -> None:
        """Repack live rows to the front of ``_row_data`` (vectorised)."""
        n_reg = len(self._flow_slot)
        if not n_reg:
            self._row_used = 0
            return
        slots = np.fromiter(self._flow_slot.values(), dtype=np.intp, count=n_reg)
        lens = self._slot_nlinks[slots]
        ends = np.cumsum(lens)
        offs = ends - lens
        total = int(ends[-1])
        gather = np.repeat(self._row_start[slots] - offs, lens)
        gather += np.arange(total)
        self._row_data[:total] = self._row_data[gather]
        self._row_start[slots] = offs
        self._row_used = total

    def _slot_row(self, slot: int) -> np.ndarray:
        """The slot's link index row (a view into the flat CSR buffer)."""
        start = self._row_start[slot]
        return self._row_data[start : start + self._slot_nlinks[slot]]

    def _solve_vector(self) -> None:
        """Array-backed water-filling over link capacity vectors.

        Per round: one masked divide + ``argmin`` finds the bottleneck link
        (ties break on the lowest link index, matching the scalar heaps'
        ``(share, index)`` order); the freeze batch's link rows are gathered
        from the flat CSR buffer with one fancy index, histogrammed with
        ``bincount``, and every link drained by the fused
        ``remaining - k*level`` clamp — the identical expression the scalar
        path evaluates per touched link, so the two paths stay bit-identical
        without replaying per-occurrence subtracts.  Flow caps keep the
        scalar path's lazy heap — caps are per-flow, so there is nothing to
        vectorise across links.  Only called when no registered path repeats
        a link.
        """
        if self._capacity_np is None:
            self._capacity_np = np.asarray(self._capacity, dtype=np.float64)

        slot_rate = self._slot_rate
        for slot in self._linkless:
            # Flows that traverse no links are only limited by their cap.
            cap = self._slot_cap[slot]
            slot_rate[slot] = math.inf if cap is None else cap

        n_links = len(self._capacity)
        counts = np.zeros(n_links, dtype=np.int64)
        n_used = len(self._link_use)
        if n_used:
            used = np.fromiter(
                self._link_use.keys(), dtype=np.intp, count=n_used
            )
            counts[used] = np.fromiter(
                self._link_use.values(), dtype=np.int64, count=n_used
            )
        remaining = self._capacity_np.copy()
        shares = np.empty(n_links, dtype=np.float64)
        active = np.empty(n_links, dtype=bool)

        frozen = np.zeros(len(self._slot_name), dtype=bool)
        cap_heap: List[Tuple[float, int]] = [
            (self._slot_cap[slot], slot)
            for slot in self._capped
            if self._slot_links[slot]
        ]
        heapq.heapify(cap_heap)

        inf = math.inf
        n_left = len(self._flow_slot) - len(self._linkless)
        while n_left:
            # Bottleneck search: equal share of every link still carrying
            # unfrozen flows, in one vector divide; links with no unfrozen
            # members are masked to +inf.
            np.greater(counts, 0, out=active)
            shares.fill(inf)
            np.divide(remaining, counts, out=shares, where=active)
            bottleneck_link = int(np.argmin(shares))
            bottleneck_share = float(shares[bottleneck_link])

            while cap_heap and frozen[cap_heap[0][1]]:
                heapq.heappop(cap_heap)

            batch: Optional[np.ndarray] = None
            if cap_heap and cap_heap[0][0] <= bottleneck_share:
                # A flow hits its own cap before any link saturates.
                level, capped_slot = heapq.heappop(cap_heap)
                n_batch = 1
            elif bottleneck_share < inf:
                level = bottleneck_share
                mem = self._members_np.get(bottleneck_link)
                if mem is None:
                    ms = self._members[bottleneck_link]
                    mem = np.fromiter(ms, dtype=np.intp, count=len(ms))
                    self._members_np[bottleneck_link] = mem
                batch = mem[~frozen[mem]]
                n_batch = int(batch.shape[0])
            else:
                # Unfrozen flows remain but nothing constrains them (rare:
                # every remaining link has infinite headroom), so a Python
                # sweep over the registry is fine here.
                nlinks = self._slot_nlinks
                for slot in self._flow_slot.values():
                    if nlinks[slot] and not frozen[slot]:
                        slot_rate[slot] = inf
                break

            n_left -= n_batch
            if n_batch == 1:
                slot = capped_slot if batch is None else int(batch[0])
                frozen[slot] = True
                slot_rate[slot] = level
                row = self._slot_row(slot)
                segment = remaining[row] - level
                np.maximum(segment, 0.0, out=segment)
                remaining[row] = segment
                counts[row] -= 1
                continue
            frozen[batch] = True
            slot_rate[batch] = level
            # Gather the batch's link rows from the flat CSR buffer in one
            # fancy index (no per-slot Python loop), histogram them, and
            # drain every touched link with the fused ``remaining -
            # k*level`` clamp the scalar path computes.  Untouched links see
            # ``remaining - 0*level``, which is exact, so the drain runs
            # unmasked over the full link vector.
            lens = self._slot_nlinks[batch]
            ends = np.cumsum(lens)
            gather = np.repeat(self._row_start[batch] - (ends - lens), lens)
            gather += np.arange(int(ends[-1]))
            occ = np.bincount(self._row_data[gather], minlength=n_links)
            counts -= occ
            remaining -= occ * level
            np.maximum(remaining, 0.0, out=remaining)
