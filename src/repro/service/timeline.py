"""Piecewise-hourly ground-truth network timelines (§6.1's drifting cloud).

A :class:`NetworkTimeline` holds one hose-rate matrix per epoch (an hour by
default) and optional recorded pairwise-rate matrices.  Attached to a
provider via :func:`attach_timeline`, it *replaces* the provider's slow
Ornstein-Uhlenbeck hose drift with explicit epoch-by-epoch rates, so the
fluid simulator, packet trains, and netperf all see the epoch-correct
network — every ground-truth path in :class:`~repro.cloud.provider.CloudProvider`
flows through ``hose_rate``.

Timelines come from two places:

* :func:`generate_timeline` synthesises one from a provider's base hose
  rates with a named drift generator — ``random-walk`` (multiplicative
  log-walk per VM), ``diurnal`` (per-VM phase-shifted day/night cycle), or
  ``hotspot-flap`` (a subset of VMs collapses to a fraction of its cap for
  multi-epoch dwells, the regime where a frozen hour-0 profile misleads the
  placer the most);
* :meth:`NetworkTimeline.load` reads a recorded timeline (JSON) from disk,
  e.g. one exported from a real measurement campaign.

Pairwise entries, when present, describe recorded per-path measurements and
are surfaced through :meth:`NetworkTimeline.pair_rate_at` (the oracle and
trace replay read them); the *simulated* network remains hose + physical
topology, as §4.4 found on EC2 and Rackspace.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import ServiceError

#: Epoch length matching the paper's hourly predictability analysis.
DEFAULT_EPOCH_S = 3600.0

_SCHEMA = "repro.service/timeline/v1"


@dataclass
class NetworkTimeline:
    """Per-epoch ground-truth rate matrices.

    Attributes:
        epoch_s: epoch length in seconds (an hour by default).
        hose_epochs: one ``{vm: egress_bps}`` mapping per epoch; every epoch
            must cover the same VM set.
        pair_epochs: optional recorded ``{(src, dst): rate_bps}`` mappings
            per epoch (empty mappings when absent).
        drift: name of the generator that produced the timeline (or
            ``"recorded"`` for loaded ones), for reports.

    Queries past the last epoch clamp to it, so simulations that run past
    the session horizon stay defined.
    """

    epoch_s: float
    hose_epochs: List[Dict[str, float]]
    pair_epochs: List[Dict[Tuple[str, str], float]] = field(default_factory=list)
    drift: str = "recorded"

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ServiceError("epoch_s must be positive")
        if not self.hose_epochs:
            raise ServiceError("a timeline needs at least one epoch")
        vms = set(self.hose_epochs[0])
        if not vms:
            raise ServiceError("timeline epochs must cover at least one VM")
        for index, epoch in enumerate(self.hose_epochs):
            if set(epoch) != vms:
                raise ServiceError(
                    f"epoch {index} covers a different VM set than epoch 0"
                )
            for vm, rate in epoch.items():
                if not math.isfinite(rate) or rate <= 0:
                    raise ServiceError(
                        f"epoch {index} has non-positive rate for {vm!r}"
                    )
        if self.pair_epochs and len(self.pair_epochs) != len(self.hose_epochs):
            raise ServiceError("pair_epochs must match hose_epochs in length")

    # -------------------------------------------------------------- accessors
    @property
    def n_epochs(self) -> int:
        return len(self.hose_epochs)

    @property
    def vms(self) -> List[str]:
        return sorted(self.hose_epochs[0])

    def covers(self, vm: str) -> bool:
        return vm in self.hose_epochs[0]

    def epoch_of(self, time_s: float) -> int:
        """The (clamped) epoch index containing ``time_s``."""
        if time_s < 0:
            raise ServiceError("timeline queried at negative time")
        return min(int(time_s // self.epoch_s), self.n_epochs - 1)

    def hose_rate_at(self, vm: str, time_s: float) -> Optional[float]:
        """Egress cap of ``vm`` at ``time_s`` (``None`` for uncovered VMs)."""
        return self.hose_epochs[self.epoch_of(time_s)].get(vm)

    def pair_rate_at(self, src: str, dst: str, time_s: float) -> Optional[float]:
        """Recorded pairwise rate at ``time_s``, when the timeline has one."""
        if not self.pair_epochs:
            return None
        return self.pair_epochs[self.epoch_of(time_s)].get((src, dst))

    def hose_series(self, vm: str) -> List[float]:
        """The per-epoch egress caps of one VM (ground truth, for analysis)."""
        if not self.covers(vm):
            raise ServiceError(f"timeline does not cover VM {vm!r}")
        return [epoch[vm] for epoch in self.hose_epochs]

    # ------------------------------------------------------------ persistence
    def save(self, path: Union[str, Path]) -> Path:
        """Write the timeline to ``path`` as JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _SCHEMA,
            "epoch_s": self.epoch_s,
            "drift": self.drift,
            "hose_epochs": self.hose_epochs,
            "pair_epochs": [
                {f"{src}->{dst}": rate for (src, dst), rate in epoch.items()}
                for epoch in self.pair_epochs
            ],
        }
        target.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NetworkTimeline":
        """Read a timeline written by :meth:`save`."""
        source = Path(path)
        try:
            payload = json.loads(source.read_text())
        except (OSError, ValueError) as exc:
            raise ServiceError(f"cannot read timeline {source}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            raise ServiceError(f"{source} is not a timeline file (schema {_SCHEMA})")
        try:
            pair_epochs = []
            for epoch in payload.get("pair_epochs") or []:
                parsed: Dict[Tuple[str, str], float] = {}
                for key, rate in epoch.items():
                    src, sep, dst = key.partition("->")
                    if not sep:
                        raise ServiceError(f"malformed pair key {key!r}")
                    parsed[(src, dst)] = float(rate)
                pair_epochs.append(parsed)
            return cls(
                epoch_s=float(payload["epoch_s"]),
                hose_epochs=[
                    {vm: float(rate) for vm, rate in epoch.items()}
                    for epoch in payload["hose_epochs"]
                ],
                pair_epochs=pair_epochs,
                drift=str(payload.get("drift", "recorded")),
            )
        except KeyError as exc:
            raise ServiceError(
                f"malformed timeline {source}: missing field {exc}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed timeline {source}: {exc}") from exc


# ---------------------------------------------------------------------------
# Drift generators
# ---------------------------------------------------------------------------
#: A generator maps (base rates, epoch count, rng, strength) to hose epochs.
DriftGenerator = Callable[
    [Mapping[str, float], int, np.random.Generator, float],
    List[Dict[str, float]],
]

#: Multiplier clamp shared by every generator: the paper's clouds drift, but
#: a VM never loses its NIC entirely nor doubles its advertised cap twice.
_MIN_FACTOR = 0.1
_MAX_FACTOR = 2.0


def _clamped(base: float, factor: float) -> float:
    return base * min(max(factor, _MIN_FACTOR), _MAX_FACTOR)


def _drift_none(
    base: Mapping[str, float], n_epochs: int, rng: np.random.Generator,
    strength: float,
) -> List[Dict[str, float]]:
    """Frozen rates — the degenerate timeline (useful as a control)."""
    return [dict(base) for _ in range(n_epochs)]


def _drift_random_walk(
    base: Mapping[str, float], n_epochs: int, rng: np.random.Generator,
    strength: float,
) -> List[Dict[str, float]]:
    """Per-VM multiplicative log random walk, ``strength`` = per-epoch sigma.

    Consecutive epochs stay correlated (the previous-hour predictor's
    regime) while the hour-0 matrix decays in relevance as the walk wanders.
    """
    log_factor = {vm: 0.0 for vm in base}
    epochs: List[Dict[str, float]] = [dict(base)]
    for _ in range(1, n_epochs):
        epoch: Dict[str, float] = {}
        for vm in sorted(base):
            log_factor[vm] += float(rng.normal(0.0, strength))
            epoch[vm] = _clamped(base[vm], math.exp(log_factor[vm]))
        epochs.append(epoch)
    return epochs


def _drift_diurnal(
    base: Mapping[str, float], n_epochs: int, rng: np.random.Generator,
    strength: float,
) -> List[Dict[str, float]]:
    """Day/night cycle: available capacity dips at each VM's busy hours.

    ``strength`` is the relative amplitude; each VM gets a random phase (its
    neighbours' tenants peak at different hours) plus mild lognormal noise.
    The time-of-day predictor is the natural fit once a day of history
    exists.
    """
    amplitude = min(max(strength, 0.0), 0.9)
    phase = {
        vm: float(rng.uniform(0.0, 24.0)) for vm in sorted(base)
    }
    epochs: List[Dict[str, float]] = []
    for hour in range(n_epochs):
        epoch: Dict[str, float] = {}
        for vm in sorted(base):
            cycle = 1.0 - amplitude * 0.5 * (
                1.0 + math.cos(2.0 * math.pi * (hour - phase[vm]) / 24.0)
            )
            noise = float(rng.lognormal(mean=0.0, sigma=0.03))
            epoch[vm] = _clamped(base[vm], cycle * noise)
        epochs.append(epoch)
    return epochs


def _drift_hotspot_flap(
    base: Mapping[str, float], n_epochs: int, rng: np.random.Generator,
    strength: float,
) -> List[Dict[str, float]]:
    """Hotspots appear under a subset of VMs and persist for multi-epoch dwells.

    ``strength`` is the fraction of VMs that flap.  A flapping VM starts
    healthy, collapses to 15% of its cap at a random early epoch, and then
    alternates states with geometric dwells of at least two epochs — long
    enough that last-hour measurements track the current state, while the
    hour-0 matrix keeps advertising the collapsed VMs as fast.
    """
    fraction = min(max(strength, 0.0), 1.0)
    names = sorted(base)
    n_flapping = max(1, int(round(fraction * len(names)))) if fraction > 0 else 0
    flapping = list(rng.choice(names, size=n_flapping, replace=False)) if n_flapping else []
    collapsed_factor = 0.15

    state: Dict[str, bool] = {vm: False for vm in flapping}  # True = collapsed
    flip_at: Dict[str, int] = {
        # First collapse lands early (epoch 1 or 2) so even short sessions
        # see the hour-0 profile go stale.
        vm: int(rng.integers(1, 3)) for vm in flapping
    }
    epochs: List[Dict[str, float]] = []
    for hour in range(n_epochs):
        for vm in flapping:
            if hour == flip_at[vm]:
                state[vm] = not state[vm]
                dwell = 2 + int(rng.geometric(0.5))
                flip_at[vm] = hour + dwell
        epoch = {
            vm: _clamped(
                base[vm],
                collapsed_factor if state.get(vm, False) else 1.0,
            )
            for vm in names
        }
        epochs.append(epoch)
    return epochs


_DRIFTS: Dict[str, DriftGenerator] = {
    "none": _drift_none,
    "random-walk": _drift_random_walk,
    "diurnal": _drift_diurnal,
    "hotspot-flap": _drift_hotspot_flap,
}

#: Default ``strength`` per generator (sigma / amplitude / flap fraction).
_DEFAULT_STRENGTH: Dict[str, float] = {
    "none": 0.0,
    "random-walk": 0.25,
    "diurnal": 0.5,
    "hotspot-flap": 0.4,
}

DRIFT_NAMES: Tuple[str, ...] = tuple(sorted(_DRIFTS))


def generate_timeline(
    base_rates: Mapping[str, float],
    n_epochs: int,
    drift: str = "random-walk",
    seed: int = 0,
    strength: Optional[float] = None,
    epoch_s: float = DEFAULT_EPOCH_S,
) -> NetworkTimeline:
    """Synthesise a timeline from base hose rates with a named drift.

    Args:
        base_rates: epoch-0 egress caps, usually
            :meth:`~repro.cloud.provider.CloudProvider.base_hose_rates`.
        n_epochs: how many epochs to generate.
        drift: one of :data:`DRIFT_NAMES`.
        seed: RNG seed — timelines are pure functions of their inputs.
        strength: generator-specific knob (walk sigma, diurnal amplitude,
            flapping VM fraction); each generator has a sensible default.
        epoch_s: epoch length in seconds.
    """
    if n_epochs < 1:
        raise ServiceError("n_epochs must be >= 1")
    if not base_rates:
        raise ServiceError("base_rates must cover at least one VM")
    try:
        generator = _DRIFTS[drift]
    except KeyError as exc:
        raise ServiceError(
            f"unknown drift {drift!r}; known: {list(DRIFT_NAMES)}"
        ) from exc
    if strength is None:
        strength = _DEFAULT_STRENGTH[drift]
    if strength < 0:
        raise ServiceError("drift strength must be >= 0")
    rng = np.random.default_rng(seed)
    hose_epochs = generator(base_rates, n_epochs, rng, strength)
    return NetworkTimeline(
        epoch_s=epoch_s, hose_epochs=hose_epochs, drift=drift
    )


def attach_timeline(provider, timeline: NetworkTimeline) -> None:
    """Make ``provider``'s ground truth follow ``timeline``.

    Every VM the timeline covers must exist on the provider; uncovered
    provider VMs keep their OU-drifted base rates.
    """
    known = {vm.name for vm in provider.vms()}
    missing = sorted(set(timeline.hose_epochs[0]) - known)
    if missing:
        raise ServiceError(
            f"timeline covers VMs the provider lacks: {missing}"
        )
    provider.hose_timeline = timeline
