"""sFlow-like flow-record traces (paper §2.1, §6.1).

Choreo profiles applications with a network monitoring tool such as sFlow or
tcpdump; the output is a stream of flow records (timestamp, source task,
destination task, byte count).  This module defines that record format, two
on-disk serialisations — CSV and JSONL (one JSON object per line, the
common export format of flow collectors) — and the aggregation from records
to per-application traffic matrices and to hourly byte series (the
granularity the predictability analysis of §6.1 uses).

:func:`load_trace` dispatches on the file suffix, so consumers such as the
``ec2-trace-replay`` scenario's ``trace_path`` parameter accept either
format.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import WorkloadError
from repro.units import HOUR
from repro.workloads.application import TrafficMatrix

_FIELDS = ("timestamp", "application", "src_task", "dst_task", "num_bytes")


@dataclass(frozen=True)
class FlowRecord:
    """One observed transfer between two tasks.

    Attributes:
        timestamp: seconds since the start of the trace.
        application: name of the application the tasks belong to.
        src_task: sending task.
        dst_task: receiving task.
        num_bytes: bytes observed in this record.
    """

    timestamp: float
    application: str
    src_task: str
    dst_task: str
    num_bytes: float

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise WorkloadError("flow record timestamp must be >= 0")
        if self.num_bytes < 0:
            raise WorkloadError("flow record byte count must be >= 0")
        if not self.src_task or not self.dst_task:
            raise WorkloadError("flow record task names must be non-empty")


def write_trace(records: Iterable[FlowRecord], path: Union[str, Path]) -> int:
    """Write records to a CSV file; returns the number of records written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for record in records:
            writer.writerow(
                [
                    f"{record.timestamp:.6f}",
                    record.application,
                    record.src_task,
                    record.dst_task,
                    f"{record.num_bytes:.1f}",
                ]
            )
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[FlowRecord]:
    """Read records from a CSV file written by :func:`write_trace`."""
    path = Path(path)
    records: List[FlowRecord] = []
    try:
        handle_cm = path.open(newline="")
    except OSError as exc:
        raise WorkloadError(f"cannot read trace {path}: {exc}") from exc
    with handle_cm as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _FIELDS:
            raise WorkloadError(
                f"{path} does not look like a flow trace "
                f"(expected header {_FIELDS}, got {reader.fieldnames})"
            )
        for row in reader:
            try:
                records.append(
                    FlowRecord(
                        timestamp=float(row["timestamp"]),
                        application=row["application"],
                        src_task=row["src_task"],
                        dst_task=row["dst_task"],
                        num_bytes=float(row["num_bytes"]),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise WorkloadError(f"malformed trace row {row!r}") from exc
    return records


def write_trace_jsonl(
    records: Iterable[FlowRecord], path: Union[str, Path]
) -> int:
    """Write records as JSONL (one object per line); returns the count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "timestamp": round(record.timestamp, 6),
                        "application": record.application,
                        "src_task": record.src_task,
                        "dst_task": record.dst_task,
                        "num_bytes": round(record.num_bytes, 1),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            count += 1
    return count


def read_trace_jsonl(path: Union[str, Path]) -> List[FlowRecord]:
    """Read records from a JSONL file written by :func:`write_trace_jsonl`
    (or any flow collector emitting the same keys)."""
    path = Path(path)
    records: List[FlowRecord] = []
    try:
        handle_cm = path.open()
    except OSError as exc:
        raise WorkloadError(f"cannot read trace {path}: {exc}") from exc
    with handle_cm as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                records.append(
                    FlowRecord(
                        timestamp=float(row["timestamp"]),
                        application=str(row["application"]),
                        src_task=str(row["src_task"]),
                        dst_task=str(row["dst_task"]),
                        num_bytes=float(row["num_bytes"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise WorkloadError(
                    f"{path}:{line_no}: malformed trace record: {exc}"
                ) from exc
    return records


def load_trace(path: Union[str, Path]) -> List[FlowRecord]:
    """Read a trace from disk, dispatching on the file suffix.

    ``.jsonl`` (and ``.ndjson``) files are parsed as JSONL, everything else
    as the CSV format of :func:`write_trace`.
    """
    path = Path(path)
    if path.suffix.lower() in (".jsonl", ".ndjson"):
        return read_trace_jsonl(path)
    return read_trace(path)


def records_to_traffic_matrix(
    records: Iterable[FlowRecord],
    application: Optional[str] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> TrafficMatrix:
    """Aggregate flow records into a traffic matrix.

    Args:
        application: restrict to one application (all records when omitted).
        start, end: optional half-open time window ``[start, end)``.
    """
    matrix = TrafficMatrix()
    for record in records:
        if application is not None and record.application != application:
            continue
        if start is not None and record.timestamp < start:
            continue
        if end is not None and record.timestamp >= end:
            continue
        matrix.add(record.src_task, record.dst_task, record.num_bytes)
    return matrix


def hourly_byte_series(
    records: Iterable[FlowRecord],
    application: Optional[str] = None,
    n_hours: Optional[int] = None,
) -> List[float]:
    """Total bytes per hour for an application (input to §6.1's analysis).

    The series starts at hour zero of the trace; hours with no traffic are
    zero-filled.  ``n_hours`` pads (or truncates) the series to a fixed
    length.
    """
    buckets: Dict[int, float] = {}
    max_hour = -1
    for record in records:
        if application is not None and record.application != application:
            continue
        hour = int(record.timestamp // HOUR)
        buckets[hour] = buckets.get(hour, 0.0) + record.num_bytes
        max_hour = max(max_hour, hour)
    length = n_hours if n_hours is not None else max_hour + 1
    if length <= 0:
        return []
    return [buckets.get(h, 0.0) for h in range(length)]
