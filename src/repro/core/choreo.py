"""The end-to-end Choreo system (paper §2).

:class:`ChoreoSystem` wires the three sub-systems together for a tenant:

1. **profile** the application's tasks from flow records (§2.1);
2. **measure** the network between the tenant's VMs with packet trains
   (§2.2, §3);
3. **place** the application's tasks with the greedy network-aware
   algorithm (§2.3, §5) — or any other :class:`~repro.core.placement.Placer`.

It also supports the multi-application workflow of §2.4: when a new
application arrives while others are running, Choreo re-measures the network
(the running applications appear as cross traffic) and places the new
application's tasks; periodically it can re-evaluate existing placements and
propose migrations (see :mod:`repro.runtime.migration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.provider import CloudProvider, VMFlow
from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer
from repro.core.placement.greedy import GreedyPlacer
from repro.core.profiler import ApplicationProfiler
from repro.errors import PlacementError
from repro.workloads.application import Application, combine_applications
from repro.workloads.trace import FlowRecord


@dataclass
class ChoreoConfig:
    """Configuration of a :class:`ChoreoSystem`.

    Attributes:
        measurement: how to measure the network (packet trains by default).
        rate_model: ``"hose"`` or ``"pipe"`` — which sharing model the
            placement algorithms assume (§4.4 supports "hose").
        default_task_cpu: CPU demand assumed for tasks the profiler sees
            without explicit CPU information.
    """

    measurement: MeasurementPlan = field(default_factory=MeasurementPlan)
    rate_model: str = "hose"
    default_task_cpu: float = 1.0


class ChoreoSystem:
    """Tenant-side orchestration of profiling, measurement, and placement."""

    def __init__(
        self,
        provider: CloudProvider,
        placer: Optional[Placer] = None,
        config: Optional[ChoreoConfig] = None,
    ):
        self.provider = provider
        self.config = config if config is not None else ChoreoConfig()
        self.placer = placer if placer is not None else GreedyPlacer(model=self.config.rate_model)
        self.profiler = ApplicationProfiler(default_cpu_cores=self.config.default_task_cpu)
        self.measurer = NetworkMeasurer(provider, plan=self.config.measurement)
        self._last_profile: Optional[NetworkProfile] = None

    # ------------------------------------------------------------ sub-systems
    def profile_application(
        self,
        records: Sequence[FlowRecord],
        application: str,
        task_cpu_cores: Optional[Dict[str, float]] = None,
    ) -> Application:
        """Profile one application from observed flow records (§2.1)."""
        return self.profiler.profile_application(
            records, application, task_cpu_cores=task_cpu_cores
        )

    def measure_network(
        self,
        vm_names: Optional[Sequence[str]] = None,
        background: Sequence[VMFlow] = (),
    ) -> NetworkProfile:
        """Measure the tenant's VM mesh (§2.2); running apps act as cross traffic."""
        profile = self.measurer.measure(vm_names, background=background)
        self._last_profile = profile
        return profile

    @property
    def last_profile(self) -> Optional[NetworkProfile]:
        """The most recent measurement, if any."""
        return self._last_profile

    # -------------------------------------------------------------- placement
    def cluster_state(
        self, vm_names: Optional[Sequence[str]] = None,
        cpu_used: Optional[Dict[str, float]] = None,
    ) -> ClusterState:
        """Cluster state for the tenant's VMs (optionally with running load)."""
        vms = self.provider.vms()
        if vm_names is not None:
            wanted = set(vm_names)
            vms = [vm for vm in vms if vm.name in wanted]
        state = ClusterState.from_vms(vms)
        if cpu_used:
            state = state.with_usage(cpu_used)
        return state

    def place_application(
        self,
        app: Application,
        cluster: Optional[ClusterState] = None,
        profile: Optional[NetworkProfile] = None,
        background: Sequence[VMFlow] = (),
    ) -> Placement:
        """Measure (if needed) and place one application (§2.3).

        Args:
            app: the application to place.
            cluster: machines and their current CPU usage; defaults to all of
                the tenant's VMs, fully free.
            profile: a pre-existing measurement to reuse; when omitted the
                network is measured now, with ``background`` as cross traffic.
        """
        cluster = cluster if cluster is not None else self.cluster_state()
        if profile is None:
            profile = self.measure_network(cluster.machine_names(), background=background)
        return self.placer.place(app, cluster, profile)

    def place_together(
        self,
        apps: Sequence[Application],
        cluster: Optional[ClusterState] = None,
        profile: Optional[NetworkProfile] = None,
    ) -> Dict[str, Placement]:
        """Place several applications at once by combining them (§6.2).

        The combined application's placement is split back into one
        :class:`Placement` per input application.
        """
        if not apps:
            raise PlacementError("place_together needs at least one application")
        cluster = cluster if cluster is not None else self.cluster_state()
        combined = combine_applications(apps, name="__combined__")
        combined_placement = self.place_application(combined, cluster=cluster, profile=profile)
        placements: Dict[str, Placement] = {}
        for app in apps:
            prefix = f"{app.name}/"
            assignments = {
                task[len(prefix):]: machine
                for task, machine in combined_placement.assignments.items()
                if task.startswith(prefix)
            }
            placements[app.name] = Placement(app_name=app.name, assignments=assignments)
        return placements

    def re_evaluate(
        self,
        app: Application,
        current: Placement,
        cluster: Optional[ClusterState] = None,
        background: Sequence[VMFlow] = (),
    ) -> Tuple[Placement, bool]:
        """Re-measure and re-place an application (§2.4).

        Returns the new placement and whether it differs from the current
        one (i.e. whether a migration would be required).
        """
        new_placement = self.place_application(
            app, cluster=cluster, background=background
        )
        changed = new_placement.assignments != current.assignments
        return new_placement, changed
