"""Rate models used while placing tasks (Algorithm 1, line 13).

When the greedy algorithm evaluates placing a transfer on machine pair
``(m, n)``, it needs "the rate that the transfer from i to j would see if
placed on m -> n", taking into account all other task pairs already placed
on that path (pipe model) or all other connections out of ``m`` (hose
model).

The measured single-connection rate ``R`` for a path already includes any
cross traffic ``c`` the measurement observed: ``R ≈ C / (c + 1)`` where
``C`` is the bottleneck capacity (§3.2).  Adding ``k`` of our own
connections therefore leaves each of them with ``C / (c + 1 + k)``, i.e.
``R * (c + 1) / (c + 1 + k)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.network_profile import NetworkProfile
from repro.errors import PlacementError


@dataclass
class ConnectionLoad:
    """Bookkeeping of the connections placed so far in one placement round."""

    per_path: Dict[Tuple[str, str], int] = field(default_factory=dict)
    per_source: Dict[str, int] = field(default_factory=dict)

    def add(self, src_machine: str, dst_machine: str) -> None:
        """Record one more connection from ``src_machine`` to ``dst_machine``.

        Intra-machine transfers use no network egress, so they are not
        counted against either the path or the source hose.
        """
        if src_machine == dst_machine:
            return
        key = (src_machine, dst_machine)
        self.per_path[key] = self.per_path.get(key, 0) + 1
        self.per_source[src_machine] = self.per_source.get(src_machine, 0) + 1

    def on_path(self, src_machine: str, dst_machine: str) -> int:
        """Connections already placed on the ordered path."""
        return self.per_path.get((src_machine, dst_machine), 0)

    def out_of(self, src_machine: str) -> int:
        """Connections already placed with ``src_machine`` as their source."""
        return self.per_source.get(src_machine, 0)

    def copy(self) -> "ConnectionLoad":
        """An independent copy (used when evaluating hypothetical placements)."""
        return ConnectionLoad(
            per_path=dict(self.per_path), per_source=dict(self.per_source)
        )


def effective_rate(
    profile: NetworkProfile,
    src_machine: str,
    dst_machine: str,
    load: ConnectionLoad,
    model: str = "hose",
) -> float:
    """Rate a *new* connection would get on ``src -> dst`` given placed load.

    Args:
        profile: the measured network profile.
        src_machine, dst_machine: candidate machines.
        load: connections placed so far during this placement round.
        model: ``"hose"`` (share the source's egress) or ``"pipe"`` (share
            the specific path).

    Returns:
        Estimated rate in bits/second.  Intra-machine placements return the
        profile's intra-VM rate (essentially infinite).
    """
    if model not in ("hose", "pipe"):
        raise PlacementError(f"unknown rate model {model!r}")
    if src_machine == dst_machine:
        return profile.intra_vm_rate_bps
    single = profile.rate(src_machine, dst_machine)
    cross = profile.cross(src_machine, dst_machine)
    if model == "pipe":
        existing = load.on_path(src_machine, dst_machine)
    else:
        existing = load.out_of(src_machine)
    if math.isinf(single):
        return single
    return single * (cross + 1.0) / (cross + 1.0 + existing)
