"""Placement tests: greedy vs brute-force agreement on tiny instances,
colocation behaviour, and the error contract of the placers."""

import math

import pytest

from repro.core.estimator import estimate_completion_time
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Machine, validate_placement
from repro.core.placement.baselines import (
    MinimumMachinesPlacer,
    RandomPlacer,
    RoundRobinPlacer,
)
from repro.core.placement.greedy import GreedyPlacer
from repro.core.placement.ilp import BruteForcePlacer
from repro.errors import PlacementError, ReproError
from repro.units import GBITPS, GBYTE
from repro.workloads.application import Application, Task, TrafficMatrix

MACHINES = ["m1", "m2", "m3"]

# Asymmetric pair rates: the m1->m2 path is by far the fastest.
RATES = {
    ("m1", "m2"): 1.0 * GBITPS, ("m2", "m1"): 1.0 * GBITPS,
    ("m1", "m3"): 0.2 * GBITPS, ("m3", "m1"): 0.2 * GBITPS,
    ("m2", "m3"): 0.1 * GBITPS, ("m3", "m2"): 0.1 * GBITPS,
}


def _profile(intra=math.inf) -> NetworkProfile:
    return NetworkProfile(vms=MACHINES, rates_bps=dict(RATES), intra_vm_rate_bps=intra)


def _cluster() -> ClusterState:
    return ClusterState(machines=[Machine(m, cores=4.0) for m in MACHINES])


def _pair_app(cpu=4.0) -> Application:
    # Two tasks moving 1 GByte; cpu=4.0 fills a whole machine, so the pair
    # cannot be colocated and the placer must pick the fastest path.
    return Application(
        name="pair",
        tasks=[Task("a", cpu), Task("b", cpu)],
        traffic=TrafficMatrix({("a", "b"): 1 * GBYTE}),
    )


def test_greedy_matches_brute_force_on_tiny_instance():
    app, cluster, profile = _pair_app(), _cluster(), _profile()
    greedy = GreedyPlacer(model="hose").place(app, cluster, profile)
    brute = BruteForcePlacer(model="hose").place(app, cluster, profile)
    t_greedy = estimate_completion_time(greedy.assignments, app, profile, model="hose")
    t_brute = estimate_completion_time(brute.assignments, app, profile, model="hose")
    assert t_greedy == pytest.approx(t_brute)
    # Both must use the 1 Gbit/s pair: 1 GByte = 8 Gbit -> 8 seconds.
    assert t_greedy == pytest.approx(8.0)
    assert {greedy.machine_of("a"), greedy.machine_of("b")} == {"m1", "m2"}


def test_greedy_colocates_heavy_pair_when_cpu_allows():
    app = Application(
        name="pair",
        tasks=[Task("a", 1.0), Task("b", 1.0)],
        traffic=TrafficMatrix({("a", "b"): 1 * GBYTE}),
    )
    placement = GreedyPlacer().place(app, _cluster(), _profile())
    assert placement.machine_of("a") == placement.machine_of("b")


def test_greedy_without_profile_raises_placement_error():
    with pytest.raises(PlacementError):
        GreedyPlacer().place(_pair_app(), _cluster(), None)


def test_infeasible_app_raises_placement_error_not_valueerror():
    too_big = Application(
        name="big",
        tasks=[Task(f"t{i}", 4.0) for i in range(4)],  # 16 cores > 12 available
        traffic=TrafficMatrix(),
    )
    for placer in (GreedyPlacer(), RandomPlacer(seed=0), RoundRobinPlacer()):
        with pytest.raises(PlacementError):
            placer.place(too_big, _cluster(), _profile())
    # The library error contract: everything derives from ReproError.
    assert issubclass(PlacementError, ReproError)


@pytest.mark.parametrize(
    "placer",
    [RandomPlacer(seed=7), RoundRobinPlacer(), MinimumMachinesPlacer()],
    ids=["random", "round-robin", "min-machines"],
)
def test_baselines_produce_valid_cpu_respecting_placements(placer):
    app = Application(
        name="mix",
        tasks=[Task("t0", 2.0), Task("t1", 2.0), Task("t2", 2.0),
               Task("t3", 2.0), Task("t4", 2.0), Task("t5", 2.0)],
        traffic=TrafficMatrix({("t0", "t1"): 1 * GBYTE}),
    )
    placement = placer.place(app, _cluster(), _profile())
    validate_placement(placement, app, _cluster())  # raises on violation
    assert set(placement.assignments) == set(app.task_names)
