"""Packet-train throughput estimation (paper §3.1, §4.1).

The estimator consumes the receiver-side observations of one packet train
(:class:`~repro.net.packets.TrainObservation`) and produces a TCP throughput
estimate:

* the *train estimate* ``P * sum(n_i) / sum(t_i)``, where ``n_i`` is the
  number of packets of burst ``i`` that arrived and ``t_i`` the receive-time
  difference between its first and last packets, corrected when edge packets
  were lost;
* the *Mathis bound* ``MSS * C / (RTT * sqrt(loss))`` with ``C ≈ sqrt(3/2)``,
  which upper-bounds TCP throughput when loss is present;
* the combined estimate ``min(train, mathis)`` the paper uses.

:func:`calibrate_train_parameters` reproduces the §4.1 calibration sweep
(Figure 6): it compares train estimates against netperf "ground truth" for a
grid of burst lengths and burst counts and reports the mean relative error
of each configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.net.packets import PacketTrainSpec, TrainObservation
from repro.units import BITS_PER_BYTE

#: Mathis constant of proportionality, roughly sqrt(3/2) [Mathis et al. 1997].
MATHIS_C = math.sqrt(3.0 / 2.0)


def mathis_throughput(
    mss_bytes: float, rtt_s: float, loss_rate: float, constant: float = MATHIS_C
) -> float:
    """The Mathis upper bound ``MSS * C / (RTT * sqrt(loss))`` in bits/second.

    Returns infinity when the loss rate is zero (the bound is vacuous).
    """
    if mss_bytes <= 0 or rtt_s <= 0:
        raise MeasurementError("MSS and RTT must be positive")
    if loss_rate < 0 or loss_rate >= 1:
        raise MeasurementError("loss rate must be in [0, 1)")
    if loss_rate == 0:
        return math.inf
    return mss_bytes * BITS_PER_BYTE * constant / (rtt_s * math.sqrt(loss_rate))


@dataclass(frozen=True)
class ThroughputEstimate:
    """Result of estimating TCP throughput from one packet train."""

    rate_bps: float
    train_estimate_bps: float
    mathis_bound_bps: float
    loss_rate: float
    packets_received: int
    packets_sent: int

    @property
    def used_mathis_bound(self) -> bool:
        """True when the Mathis bound was the binding term."""
        return self.mathis_bound_bps < self.train_estimate_bps


def _corrected_span(observation_span: float, first_index: int, last_index: int,
                    n_sent: int) -> float:
    """Scale a burst's receive span to what it would have been without edge loss.

    If the first or last packets of a burst were lost, the observed span
    covers fewer inter-packet gaps than the full burst; the paper adjusts the
    time difference by the average per-packet time (§3.1).
    """
    observed_gaps = last_index - first_index
    total_gaps = n_sent - 1
    if observed_gaps <= 0 or total_gaps <= 0:
        return observation_span
    return observation_span * total_gaps / observed_gaps


def estimate_throughput(
    observation: TrainObservation,
    mss_bytes: float = 1460.0,
    rtt_s: Optional[float] = None,
) -> ThroughputEstimate:
    """Estimate TCP throughput from a packet-train observation.

    Args:
        observation: receiver-side burst observations.
        mss_bytes: TCP maximum segment size used in the Mathis bound.
        rtt_s: round-trip time for the Mathis bound; defaults to the RTT
            recorded in the observation.

    Raises:
        MeasurementError: if the observation contains no usable bursts.
    """
    if not observation.bursts:
        raise MeasurementError("packet train observation contains no bursts")
    packet_size = observation.spec.packet_size_bytes
    rtt = observation.rtt_s if rtt_s is None else rtt_s

    total_received = 0
    total_span = 0.0
    for burst in observation.bursts:
        if burst.n_received <= 0:
            continue
        span = _corrected_span(
            burst.span, burst.first_index, burst.last_index, burst.n_sent
        )
        if span <= 0:
            continue
        total_received += burst.n_received
        total_span += span
    if total_received == 0 or total_span <= 0:
        raise MeasurementError("packet train delivered no measurable packets")

    train_estimate = packet_size * BITS_PER_BYTE * total_received / total_span
    loss = observation.loss_rate
    mathis_bound = mathis_throughput(mss_bytes, rtt, loss) if loss > 0 else math.inf
    rate = min(train_estimate, mathis_bound)
    return ThroughputEstimate(
        rate_bps=rate,
        train_estimate_bps=train_estimate,
        mathis_bound_bps=mathis_bound,
        loss_rate=loss,
        packets_received=observation.packets_received,
        packets_sent=observation.packets_sent,
    )


@dataclass(frozen=True)
class CalibrationPoint:
    """Mean relative error of one packet-train configuration (Figure 6)."""

    burst_length: int
    n_bursts: int
    mean_relative_error: float
    n_paths: int


def calibrate_train_parameters(
    provider,
    pairs: Sequence[Tuple[str, str]],
    burst_lengths: Sequence[int] = (200, 500, 1000, 2000, 3500),
    n_bursts_options: Sequence[int] = (10, 20, 50),
    packet_size_bytes: int = 1472,
    reference_duration_s: float = 10.0,
    reference_rates: Optional[Dict[Tuple[str, str], float]] = None,
) -> List[CalibrationPoint]:
    """Sweep packet-train parameters against netperf ground truth (§4.1).

    Args:
        provider: a :class:`~repro.cloud.provider.CloudProvider`.
        pairs: ordered VM pairs to measure (the paper uses 90).
        burst_lengths, n_bursts_options: the grid to sweep.
        packet_size_bytes: train packet size (1472 bytes in the paper).
        reference_duration_s: netperf run length for the ground truth.
        reference_rates: pre-measured ground-truth rates; measured on the fly
            when omitted.

    Returns:
        One :class:`CalibrationPoint` per configuration, in sweep order.
    """
    if not pairs:
        raise MeasurementError("calibration needs at least one VM pair")
    if reference_rates is None:
        reference_rates = {
            pair: provider.run_netperf(pair[0], pair[1], duration=reference_duration_s)
            for pair in pairs
        }
    points: List[CalibrationPoint] = []
    for n_bursts in n_bursts_options:
        for burst_length in burst_lengths:
            spec = PacketTrainSpec(
                packet_size_bytes=packet_size_bytes,
                n_bursts=n_bursts,
                burst_length=burst_length,
            )
            errors = []
            for src, dst in pairs:
                truth = reference_rates[(src, dst)]
                if truth <= 0:
                    continue
                observation = provider.send_packet_train(src, dst, spec)
                estimate = estimate_throughput(observation)
                errors.append(abs(estimate.rate_bps - truth) / truth)
            if not errors:
                raise MeasurementError("calibration produced no valid estimates")
            points.append(
                CalibrationPoint(
                    burst_length=burst_length,
                    n_bursts=n_bursts,
                    mean_relative_error=float(np.mean(errors)),
                    n_paths=len(errors),
                )
            )
    return points
