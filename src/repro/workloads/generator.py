"""Synthetic HP-Cloud-like workload generator (paper §6.1 substitute).

The paper composes its evaluation applications from three weeks of real
traffic matrices gathered with sFlow at the ToR and aggregation switches of
the HP Cloud network.  That dataset is private, so this generator produces a
statistically similar population:

* a mix of the communication patterns the paper motivates (MapReduce
  shuffles, scatter/gather services, pipelines, hub-and-spoke stars, and
  generic sparse heavy-tailed matrices);
* per-application totals drawn from a lognormal (most applications move a
  few hundred MBytes, a few move tens of GBytes);
* per-task CPU demands of 0.5–4 cores on 4-core machines, exactly as §6.1
  models them;
* observed start times from a (diurnal) arrival process;
* optionally, hourly byte series with a diurnal cycle and noise, so that the
  §6.1 predictability claim can be reproduced;
* optionally, sFlow-like flow-record traces that exercise the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.units import GBYTE, HOUR, MBYTE
from repro.workloads.application import Application
from repro.workloads.arrivals import DiurnalArrivals, PoissonArrivals
from repro.workloads.patterns import (
    mapreduce,
    pipeline,
    random_sparse,
    scatter_gather,
    star,
    uniform_mesh,
)
from repro.workloads.trace import FlowRecord


@dataclass(frozen=True)
class WorkloadSpec:
    """Tunable knobs of the synthetic workload population.

    Attributes:
        min_tasks, max_tasks: range of task counts per application.
        mean_total_bytes: median of the lognormal total-volume distribution.
        volume_sigma: lognormal sigma for total volume (heavier tail when
            larger).
        cpu_choices: per-task CPU demands (cores), sampled uniformly.
        pattern_weights: probability of each communication pattern.
        arrival_rate_per_hour: mean application arrival rate.
        diurnal: modulate arrivals (and hourly series) with a day/night cycle.
    """

    min_tasks: int = 4
    max_tasks: int = 12
    mean_total_bytes: float = 2 * GBYTE
    volume_sigma: float = 1.0
    cpu_choices: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)
    pattern_weights: Tuple[Tuple[str, float], ...] = (
        ("mapreduce", 0.30),
        ("scatter_gather", 0.20),
        ("pipeline", 0.15),
        ("star", 0.10),
        ("sparse", 0.20),
        ("uniform", 0.05),
    )
    arrival_rate_per_hour: float = 2.0
    diurnal: bool = True

    def __post_init__(self) -> None:
        if self.min_tasks < 2 or self.max_tasks < self.min_tasks:
            raise WorkloadError("need 2 <= min_tasks <= max_tasks")
        if self.mean_total_bytes <= 0:
            raise WorkloadError("mean_total_bytes must be positive")
        if self.volume_sigma < 0:
            raise WorkloadError("volume_sigma must be >= 0")
        total_weight = sum(weight for _, weight in self.pattern_weights)
        if total_weight <= 0:
            raise WorkloadError("pattern weights must sum to a positive value")
        known = {"mapreduce", "scatter_gather", "pipeline", "star", "sparse", "uniform"}
        for name, weight in self.pattern_weights:
            if name not in known:
                raise WorkloadError(f"unknown pattern {name!r}")
            if weight < 0:
                raise WorkloadError("pattern weights must be >= 0")


class HPCloudWorkloadGenerator:
    """Generates applications, hourly series, and flow traces."""

    def __init__(self, spec: WorkloadSpec = WorkloadSpec(), seed: int = 0):
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    # ----------------------------------------------------------- applications
    def _sample_total_bytes(self) -> float:
        spec = self.spec
        return float(
            spec.mean_total_bytes
            * self._rng.lognormal(mean=0.0, sigma=spec.volume_sigma)
        )

    def _sample_cpu(self) -> float:
        return float(self._rng.choice(list(self.spec.cpu_choices)))

    def _sample_pattern(self) -> str:
        names = [name for name, _ in self.spec.pattern_weights]
        weights = np.array([w for _, w in self.spec.pattern_weights], dtype=float)
        weights = weights / weights.sum()
        return str(self._rng.choice(names, p=weights))

    def generate_application(self, start_time: float = 0.0) -> Application:
        """Generate one application with the configured mix of patterns."""
        spec = self.spec
        self._counter += 1
        name = f"app{self._counter:04d}"
        n_tasks = int(self._rng.integers(spec.min_tasks, spec.max_tasks + 1))
        total = self._sample_total_bytes()
        pattern = self._sample_pattern()
        cpu = self._sample_cpu()

        if pattern == "mapreduce":
            n_mappers = max(1, n_tasks // 2)
            n_reducers = max(1, n_tasks - n_mappers)
            skew = float(self._rng.uniform(0.0, 1.5))
            app = mapreduce(
                name, n_mappers, n_reducers, total, skew=skew,
                cpu_per_task=cpu, rng=self._rng, start_time=start_time,
            )
        elif pattern == "scatter_gather":
            n_workers = max(1, n_tasks - 1)
            response = total / n_workers
            app = scatter_gather(
                name, n_workers, request_bytes=max(response * 0.02, 1 * MBYTE),
                response_bytes=response, cpu_per_task=cpu, start_time=start_time,
            )
        elif pattern == "pipeline":
            stages = max(2, n_tasks)
            decay = float(self._rng.uniform(0.5, 1.0))
            app = pipeline(
                name, stages, stage_bytes=total / max(stages - 1, 1),
                decay=decay, cpu_per_task=cpu, start_time=start_time,
            )
        elif pattern == "star":
            leaves = max(1, n_tasks - 1)
            app = star(
                name, n_leaves=leaves, bytes_per_leaf=total / leaves,
                bidirectional=bool(self._rng.random() < 0.5),
                cpu_per_task=cpu, start_time=start_time,
            )
        elif pattern == "uniform":
            pairs = n_tasks * (n_tasks - 1)
            app = uniform_mesh(
                name, n_tasks, bytes_per_pair=total / pairs,
                cpu_per_task=cpu, start_time=start_time,
            )
        else:  # sparse
            app = random_sparse(
                name, n_tasks,
                density=float(self._rng.uniform(0.15, 0.5)),
                total_bytes=total,
                volume_sigma=float(self._rng.uniform(1.0, 2.0)),
                cpu_choices=spec.cpu_choices,
                rng=self._rng,
                start_time=start_time,
            )
        return app

    def generate_applications(self, n: int) -> List[Application]:
        """Generate ``n`` applications with arrival-process start times."""
        if n < 0:
            raise WorkloadError("n must be >= 0")
        if self.spec.diurnal:
            arrivals = DiurnalArrivals(
                base_rate_per_hour=self.spec.arrival_rate_per_hour
            )
        else:
            arrivals = PoissonArrivals(rate_per_hour=self.spec.arrival_rate_per_hour)
        start_times = arrivals.sample(n, rng=self._rng)
        return [self.generate_application(start_time=t) for t in start_times]

    # -------------------------------------------------------- hourly series
    def generate_hourly_series(
        self,
        n_hours: int = 21 * 24,
        mean_hourly_bytes: float = 5 * GBYTE,
        diurnal_amplitude: float = 0.5,
        noise_sigma: float = 0.15,
        peak_hour: float = 14.0,
    ) -> List[float]:
        """Hourly bytes of a long-running service over ``n_hours`` hours.

        The series has a per-application scale, a diurnal cycle, a small
        day-to-day drift, and multiplicative lognormal noise — enough
        structure that the previous-hour and time-of-day predictors of §6.1
        perform well without being trivially exact.
        """
        if n_hours < 1:
            raise WorkloadError("n_hours must be >= 1")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise WorkloadError("diurnal_amplitude must be in [0, 1)")
        scale = mean_hourly_bytes * float(
            self._rng.lognormal(mean=0.0, sigma=0.5)
        )
        series: List[float] = []
        daily_drift = 1.0
        for hour in range(n_hours):
            if hour % 24 == 0:
                daily_drift *= float(self._rng.lognormal(mean=0.0, sigma=0.05))
            phase = 2.0 * np.pi * ((hour % 24) - peak_hour) / 24.0
            diurnal = 1.0 + diurnal_amplitude * float(np.cos(phase))
            noise = float(self._rng.lognormal(mean=0.0, sigma=noise_sigma))
            series.append(scale * daily_drift * diurnal * noise)
        return series

    def generate_hourly_dataset(
        self, n_applications: int = 20, n_hours: int = 21 * 24
    ) -> List[List[float]]:
        """One hourly series per application (a three-week dataset by default)."""
        return [self.generate_hourly_series(n_hours=n_hours) for _ in range(n_applications)]

    # --------------------------------------------------------------- traces
    def application_to_records(
        self,
        app: Application,
        n_records_per_pair: int = 5,
        duration_s: float = HOUR,
    ) -> List[FlowRecord]:
        """Explode an application's traffic matrix into sFlow-like records.

        Each communicating pair is split into ``n_records_per_pair`` records
        at random timestamps within ``duration_s`` of the application start;
        re-aggregating the records recovers the original matrix, which is how
        the profiler tests validate :mod:`repro.core.profiler`.
        """
        if n_records_per_pair < 1:
            raise WorkloadError("n_records_per_pair must be >= 1")
        records: List[FlowRecord] = []
        for src, dst, volume in app.transfers():
            shares = self._rng.dirichlet(np.ones(n_records_per_pair)) * volume
            offsets = np.sort(self._rng.uniform(0.0, duration_s, size=n_records_per_pair))
            for share, offset in zip(shares, offsets):
                records.append(
                    FlowRecord(
                        timestamp=app.start_time + float(offset),
                        application=app.name,
                        src_task=src,
                        dst_task=dst,
                        num_bytes=float(share),
                    )
                )
        records.sort(key=lambda record: record.timestamp)
        return records
