"""Rate models used while placing tasks (Algorithm 1, line 13).

When the greedy algorithm evaluates placing a transfer on machine pair
``(m, n)``, it needs "the rate that the transfer from i to j would see if
placed on m -> n", taking into account all other task pairs already placed
on that path (pipe model) or all other connections out of ``m`` (hose
model).

The measured single-connection rate ``R`` for a path already includes any
cross traffic ``c`` the measurement observed: ``R ≈ C / (c + 1)`` where
``C`` is the bottleneck capacity (§3.2).  Adding ``k`` of our own
connections therefore leaves each of them with ``C / (c + 1 + k)``, i.e.
``R * (c + 1) / (c + 1 + k)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.network_profile import NetworkProfile
from repro.errors import PlacementError


@dataclass
class ConnectionLoad:
    """Bookkeeping of the connections placed so far in one placement round."""

    per_path: Dict[Tuple[str, str], int] = field(default_factory=dict)
    per_source: Dict[str, int] = field(default_factory=dict)

    def add(self, src_machine: str, dst_machine: str) -> None:
        """Record one more connection from ``src_machine`` to ``dst_machine``.

        Intra-machine transfers use no network egress, so they are not
        counted against either the path or the source hose.
        """
        if src_machine == dst_machine:
            return
        key = (src_machine, dst_machine)
        self.per_path[key] = self.per_path.get(key, 0) + 1
        self.per_source[src_machine] = self.per_source.get(src_machine, 0) + 1

    def on_path(self, src_machine: str, dst_machine: str) -> int:
        """Connections already placed on the ordered path."""
        return self.per_path.get((src_machine, dst_machine), 0)

    def out_of(self, src_machine: str) -> int:
        """Connections already placed with ``src_machine`` as their source."""
        return self.per_source.get(src_machine, 0)

    def copy(self) -> "ConnectionLoad":
        """An independent copy (used when evaluating hypothetical placements)."""
        return ConnectionLoad(
            per_path=dict(self.per_path), per_source=dict(self.per_source)
        )


def effective_rate(
    profile: NetworkProfile,
    src_machine: str,
    dst_machine: str,
    load: ConnectionLoad,
    model: str = "hose",
) -> float:
    """Rate a *new* connection would get on ``src -> dst`` given placed load.

    Args:
        profile: the measured network profile.
        src_machine, dst_machine: candidate machines.
        load: connections placed so far during this placement round.
        model: ``"hose"`` (share the source's egress) or ``"pipe"`` (share
            the specific path).

    Returns:
        Estimated rate in bits/second.  Intra-machine placements return the
        profile's intra-VM rate (essentially infinite).
    """
    if model not in ("hose", "pipe"):
        raise PlacementError(f"unknown rate model {model!r}")
    if src_machine == dst_machine:
        return profile.intra_vm_rate_bps
    single = profile.rate(src_machine, dst_machine)
    cross = profile.cross(src_machine, dst_machine)
    if model == "pipe":
        existing = load.on_path(src_machine, dst_machine)
    else:
        existing = load.out_of(src_machine)
    if math.isinf(single):
        return single
    return single * (cross + 1.0) / (cross + 1.0 + existing)


class EffectiveRateTable:
    """Incrementally maintained :func:`effective_rate` cache for one round.

    The greedy placer evaluates candidate machine pairs over and over while
    the :class:`ConnectionLoad` grows one connection at a time.  Under the
    hose model a placed connection only changes the rates of paths sharing
    its *source* machine; under the pipe model only the rates of its exact
    ordered path.  This table caches every computed rate and invalidates
    precisely the entries a new connection affects, so repeated candidate
    scans stop recomputing rates whose inputs did not change.

    The table owns the bookkeeping: call :meth:`record` (instead of mutating
    the load directly) whenever a connection is placed.
    """

    def __init__(
        self,
        profile: NetworkProfile,
        load: ConnectionLoad,
        model: str = "hose",
    ) -> None:
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        self.profile = profile
        self.load = load
        self.model = model
        self.hits = 0
        self.misses = 0
        self._cache: Dict[Tuple[str, str], float] = {}
        # Cache keys grouped by source machine, for hose-model invalidation.
        self._by_source: Dict[str, List[Tuple[str, str]]] = {}

    def rate(self, src_machine: str, dst_machine: str) -> float:
        """Cached :func:`effective_rate` for the candidate pair."""
        key = (src_machine, dst_machine)
        value = self._cache.get(key)
        if value is None:
            self.misses += 1
            value = effective_rate(
                self.profile, src_machine, dst_machine, self.load, model=self.model
            )
            self._cache[key] = value
            # Intra-machine rates never depend on the load, so only network
            # paths need to be tracked for invalidation.
            if src_machine != dst_machine and self.model == "hose":
                self._by_source.setdefault(src_machine, []).append(key)
        else:
            self.hits += 1
        return value

    def record(self, src_machine: str, dst_machine: str) -> None:
        """Account for a newly placed connection and invalidate stale rates."""
        self.load.add(src_machine, dst_machine)
        if src_machine == dst_machine:
            return  # intra-machine transfers use no network egress
        if self.model == "hose":
            for key in self._by_source.pop(src_machine, ()):
                self._cache.pop(key, None)
        else:
            self._cache.pop((src_machine, dst_machine), None)
