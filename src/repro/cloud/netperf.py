"""Bulk-TCP mesh measurement (the paper's netperf baseline, §2.2, §4.1).

The paper's "ground truth" throughput numbers come from 10-second netperf
runs on every ordered VM pair of a topology.  :func:`netperf_mesh` does the
same against a synthetic provider, advancing the provider clock by the time
the sequential measurement campaign would take so that temporal drift is
reflected, exactly like a real mesh measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.provider import CloudProvider, VMFlow
from repro.errors import MeasurementError


@dataclass
class NetperfResult:
    """Outcome of a full-mesh netperf campaign."""

    rates_bps: Dict[Tuple[str, str], float]
    duration_per_pair_s: float
    total_wall_clock_s: float

    @property
    def n_paths(self) -> int:
        return len(self.rates_bps)

    def rate(self, src_vm: str, dst_vm: str) -> float:
        """Measured throughput for one ordered pair."""
        try:
            return self.rates_bps[(src_vm, dst_vm)]
        except KeyError as exc:
            raise MeasurementError(
                f"pair ({src_vm!r}, {dst_vm!r}) was not measured"
            ) from exc

    def values(self) -> List[float]:
        """All measured throughputs (for CDFs)."""
        return list(self.rates_bps.values())


def netperf_mesh(
    provider: CloudProvider,
    vm_names: Optional[Sequence[str]] = None,
    duration: float = 10.0,
    background: Sequence[VMFlow] = (),
    advance_clock: bool = True,
) -> NetperfResult:
    """Measure every ordered VM pair with a bulk TCP transfer.

    Args:
        provider: the cloud to measure.
        vm_names: VMs to include (all of the provider's VMs when omitted).
        duration: seconds per netperf run (the paper uses 10 s).
        background: flows sharing the network during the campaign.
        advance_clock: advance the provider clock by ``duration`` after each
            measurement, as a sequential campaign would.

    Returns:
        A :class:`NetperfResult` with one throughput per ordered pair.
    """
    if duration <= 0:
        raise MeasurementError("duration must be positive")
    names = list(vm_names) if vm_names is not None else [vm.name for vm in provider.vms()]
    if len(names) < 2:
        raise MeasurementError("need at least two VMs to measure a mesh")
    rates: Dict[Tuple[str, str], float] = {}
    wall_clock = 0.0
    for src in names:
        for dst in names:
            if src == dst:
                continue
            rates[(src, dst)] = provider.run_netperf(
                src, dst, duration=duration, background=background
            )
            wall_clock += duration
            if advance_clock:
                provider.advance_time(duration)
    return NetperfResult(
        rates_bps=rates,
        duration_per_pair_s=duration,
        total_wall_clock_s=wall_clock,
    )
