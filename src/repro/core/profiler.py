"""Application profiling (paper §2.1).

Choreo profiles an application offline with a network monitoring tool such
as sFlow or tcpdump; the output is a matrix whose entry ``(i, j)`` is
proportional to the number of bytes task ``i`` sends to task ``j``.  The
profiler here consumes :class:`~repro.workloads.trace.FlowRecord` streams
(our sFlow stand-in) and produces :class:`~repro.workloads.application.Application`
objects ready for placement.  It can also *predict* the next window's
matrix from history using the §6.1 predictors (previous window and
time-of-day).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.units import HOUR
from repro.workloads.application import Application, Task, TrafficMatrix
from repro.workloads.trace import FlowRecord, records_to_traffic_matrix


@dataclass
class ApplicationProfiler:
    """Builds application profiles from observed flow records.

    Attributes:
        default_cpu_cores: CPU demand assumed for tasks whose demand is not
            supplied (the HP Cloud dataset had no CPU data either; the paper
            models 0.5–4 cores per task).
    """

    default_cpu_cores: float = 1.0

    def profile_traffic(
        self,
        records: Iterable[FlowRecord],
        application: Optional[str] = None,
        window: Optional[Tuple[float, float]] = None,
    ) -> TrafficMatrix:
        """Aggregate records into a traffic matrix (optionally time-windowed)."""
        start, end = window if window is not None else (None, None)
        return records_to_traffic_matrix(
            records, application=application, start=start, end=end
        )

    def profile_application(
        self,
        records: Sequence[FlowRecord],
        application: str,
        task_cpu_cores: Optional[Mapping[str, float]] = None,
        window: Optional[Tuple[float, float]] = None,
        start_time: Optional[float] = None,
    ) -> Application:
        """Build an :class:`Application` from the records of one application.

        Args:
            records: observed flow records (may contain other applications).
            application: name of the application to profile.
            task_cpu_cores: optional per-task CPU demands; tasks not listed
                get ``default_cpu_cores``.
            window: optional ``(start, end)`` profiling window in seconds.
            start_time: the application's start time; defaults to the first
                record observed for it.

        Raises:
            WorkloadError: if no records match the application.
        """
        matching = [r for r in records if r.application == application]
        if window is not None:
            lo, hi = window
            matching = [r for r in matching if lo <= r.timestamp < hi]
        if not matching:
            raise WorkloadError(
                f"no flow records found for application {application!r}"
            )
        traffic = self.profile_traffic(matching)
        task_names = sorted(
            {r.src_task for r in matching} | {r.dst_task for r in matching}
        )
        cpus = dict(task_cpu_cores) if task_cpu_cores else {}
        tasks = [
            Task(name, cpus.get(name, self.default_cpu_cores)) for name in task_names
        ]
        observed_start = min(r.timestamp for r in matching)
        return Application(
            name=application,
            tasks=tasks,
            traffic=traffic,
            start_time=observed_start if start_time is None else start_time,
        )

    def hourly_matrices(
        self,
        records: Sequence[FlowRecord],
        application: str,
        n_hours: Optional[int] = None,
    ) -> List[TrafficMatrix]:
        """One traffic matrix per hour of the trace for one application."""
        matching = [r for r in records if r.application == application]
        if not matching:
            return []
        last_hour = int(max(r.timestamp for r in matching) // HOUR)
        hours = n_hours if n_hours is not None else last_hour + 1
        return [
            records_to_traffic_matrix(
                matching, start=h * HOUR, end=(h + 1) * HOUR
            )
            for h in range(hours)
        ]

    def predict_next_window(
        self,
        history: Sequence[TrafficMatrix],
        hours_per_day: int = 24,
    ) -> TrafficMatrix:
        """Predict the next window's matrix from per-window history (§6.1).

        The prediction for each task pair is the average of the previous
        window's value and the mean of the same time-of-day in prior days
        (when at least a day of history exists); with less history it falls
        back to the previous window alone.

        Raises:
            WorkloadError: if no history is provided.
        """
        if not history:
            raise WorkloadError("cannot predict from empty history")
        previous = history[-1]
        next_index = len(history)
        same_tod_indices = [
            i for i in range(next_index % hours_per_day, next_index, hours_per_day)
        ]
        pairs = set()
        for matrix in history:
            pairs.update(pair for pair, _ in matrix.items())

        predicted = TrafficMatrix()
        for src, dst in sorted(pairs):
            prev_value = previous.get(src, dst)
            if same_tod_indices:
                tod_value = sum(
                    history[i].get(src, dst) for i in same_tod_indices
                ) / len(same_tod_indices)
                value = 0.5 * (prev_value + tod_value)
            else:
                value = prev_value
            predicted.add(src, dst, value)
        return predicted
