"""Instance types and virtual machine handles.

A :class:`VirtualMachine` is what the tenant gets back from
``request_vms``: a named handle pinned to a physical host of the provider's
internal topology.  The tenant never sees the host; Choreo has to infer
locality from measurements, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CloudError
from repro.units import GBITPS, MBITPS


@dataclass(frozen=True)
class InstanceType:
    """A provider instance type.

    Attributes:
        name: e.g. ``"m1.medium"`` or ``"rackspace-8gb"``.
        cores: CPU cores available to the tenant on this instance (the
            evaluation models four cores per machine).
        advertised_egress_bps: the egress rate the provider advertises (or
            that tenants commonly observe) for this instance type.
    """

    name: str
    cores: float = 4.0
    advertised_egress_bps: float = 1 * GBITPS

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise CloudError("instance type must have positive cores")
        if self.advertised_egress_bps <= 0:
            raise CloudError("advertised egress rate must be positive")


EC2_MEDIUM = InstanceType("ec2-medium", cores=4.0, advertised_egress_bps=1 * GBITPS)
RACKSPACE_8GB = InstanceType(
    "rackspace-8gb", cores=4.0, advertised_egress_bps=300 * MBITPS
)


@dataclass(frozen=True)
class VirtualMachine:
    """A VM handle returned to the tenant.

    Attributes:
        name: tenant-visible identifier.
        host: physical machine the VM was scheduled on (internal detail the
            tenant cannot see directly).
        instance_type: the VM's instance type.
    """

    name: str
    host: str
    instance_type: InstanceType = EC2_MEDIUM

    def __post_init__(self) -> None:
        if not self.name or not self.host:
            raise CloudError("VM name and host must be non-empty")

    @property
    def cores(self) -> float:
        """CPU cores available on this VM."""
        return self.instance_type.cores
