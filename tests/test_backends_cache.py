"""Execution backends and the persistent content-addressed result store:
registry behaviour, cross-backend equivalence, cache hits/invalidation, the
trace-replay scenario, and the dropped-trials summary accounting."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    ResultStore,
    TrialRecord,
    WorkItem,
    backend_names,
    code_version,
    create_backend,
    get_backend,
    get_scenario,
    run_trial,
    tree_digest,
)
from repro.experiments.backends import SubprocessPoolBackend, _split_chunks
from repro.experiments.cache import CacheKey
from repro.experiments.cli import main as cli_main

ALL_BACKENDS = ("inline", "process", "remote", "subprocess-pool")


def _small_config(**overrides):
    defaults = dict(
        scenarios=("smoke",),
        placers=("greedy", "random"),
        trials=2,
        baseline="random",
        workers=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# ---------------------------------------------------------------- registry
def test_backend_registry_lists_all_backends():
    assert list(ALL_BACKENDS) == sorted(ALL_BACKENDS)
    for name in ALL_BACKENDS:
        assert name in backend_names()
        assert get_backend(name).description


def test_unknown_backend_rejected_eagerly():
    with pytest.raises(ExperimentError):
        ExperimentConfig(scenarios=("smoke",), backend="carrier-pigeon")


def test_backend_default_preserves_historical_behaviour():
    assert _small_config(workers=1).effective_backend == "inline"
    assert _small_config(workers=2).effective_backend == "process"
    assert _small_config(workers=None).effective_backend == "process"
    assert _small_config(workers=4, backend="inline").effective_backend == "inline"


# ------------------------------------------------------------- equivalence
def test_all_backends_produce_bit_identical_canonical_results():
    outputs = {}
    for name in ALL_BACKENDS:
        result = ExperimentRunner(_small_config(backend=name)).run()
        outputs[name] = json.dumps(result.canonical_json_dict(), sort_keys=True)
    assert outputs["inline"] == outputs["process"] == outputs["subprocess-pool"]


def test_backend_map_trials_preserves_input_order():
    items = [
        WorkItem.make("smoke", placer, trial, 0)
        for placer in ("random", "round-robin")
        for trial in (1, 0)
    ]
    records = create_backend("subprocess-pool", workers=2).map_trials(items)
    assert [(rec.placer, rec.trial) for rec in records] == [
        (item.placer, item.trial) for item in items
    ]


def test_subprocess_chunking_covers_every_index_once():
    items = [WorkItem.make("smoke", "random", t, 0) for t in range(7)]
    chunks = _split_chunks(items, 3)
    flat = sorted(i for chunk in chunks for i in chunk)
    assert flat == list(range(7))
    assert all(chunk for chunk in chunks)


def test_subprocess_worker_failure_surfaces_as_experiment_error(monkeypatch):
    import sys

    backend = SubprocessPoolBackend(workers=1)
    monkeypatch.setattr(sys, "executable", "/nonexistent-python")
    with pytest.raises((ExperimentError, OSError)):
        backend.map_trials([WorkItem.make("smoke", "random", 0, 0)])


def test_work_item_json_round_trip():
    item = WorkItem.make("smoke", "greedy", 3, 7, params={"n_vms": 6})
    assert WorkItem.from_json_dict(item.to_json_dict()) == item
    assert item.seed == run_trial("smoke", "greedy", 3, 7, {"n_vms": 6}).seed


# -------------------------------------------------------------------- cache
def test_store_round_trips_records_and_counts_stats(tmp_path):
    store = ResultStore(tmp_path, version="v1")
    key = store.key_for("smoke", "random", 0, 42, params={"n_vms": 4})
    assert store.get(key) is None
    record = run_trial("smoke", "random", 0, 0)
    store.put(key, record)
    assert store.get(key) == record
    assert len(store) == 1
    assert store.stats == {"hits": 1, "misses": 1, "stored": 1, "invalidated": 0}


def test_cache_key_digest_covers_every_component():
    base = dict(scenario="s", placer="p", trial=0, seed=1, version="v")
    digest = CacheKey.make(**base).digest()
    for change in (
        dict(scenario="s2"), dict(placer="p2"), dict(trial=1), dict(seed=2),
        dict(version="v2"), dict(params={"k": 1}),
    ):
        assert CacheKey.make(**{**base, **change}).digest() != digest


def test_code_version_change_invalidates_store(tmp_path):
    old = ResultStore(tmp_path, version="code-a")
    key = old.key_for("smoke", "random", 0, 42)
    old.put(key, run_trial("smoke", "random", 0, 0))

    new = ResultStore(tmp_path, version="code-b")
    assert new.get(new.key_for("smoke", "random", 0, 42)) is None
    assert len(new) == 0  # the old cell is invisible under the new version
    assert new.prune_stale() == 1  # ...and reclaimable
    assert len(old) == 0


def test_corrupt_cell_is_dropped_and_re_missed(tmp_path):
    store = ResultStore(tmp_path, version="v1")
    key = store.key_for("smoke", "random", 0, 42)
    path = store.put(key, run_trial("smoke", "random", 0, 0))
    path.write_text("{not json")
    assert store.get(key) is None
    assert store.stats["invalidated"] == 1
    assert not path.exists()


def test_malformed_record_dict_is_a_miss_not_an_error(tmp_path):
    store = ResultStore(tmp_path, version="v1")
    key = store.key_for("smoke", "random", 0, 42)
    path = store.put(key, run_trial("smoke", "random", 0, 0))
    payload = json.loads(path.read_text())
    payload["record"]["not_a_field"] = 1
    path.write_text(json.dumps(payload))
    assert store.get(key) is None  # treated as corruption, not fatal
    assert store.stats["invalidated"] == 1
    assert not path.exists()


def test_prune_stale_survives_interrupted_write_droppings(tmp_path):
    old = ResultStore(tmp_path, version="code-a")
    old.put(old.key_for("smoke", "random", 0, 42), run_trial("smoke", "random", 0, 0))
    # A put() killed between mkstemp and os.replace leaves a .tmp behind.
    stale_dir = tmp_path / "code-a"[:16]
    next(stale_dir.rglob("*.json")).parent.joinpath("dead.tmp").write_text("x")
    new = ResultStore(tmp_path, version="code-b")
    assert new.prune_stale() == 1
    assert not stale_dir.exists()


def test_code_version_is_stable_and_tracks_source_changes(tmp_path):
    assert code_version() == code_version()
    (tmp_path / "mod.py").write_text("x = 1\n")
    before = tree_digest(tmp_path)
    assert before == tree_digest(tmp_path)
    (tmp_path / "mod.py").write_text("x = 2\n")
    assert tree_digest(tmp_path) != before
    (tmp_path / "notes.txt").write_text("not source")
    assert tree_digest(tmp_path) == tree_digest(tmp_path)


def test_warm_run_executes_zero_trials_and_matches_cold(tmp_path):
    config = _small_config(workers=1, cache_dir=str(tmp_path))
    cold_runner = ExperimentRunner(config)
    cold = cold_runner.run()
    assert cold_runner.last_stats.executed == 4
    assert cold_runner.last_stats.cache_hits == 0

    warm_runner = ExperimentRunner(config)
    warm = warm_runner.run()
    assert warm_runner.last_stats.executed == 0
    assert warm_runner.last_stats.cache_hits == 4
    # Cached records carry the cold run's timings, so the full (not just
    # canonical) JSON is bit-identical.
    assert json.dumps(cold.to_json_dict(), sort_keys=True) == json.dumps(
        warm.to_json_dict(), sort_keys=True
    )


def test_grown_grid_only_executes_new_cells(tmp_path):
    small = _small_config(workers=1, trials=1, cache_dir=str(tmp_path))
    ExperimentRunner(small).run()
    grown = _small_config(workers=1, trials=2, cache_dir=str(tmp_path))
    runner = ExperimentRunner(grown)
    runner.run()
    assert runner.last_stats.cache_hits == 2  # trial 0 of both placers
    assert runner.last_stats.executed == 2  # only the new trial-1 cells


def test_error_records_are_cached_too(tmp_path):
    config = ExperimentConfig(
        scenarios=("smoke",), placers=("random",), trials=1, baseline="random",
        cache_dir=str(tmp_path), scenario_params={"smoke": {"n_vms": 1}},
    )
    first = ExperimentRunner(config)
    result = first.run()
    assert all(not rec.ok for rec in result.records)
    second = ExperimentRunner(config)
    rerun = second.run()
    assert second.last_stats.executed == 0
    assert [rec.error for rec in rerun.records] == [
        rec.error for rec in result.records
    ]


# ---------------------------------------------------------------------- CLI
def test_cli_run_reports_cache_resume(tmp_path, capsys):
    out = tmp_path / "results.json"
    args = [
        "run", "--scenario", "smoke", "--trials", "2", "--placers", "random",
        "--cache-dir", str(tmp_path / "store"), "--output", str(out),
    ]
    assert cli_main(args) == 0
    assert "executed 2 trial(s)" in capsys.readouterr().out
    assert cli_main(args) == 0
    assert "executed 0 trial(s)" in capsys.readouterr().out


def test_cli_no_cache_forces_execution(tmp_path, capsys):
    out = tmp_path / "results.json"
    args = [
        "run", "--scenario", "smoke", "--trials", "1", "--placers", "random",
        "--cache-dir", str(tmp_path / "store"), "--output", str(out),
    ]
    assert cli_main(args) == 0
    capsys.readouterr()
    assert cli_main(args + ["--no-cache"]) == 0
    assert "executed 1 trial(s)" in capsys.readouterr().out


def test_cli_run_accepts_explicit_backend(tmp_path, capsys):
    out = tmp_path / "results.json"
    code = cli_main(
        ["run", "--scenario", "smoke", "--trials", "1", "--placers", "random",
         "--backend", "subprocess-pool", "--workers", "2", "--output", str(out)]
    )
    assert code == 0
    assert "backend subprocess-pool" in capsys.readouterr().out
    assert json.loads(out.read_text())["records"]


def test_config_rejects_non_scalar_param_values():
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",),
            scenario_params={"smoke": {"n_vms": (4, 6)}},
        )


def test_sweep_resume_bench_is_opt_in():
    from repro.bench.benchmarks import DEFAULT_SUITE, run_benchmarks

    assert "sweep_resume" not in DEFAULT_SUITE
    payload = run_benchmarks(quick=True, only=["sweep_resume"])
    assert payload["all_matched"]
    bench = payload["benches"]["sweep_resume"]
    assert bench["warm_executed"] == 0
    assert payload["targets"]["resume_speedup_min"] == 5.0
    assert "allocator_speedup" not in payload["targets"]


def test_cli_list_names_backends(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["backends"] == list(ALL_BACKENDS)


# ---------------------------------------------------- trace-replay scenario
def test_trace_replay_scenario_profiles_apps_from_records():
    spec = get_scenario("ec2-trace-replay")
    first = spec.build(seed=11)
    second = spec.build(seed=11)
    assert first.mode == "sequence"
    assert len(first.apps) == 3
    # Profiling from records preserves the ground-truth traffic exactly
    # (record byte shares sum back to the matrix entries)...
    assert [app.traffic.total_bytes for app in first.apps] == pytest.approx(
        [app.traffic.total_bytes for app in second.apps]
    )
    # ...and the builder is seed-reproducible.
    assert [app.transfers() for app in first.apps] == [
        app.transfers() for app in second.apps
    ]
    assert all(app.total_cpu > 0 for app in first.apps)


def test_trace_replay_trial_runs_through_measure_and_place():
    record = run_trial(
        "ec2-trace-replay", "greedy", 0, 0,
        {"n_vms": 8, "n_apps": 2, "records_per_pair": 3},
    )
    assert record.ok, record.error
    assert record.measurement_overhead_s > 0  # greedy measured the network
    assert record.total_running_time_s > 0


# -------------------------------------------------- dropped-trials summary
def test_summary_surfaces_dropped_trials():
    def rec(placer, trial, total):
        return TrialRecord(
            scenario="s", placer=placer, trial=trial, seed=trial,
            total_running_time_s=total,
        )

    result = ExperimentResult(
        scenarios=["s"], placers=["round-robin", "random"], trials=3,
        base_seed=0, baseline="random",
        records=[
            rec("random", 0, 0.0), rec("round-robin", 0, 2.0),  # -inf: dropped
            rec("random", 1, 2.0), rec("round-robin", 1, 1.0),  # kept
            rec("round-robin", 2, 1.0),  # baseline missing: dropped
        ],
    )
    cell = result.summary()["s"]["round-robin"]
    assert cell["dropped_trials"] == 2
    assert cell["trials_ok"] == 3
    assert "dropped_trials" not in result.summary()["s"]["random"]

    clean = ExperimentResult(
        scenarios=["s"], placers=["round-robin", "random"], trials=1,
        base_seed=0, baseline="random",
        records=[rec("random", 0, 2.0), rec("round-robin", 0, 1.0)],
    )
    assert clean.summary()["s"]["round-robin"]["dropped_trials"] == 0


# ------------------------------------------------------- worker-loss chaos
def _chaos_items(n=6):
    return [WorkItem.make("smoke", "random", trial, 0) for trial in range(n)]


def test_chaos_crashed_worker_is_salvaged_and_result_is_bit_identical(
    tmp_path, monkeypatch
):
    items = _chaos_items()
    expected = create_backend("inline").map_trials(items)

    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "crash")
    backend = SubprocessPoolBackend(workers=2, max_retries=2)
    records = backend.map_trials(items)
    assert (tmp_path / "chaos-fired").exists(), "chaos hook never armed"

    def canonical(recs):
        return json.dumps(
            [
                {
                    k: v
                    for k, v in vars(rec).items()
                    if k not in ("trial_wall_s", "placement_wall_s")
                }
                for rec in recs
            ],
            sort_keys=True,
        )

    assert canonical(records) == canonical(expected)


def test_chaos_hung_worker_is_killed_and_work_retried(tmp_path, monkeypatch):
    items = _chaos_items(2)
    expected = create_backend("inline").map_trials(items)

    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "hang")
    backend = SubprocessPoolBackend(workers=1, max_retries=1, chunk_timeout_s=10.0)
    records = backend.map_trials(items)
    assert [rec.seed for rec in records] == [rec.seed for rec in expected]
    assert [rec.total_running_time_s for rec in records] == [
        rec.total_running_time_s for rec in expected
    ]


def test_chaos_crash_with_no_retry_budget_raises(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "crash")
    backend = SubprocessPoolBackend(workers=1, max_retries=0)
    with pytest.raises(ExperimentError, match="gave up"):
        backend.map_trials(_chaos_items(2))


def test_subprocess_pool_rejects_bad_options():
    with pytest.raises(ExperimentError):
        create_backend("subprocess-pool", options={"bogus": 1})
    with pytest.raises(ExperimentError):
        create_backend("inline", options={"max_retries": 1})
    with pytest.raises(ExperimentError):
        SubprocessPoolBackend(max_retries=-1)
    with pytest.raises(ExperimentError):
        SubprocessPoolBackend(chunk_timeout_s=0.0)


def test_config_threads_subprocess_pool_options():
    config = _small_config(
        backend="subprocess-pool", max_retries=4, chunk_timeout_s=30.0
    )
    assert config.backend_options == {"max_retries": 4, "chunk_timeout_s": 30.0}
    assert _small_config(backend="inline", workers=1).backend_options == {}
    with pytest.raises(ExperimentError):
        _small_config(backend="inline", chunk_timeout_s=30.0)


# ------------------------------------------------------ keep-going trials
def test_keep_going_captures_crashing_trial(monkeypatch):
    import repro.experiments.trials as trials_mod

    def boom(name):
        raise RuntimeError("synthetic bug")

    monkeypatch.setattr(trials_mod, "get_scenario", boom)
    record = run_trial("smoke", "random", 0, 0)
    assert record.status == "error"
    assert "RuntimeError: synthetic bug" in record.error

    with pytest.raises(RuntimeError):
        run_trial("smoke", "random", 0, 0, fail_fast=True)


def test_fail_fast_rides_the_work_item_wire_format():
    item = WorkItem.make("smoke", "random", 0, 0, fail_fast=True)
    assert WorkItem.from_json_dict(item.to_json_dict()) == item
    # Error policy must not split the cache: items differing only in
    # fail_fast share a persistent-store key.
    store_fields = (item.scenario, item.placer, item.trial, item.seed)
    other = WorkItem.make("smoke", "random", 0, 0, fail_fast=False)
    assert store_fields == (other.scenario, other.placer, other.trial, other.seed)


def test_result_json_carries_top_level_dropped_trials():
    records = [
        TrialRecord(scenario="s", placer="random", trial=0, seed=1),
        TrialRecord(
            scenario="s", placer="random", trial=1, seed=2,
            status="error", error="RuntimeError: synthetic",
        ),
    ]
    result = ExperimentResult(
        scenarios=["s"], placers=["random"], trials=2,
        base_seed=0, baseline="random", records=records,
    )
    payload = result.to_json_dict()
    assert payload["dropped_trials"] == [
        {"scenario": "s", "placer": "random", "trial": 1,
         "error": "RuntimeError: synthetic"}
    ]
    assert result.canonical_json_dict()["dropped_trials"] == payload["dropped_trials"]
