"""``python -m repro`` — the unified CLI dispatcher (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
