"""Multi-rooted tree datacenter topologies (paper §3.3.1, Figure 5).

The paper assumes datacenter networks are multi-rooted trees: virtual
machines sit on physical machines, which connect to top-of-rack (ToR)
switches, which connect to aggregation switches, which connect to core
switches.  Path hop counts in such a topology fall in ``{1, 2, 4, 6, 8}``
(Figure 8): one "hop" for two VMs on the same physical machine, two for the
same rack, four within an aggregation subtree, six through the core, and
eight when an extra aggregation tier is present.

:class:`Topology` is a thin, convenient wrapper around a ``networkx`` graph
that knows about directed capacities, racks, subtrees, and intra-host
loopback links.  Specialised builders create the topologies the paper uses:

* :func:`build_multi_rooted_tree` — the general datacenter of Figure 5;
* :func:`build_dumbbell` — Figure 3(a), ten sender/receiver pairs sharing one
  1 Gbit/s link;
* :func:`build_two_rack_cloud` — Figure 3(b), two racks of ten nodes whose
  ToR switches connect through a 10 Gbit/s aggregation switch.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro import obs
from repro.errors import RoutingError, TopologyError
from repro.net.links import (
    Link,
    LinkKind,
    directed_link_id,
    loopback_link_id,
)
from repro.units import GBITPS


# ---------------------------------------------------------------------------
# Process-wide routing cache
# ---------------------------------------------------------------------------
# ECMP path choices depend only on the graph *structure* (edges) and the
# endpoint pair, not on capacities or on which Topology instance asked.
# Experiment sweeps rebuild structurally identical topologies for every
# trial, so path computations are shared process-wide, keyed by a structure
# token.  The cache is bounded: it is simply dropped when it grows past
# _ROUTE_CACHE_MAX_ENTRIES (sweeps revisit far fewer distinct pairs).
_ROUTE_CACHE_MAX_ENTRIES = 262_144
_route_cache: Dict[Tuple[str, str, str], List[str]] = {}
_route_cache_enabled = True
# Typed counters (thin-viewed by route_cache_info(); aggregated by
# ``obs.metrics.snapshot()`` under ``repro.routes.*``).
_route_cache_hits = obs.Counter("repro.routes.cache_hits")
_route_cache_misses = obs.Counter("repro.routes.cache_misses")


def set_route_cache_enabled(enabled: bool) -> bool:
    """Enable/disable the shared routing cache; returns the previous state."""
    global _route_cache_enabled
    previous = _route_cache_enabled
    _route_cache_enabled = bool(enabled)
    return previous


def clear_route_cache() -> None:
    """Drop every entry (and reset the counters) of the shared routing cache."""
    _route_cache.clear()
    _route_cache_hits.value = 0
    _route_cache_misses.value = 0


def route_cache_info() -> Dict[str, int]:
    """Counters for the shared routing cache (entries, hits, misses)."""
    return {
        "entries": len(_route_cache),
        "hits": _route_cache_hits.count,
        "misses": _route_cache_misses.count,
        "enabled": int(_route_cache_enabled),
    }


# ---------------------------------------------------------------------------
# Structured-topology routing fast path
# ---------------------------------------------------------------------------
# Multi-rooted trees built from a TreeSpec have completely regular routes:
# host i sits in pod i // (racks_per_pod * hosts_per_rack) and rack
# (i // hosts_per_rack) % racks_per_pod, and every path is determined by the
# relation between the two endpoints' coordinates (same host / rack / pod /
# cross-pod) plus the ECMP core choice.  Builders register a _TreeRouter per
# structure token; Topology.node_path consults it before falling back to
# graph search.  The router must reproduce the graph-search answer exactly.
_STRUCTURED_ROUTER_MAX_ENTRIES = 1024
_structured_routers: Dict[str, "_TreeRouter"] = {}
_structured_routing_enabled = True
_structured_route_hits = obs.Counter("repro.routes.structured_hits")


def set_structured_routing_enabled(enabled: bool) -> bool:
    """Enable/disable the structured routing fast path; returns prior state."""
    global _structured_routing_enabled
    previous = _structured_routing_enabled
    _structured_routing_enabled = bool(enabled)
    return previous


def structured_routing_info() -> Dict[str, int]:
    """Counters for the structured routing fast path."""
    return {
        "routers": len(_structured_routers),
        "hits": _structured_route_hits.count,
        "enabled": int(_structured_routing_enabled),
    }


class _TreeRouter:
    """Arithmetic ECMP routing for trees built by :func:`build_multi_rooted_tree`.

    Paths are derived from host coordinates instead of graph search.  The
    core pick for cross-pod pairs replays ``node_path``'s hash-modulo over
    the lexicographically sorted path list: cross-pod paths differ only in
    the core hop, so sorted-path order equals sorted-core-name order.
    """

    def __init__(self, spec: "TreeSpec"):
        self.spec = spec
        self._hosts_per_pod = spec.hosts_per_rack * spec.racks_per_pod
        self._num_hosts = spec.num_hosts
        self._cores_sorted = sorted(f"core{c}" for c in range(spec.num_cores))

    def host_coords(self, name: str) -> Optional[Tuple[int, int, int]]:
        """(index, pod, rack) for a canonical host name, else None."""
        if not name.startswith("host"):
            return None
        try:
            idx = int(name[4:])
        except ValueError:
            return None
        if not 0 <= idx < self._num_hosts or name != f"host{idx}":
            return None
        pod, rest = divmod(idx, self._hosts_per_pod)
        return idx, pod, rest // self.spec.hosts_per_rack

    def node_path(self, src: str, dst: str) -> Optional[List[str]]:
        """The ECMP path between two hosts, or None if not covered."""
        a = self.host_coords(src)
        if a is None:
            return None
        b = self.host_coords(dst)
        if b is None:
            return None
        if src == dst:
            return [src]
        spec = self.spec
        _, pa, ra = a
        _, pb, rb = b
        tor_a, tor_b = f"tor{pa}.{ra}", f"tor{pb}.{rb}"
        if pa == pb:
            if ra == rb:
                return [src, tor_a, dst]
            if spec.extra_agg_layer:
                return [
                    src, tor_a, f"agg{pa}.{ra}", f"agg{pa}",
                    f"agg{pb}.{rb}", tor_b, dst,
                ]
            return [src, tor_a, f"agg{pa}", tor_b, dst]
        if spec.num_cores == 1:
            core = self._cores_sorted[0]
        else:
            digest = hashlib.sha256(f"{src}|{dst}".encode()).digest()
            pick = int.from_bytes(digest[:4], "big") % spec.num_cores
            core = self._cores_sorted[pick]
        if spec.extra_agg_layer:
            return [
                src, tor_a, f"agg{pa}.{ra}", f"agg{pa}", core,
                f"agg{pb}", f"agg{pb}.{rb}", tor_b, dst,
            ]
        return [src, tor_a, f"agg{pa}", core, f"agg{pb}", tor_b, dst]

    def hop_count(self, src: str, dst: str) -> Optional[int]:
        """Paper-convention hop count between two hosts, or None."""
        a = self.host_coords(src)
        if a is None:
            return None
        b = self.host_coords(dst)
        if b is None:
            return None
        if src == dst:
            return 1
        _, pa, ra = a
        _, pb, rb = b
        if pa == pb:
            if ra == rb:
                return 2
            return 6 if self.spec.extra_agg_layer else 4
        return 8 if self.spec.extra_agg_layer else 6


def _register_tree_router(topo: "Topology", spec: "TreeSpec") -> None:
    token = topo.structure_token()
    if token in _structured_routers:
        return
    if len(_structured_routers) >= _STRUCTURED_ROUTER_MAX_ENTRIES:
        _structured_routers.clear()
    _structured_routers[token] = _TreeRouter(spec)


def _lazy_kth_shortest_path(
    graph: nx.Graph, src: str, dst: str, k: Optional[int] = None
) -> Optional[List[str]]:
    """The k-th lexicographic shortest path without materialising them all.

    A reverse BFS from ``dst`` yields, for every node on a shortest path,
    the number of shortest paths from it to ``dst``.  Walking forward from
    ``src`` and always taking the smallest-named neighbour whose subtree
    still contains the k-th path then reproduces
    ``sorted(nx.all_shortest_paths(graph, src, dst))[k]`` exactly: all
    shortest paths share a length, so list comparison is decided at the
    first differing node, and subtree path counts are contiguous blocks of
    the sorted order.  When ``k`` is None it is derived from the endpoint
    digest exactly as the eager implementation derived it.

    Returns None when no path exists.
    """
    dist = {dst: 0}
    frontier = [dst]
    depth = 0
    while frontier and src not in dist:
        nxt: List[str] = []
        for node in frontier:
            for neigh in graph.neighbors(node):
                if neigh not in dist:
                    dist[neigh] = depth + 1
                    nxt.append(neigh)
        depth += 1
        frontier = nxt
    if src not in dist:
        return None
    target = dist[src]
    levels: List[List[str]] = [[] for _ in range(target + 1)]
    for node, d in dist.items():
        if d <= target:
            levels[d].append(node)
    counts: Dict[str, int] = {dst: 1}
    for d in range(1, target + 1):
        for node in levels[d]:
            total = 0
            for neigh in graph.neighbors(node):
                if dist.get(neigh) == d - 1:
                    total += counts[neigh]
            counts[node] = total
    if k is None:
        digest = hashlib.sha256(f"{src}|{dst}".encode()).digest()
        k = int.from_bytes(digest[:4], "big") % counts[src]
    path = [src]
    node = src
    while node != dst:
        d = dist[node]
        for neigh in sorted(graph.neighbors(node)):
            if dist.get(neigh) != d - 1:
                continue
            c = counts[neigh]
            if k < c:
                node = neigh
                path.append(neigh)
                break
            k -= c
        else:  # pragma: no cover - counts guarantee a neighbour is found
            raise RoutingError(f"path walk failed between {src!r} and {dst!r}")
    return path


class NodeKind(enum.Enum):
    """Role of a node in the datacenter tree."""

    HOST = "host"
    TOR = "tor"
    AGG = "agg"
    CORE = "core"


@dataclass(frozen=True)
class TreeSpec:
    """Parameters for :func:`build_multi_rooted_tree`.

    Attributes:
        hosts_per_rack: physical machines attached to each ToR switch.
        racks_per_pod: ToR switches below each aggregation switch.
        pods: number of aggregation subtrees ("pods").
        num_cores: number of core switches; every aggregation switch links to
            all of them (the "multi-rooted" part).
        host_link_bps: capacity of host <-> ToR links.
        tor_agg_link_bps: capacity of ToR <-> aggregation links.
        agg_core_link_bps: capacity of aggregation <-> core links.
        intra_host_bps: capacity of the intra-host loopback path (the
            near-4 Gbit/s colocated-VM paths seen on EC2).
        extra_agg_layer: insert a second aggregation tier between the ToRs
            and the pod aggregation switch, producing 8-hop core paths as
            observed on EC2.
    """

    hosts_per_rack: int = 4
    racks_per_pod: int = 2
    pods: int = 2
    num_cores: int = 2
    host_link_bps: float = 1 * GBITPS
    tor_agg_link_bps: float = 10 * GBITPS
    agg_core_link_bps: float = 10 * GBITPS
    intra_host_bps: float = 4 * GBITPS
    extra_agg_layer: bool = False

    def __post_init__(self) -> None:
        for name in ("hosts_per_rack", "racks_per_pod", "pods", "num_cores"):
            if getattr(self, name) < 1:
                raise TopologyError(f"TreeSpec.{name} must be >= 1")

    @property
    def num_hosts(self) -> int:
        """Total number of physical machines in the tree."""
        return self.hosts_per_rack * self.racks_per_pod * self.pods


class Topology:
    """An undirected capacitated graph with datacenter-tree metadata.

    The graph itself is undirected (cables), but every edge generates two
    directed :class:`~repro.net.links.Link` objects.  Hosts additionally get
    a loopback link carrying intra-host (colocated VM) traffic.
    """

    def __init__(self, name: str = "topology", intra_host_bps: float = 4 * GBITPS):
        self.name = name
        self.graph = nx.Graph()
        self._links: Dict[str, Link] = {}
        self._intra_host_bps = intra_host_bps
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}
        self._path_links_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._structure_token: Optional[str] = None

    # ------------------------------------------------------------------ nodes
    def add_node(self, name: str, kind: NodeKind, level: int = 0) -> None:
        """Add a node of the given kind.

        Raises:
            TopologyError: if a node with the same name already exists.
        """
        if name in self.graph:
            raise TopologyError(f"duplicate node {name!r}")
        self.graph.add_node(name, kind=kind, level=level)
        if kind is NodeKind.HOST:
            link = Link(
                link_id=loopback_link_id(name),
                src=name,
                dst=name,
                capacity_bps=self._intra_host_bps,
                kind=LinkKind.LOOPBACK,
            )
            self._links[link.link_id] = link

    def add_link(
        self,
        a: str,
        b: str,
        capacity_bps: float,
        kind: LinkKind = LinkKind.GENERIC,
    ) -> None:
        """Add a full-duplex link between ``a`` and ``b``.

        Two directed :class:`Link` objects (one per direction) are created
        with the same capacity.
        """
        for node in (a, b):
            if node not in self.graph:
                raise TopologyError(f"unknown node {node!r}")
        if self.graph.has_edge(a, b):
            raise TopologyError(f"duplicate link {a!r} <-> {b!r}")
        self.graph.add_edge(a, b)
        for src, dst in ((a, b), (b, a)):
            link = Link(
                link_id=directed_link_id(src, dst),
                src=src,
                dst=dst,
                capacity_bps=capacity_bps,
                kind=kind,
            )
            self._links[link.link_id] = link
        self._path_cache.clear()
        self._path_links_cache.clear()
        self._structure_token = None

    # ------------------------------------------------------------ inspection
    def node_kind(self, name: str) -> NodeKind:
        """Return the :class:`NodeKind` of ``name``."""
        try:
            return self.graph.nodes[name]["kind"]
        except KeyError as exc:
            raise TopologyError(f"unknown node {name!r}") from exc

    def nodes_of_kind(self, kind: NodeKind) -> List[str]:
        """All node names of the given kind, sorted for determinism."""
        return sorted(
            n for n, data in self.graph.nodes(data=True) if data["kind"] is kind
        )

    def hosts(self) -> List[str]:
        """All physical machine names."""
        return self.nodes_of_kind(NodeKind.HOST)

    def links(self) -> List[Link]:
        """All directed links (physical, loopback) in the topology."""
        return list(self._links.values())

    def link(self, link_id: str) -> Link:
        """Look up a directed link by identifier."""
        try:
            return self._links[link_id]
        except KeyError as exc:
            raise TopologyError(f"unknown link {link_id!r}") from exc

    def has_link(self, link_id: str) -> bool:
        """True if ``link_id`` names a link in this topology."""
        return link_id in self._links

    def capacities(self) -> Dict[str, float]:
        """Mapping of link id to capacity for every directed link."""
        return {lid: link.capacity_bps for lid, link in self._links.items()}

    # -------------------------------------------------------------- hierarchy
    def neighbors_of_kind(self, name: str, kind: NodeKind) -> List[str]:
        """Neighbours of ``name`` having the given kind."""
        return sorted(
            n for n in self.graph.neighbors(name) if self.node_kind(n) is kind
        )

    def rack_of(self, host: str) -> Optional[str]:
        """The ToR switch a host is attached to, or None if it has none."""
        if self.node_kind(host) is not NodeKind.HOST:
            raise TopologyError(f"{host!r} is not a host")
        tors = self.neighbors_of_kind(host, NodeKind.TOR)
        return tors[0] if tors else None

    def hosts_in_rack(self, tor: str) -> List[str]:
        """Hosts attached to a ToR switch."""
        if self.node_kind(tor) is not NodeKind.TOR:
            raise TopologyError(f"{tor!r} is not a ToR switch")
        return self.neighbors_of_kind(tor, NodeKind.HOST)

    def same_rack(self, host_a: str, host_b: str) -> bool:
        """True if both hosts share a ToR switch (and are distinct machines)."""
        rack_a, rack_b = self.rack_of(host_a), self.rack_of(host_b)
        return rack_a is not None and rack_a == rack_b

    def subtree_of(self, host: str) -> Optional[str]:
        """The pod aggregation switch above the host's rack, if any."""
        tor = self.rack_of(host)
        if tor is None:
            return None
        frontier = [tor]
        seen = set(frontier)
        # Walk upward through any intermediate aggregation layers until we
        # reach the node directly below the core.
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for neigh in sorted(self.graph.neighbors(node)):
                    if neigh in seen:
                        continue
                    kind = self.node_kind(neigh)
                    if kind is NodeKind.AGG:
                        if self.neighbors_of_kind(neigh, NodeKind.CORE):
                            return neigh
                        nxt.append(neigh)
                        seen.add(neigh)
            frontier = nxt
        return None

    def same_subtree(self, host_a: str, host_b: str) -> bool:
        """True if both hosts sit under the same pod aggregation switch."""
        sub_a, sub_b = self.subtree_of(host_a), self.subtree_of(host_b)
        return sub_a is not None and sub_a == sub_b

    # ----------------------------------------------------------------- paths
    def structure_token(self) -> str:
        """A digest identifying the graph's structure (its edge set).

        Routing decisions depend only on this token, so structurally
        identical topologies (every trial of a sweep rebuilds the same tree)
        share the process-wide routing cache.
        """
        if self._structure_token is None:
            edge_text = "\n".join(
                sorted(f"{min(a, b)}|{max(a, b)}" for a, b in self.graph.edges())
            )
            self._structure_token = hashlib.sha256(edge_text.encode()).hexdigest()
        return self._structure_token

    def node_path(self, src: str, dst: str) -> List[str]:
        """Shortest node path from ``src`` to ``dst`` (inclusive).

        When several shortest paths exist (multi-rooted trees), the choice is
        made by a deterministic hash of the endpoint pair, mimicking ECMP:
        the same pair always uses the same path, different pairs spread over
        the available cores.
        """
        if src == dst:
            return [src]
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if _structured_routing_enabled:
            router = _structured_routers.get(self.structure_token())
            if router is not None:
                choice = router.node_path(src, dst)
                if choice is not None:
                    _structured_route_hits.inc()
                    self._path_cache[key] = choice
                    return choice
        for node in (src, dst):
            if node not in self.graph:
                raise TopologyError(f"unknown node {node!r}")
        shared_key = None
        if _route_cache_enabled:
            shared_key = (self.structure_token(), src, dst)
            shared = _route_cache.get(shared_key)
            if shared is not None:
                _route_cache_hits.inc()
                self._path_cache[key] = shared
                return shared
            _route_cache_misses.inc()
        choice = _lazy_kth_shortest_path(self.graph, src, dst)
        if choice is None:
            raise RoutingError(f"no path between {src!r} and {dst!r}")
        self._path_cache[key] = choice
        if shared_key is not None:
            if len(_route_cache) >= _ROUTE_CACHE_MAX_ENTRIES:
                _route_cache.clear()
            _route_cache[shared_key] = choice
        return choice

    def path_links(self, src: str, dst: str) -> List[Link]:
        """Directed links traversed from ``src`` to ``dst``.

        Intra-host traffic (``src == dst``) traverses only the host's
        loopback link.  The returned list is memoized per endpoint pair —
        callers must not mutate it.
        """
        key = (src, dst)
        cached = self._path_links_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            if self.node_kind(src) is not NodeKind.HOST:
                raise RoutingError(f"loopback path requires a host, got {src!r}")
            links = [self.link(loopback_link_id(src))]
        else:
            nodes = self.node_path(src, dst)
            links = [
                self.link(directed_link_id(a, b)) for a, b in zip(nodes, nodes[1:])
            ]
        self._path_links_cache[key] = links
        return links

    def hop_count(self, src: str, dst: str) -> int:
        """Hop count between two hosts, using the paper's convention.

        Two VMs on the same physical machine are "one hop" apart; otherwise
        the hop count is the number of links on the switched path (2 for the
        same rack, 4 within a pod, 6 via the core, 8 with a second
        aggregation tier).
        """
        if src == dst:
            return 1
        if _structured_routing_enabled:
            router = _structured_routers.get(self.structure_token())
            if router is not None:
                hops = router.hop_count(src, dst)
                if hops is not None:
                    return hops
        return len(self.node_path(src, dst)) - 1

    def host_pairs(self) -> List[Tuple[str, str]]:
        """All ordered pairs of distinct hosts."""
        hosts = self.hosts()
        return [(a, b) for a, b in itertools.permutations(hosts, 2)]

    def path_links_matrix(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> Tuple["np.ndarray", "np.ndarray", List[str]]:
        """Batched :meth:`path_links` as link-index rows.

        Returns ``(rows, lengths, link_ids)``: ``rows`` is an int32 array of
        shape ``(len(pairs), max_hops)`` whose valid prefix of row ``i``
        (length ``lengths[i]``) holds indices into ``link_ids`` — the same
        order as :meth:`capacities`/:meth:`links`, so rows feed straight
        into array-based allocator layouts.  Padding entries are -1.
        Loopback pairs (``src == dst``) get the host's loopback link, as in
        :meth:`path_links`.
        """
        link_ids = list(self._links)
        index = {lid: i for i, lid in enumerate(link_ids)}
        router = None
        if _structured_routing_enabled:
            router = _structured_routers.get(self.structure_token())
        all_rows: List[Tuple[int, ...]] = []
        try:
            for src, dst in pairs:
                if src == dst:
                    if self.node_kind(src) is not NodeKind.HOST:
                        raise RoutingError(
                            f"loopback path requires a host, got {src!r}"
                        )
                    all_rows.append((index[loopback_link_id(src)],))
                    continue
                nodes = router.node_path(src, dst) if router is not None else None
                if nodes is None:
                    nodes = self.node_path(src, dst)
                all_rows.append(
                    tuple(
                        index[directed_link_id(a, b)]
                        for a, b in zip(nodes, nodes[1:])
                    )
                )
        except KeyError as exc:  # pragma: no cover - defensive
            raise RoutingError(f"path uses unknown link: {exc}") from exc
        n = len(all_rows)
        lengths = np.fromiter((len(r) for r in all_rows), dtype=np.int64, count=n)
        total = int(lengths.sum()) if n else 0
        flat = np.fromiter(
            (i for row in all_rows for i in row), dtype=np.int32, count=total
        )
        max_hops = int(lengths.max()) if n else 0
        rows = np.full((n, max_hops), -1, dtype=np.int32)
        if n and max_hops:
            mask = np.arange(max_hops)[None, :] < lengths[:, None]
            rows[mask] = flat
        return rows, lengths.astype(np.int32), link_ids


# --------------------------------------------------------------------------
# Builders
# --------------------------------------------------------------------------
def build_multi_rooted_tree(spec: TreeSpec = TreeSpec(), name: str = "dc") -> Topology:
    """Build the multi-rooted tree of Figure 5 from a :class:`TreeSpec`."""
    topo = Topology(name=name, intra_host_bps=spec.intra_host_bps)
    for c in range(spec.num_cores):
        topo.add_node(f"core{c}", NodeKind.CORE, level=4)
    host_index = 0
    for p in range(spec.pods):
        agg = f"agg{p}"
        topo.add_node(agg, NodeKind.AGG, level=3)
        for c in range(spec.num_cores):
            topo.add_link(agg, f"core{c}", spec.agg_core_link_bps, LinkKind.AGG_CORE)
        for r in range(spec.racks_per_pod):
            tor = f"tor{p}.{r}"
            topo.add_node(tor, NodeKind.TOR, level=1)
            if spec.extra_agg_layer:
                mid = f"agg{p}.{r}"
                topo.add_node(mid, NodeKind.AGG, level=2)
                topo.add_link(tor, mid, spec.tor_agg_link_bps, LinkKind.TOR_AGG)
                topo.add_link(mid, agg, spec.tor_agg_link_bps, LinkKind.AGG_AGG)
            else:
                topo.add_link(tor, agg, spec.tor_agg_link_bps, LinkKind.TOR_AGG)
            for h in range(spec.hosts_per_rack):
                host = f"host{host_index}"
                host_index += 1
                topo.add_node(host, NodeKind.HOST, level=0)
                topo.add_link(host, tor, spec.host_link_bps, LinkKind.HOST_TOR)
    _register_tree_router(topo, spec)
    return topo


def build_dumbbell(
    n_pairs: int = 10,
    shared_link_bps: float = 1 * GBITPS,
    access_link_bps: float = 10 * GBITPS,
    name: str = "dumbbell",
) -> Topology:
    """Build the Figure 3(a) topology: ``n_pairs`` sender/receiver pairs.

    Senders ``s1..sN`` attach to a left switch, receivers ``r1..rN`` to a
    right switch, and a single ``shared_link_bps`` link connects the two
    switches; every sender-to-receiver flow crosses that shared bottleneck.
    """
    if n_pairs < 1:
        raise TopologyError("n_pairs must be >= 1")
    topo = Topology(name=name)
    topo.add_node("swL", NodeKind.TOR, level=1)
    topo.add_node("swR", NodeKind.TOR, level=1)
    topo.add_link("swL", "swR", shared_link_bps, LinkKind.GENERIC)
    for i in range(1, n_pairs + 1):
        sender, receiver = f"s{i}", f"r{i}"
        topo.add_node(sender, NodeKind.HOST, level=0)
        topo.add_node(receiver, NodeKind.HOST, level=0)
        topo.add_link(sender, "swL", access_link_bps, LinkKind.HOST_TOR)
        topo.add_link(receiver, "swR", access_link_bps, LinkKind.HOST_TOR)
    return topo


def build_two_rack_cloud(
    n_pairs: int = 10,
    host_link_bps: float = 1 * GBITPS,
    agg_link_bps: float = 10 * GBITPS,
    name: str = "cloud",
) -> Topology:
    """Build the Figure 3(b) topology.

    Senders share a ToR switch, receivers share another ToR switch, and the
    two ToRs connect through an aggregation switch ``A``.  Host links are
    1 Gbit/s while ToR-to-aggregation links are 10 Gbit/s, so cross traffic
    only bites once more than ten flows share a ToR uplink.
    """
    if n_pairs < 1:
        raise TopologyError("n_pairs must be >= 1")
    topo = Topology(name=name)
    topo.add_node("torS", NodeKind.TOR, level=1)
    topo.add_node("torR", NodeKind.TOR, level=1)
    topo.add_node("A", NodeKind.AGG, level=2)
    topo.add_link("torS", "A", agg_link_bps, LinkKind.TOR_AGG)
    topo.add_link("torR", "A", agg_link_bps, LinkKind.TOR_AGG)
    for i in range(1, n_pairs + 1):
        sender, receiver = f"s{i}", f"r{i}"
        topo.add_node(sender, NodeKind.HOST, level=0)
        topo.add_node(receiver, NodeKind.HOST, level=0)
        topo.add_link(sender, "torS", host_link_bps, LinkKind.HOST_TOR)
        topo.add_link(receiver, "torR", host_link_bps, LinkKind.HOST_TOR)
    return topo
