"""Measurement cache with per-pair TTL (the service's view of the mesh).

A long-running service cannot afford a full N² campaign at every admission
and every epoch tick.  :class:`MeasurementCache` keeps the last measured
rate and timestamp per ordered pair (the timestamps come from
:attr:`~repro.core.network_profile.NetworkProfile.pair_measured_at`) and,
on refresh, asks the measurer to re-probe only the pairs whose age exceeds
the TTL — the rest of the mesh is served from cache.

The cache also absorbs measurement *failure*: pairs the campaign reports as
degraded (probes failed even after retries) coast on their last cached rate
or fall back to a caller-supplied predictor, and are deliberately left
stale so the next refresh re-probes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.cloud.provider import VMFlow
from repro.core.measurement.orchestrator import NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.errors import ServiceError

#: Rate used for a degraded pair with no cached value and no fallback:
#: effectively "assume the worst", matching the measurer's 1 bps floor.
DEGRADED_FLOOR_BPS = 1.0


@dataclass
class CacheStats:
    """Counters describing how much mesh work the TTL cache avoided.

    Built on demand by :attr:`MeasurementCache.stats` as a thin view over
    the cache's :class:`repro.obs.Counter` instruments (process-wide
    aggregates live in ``obs.metrics.snapshot()`` under
    ``repro.measure.*``).
    """

    campaigns: int = 0
    pairs_measured: int = 0
    pairs_reused: int = 0
    pairs_degraded: int = 0
    measurement_time_s: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "campaigns": self.campaigns,
            "pairs_measured": self.pairs_measured,
            "pairs_reused": self.pairs_reused,
            "pairs_degraded": self.pairs_degraded,
            "measurement_time_s": round(self.measurement_time_s, 3),
        }


class MeasurementCache:
    """Keeps per-pair rates fresh within a TTL, re-probing selectively.

    Args:
        measurer: the campaign runner (its plan controls method and
            parallelism; the service uses ``advance_clock=False`` plans and
            accounts measurement time explicitly).
        vms: the ordered mesh to cover.
        ttl_s: maximum age before a pair is considered stale.  The default
            of one hour matches the paper's hourly predictability grain.
    """

    def __init__(
        self,
        measurer: NetworkMeasurer,
        vms: Sequence[str],
        ttl_s: float = 3600.0,
    ):
        if ttl_s <= 0:
            raise ServiceError("ttl_s must be positive")
        if len(vms) < 2:
            raise ServiceError("the measurement cache needs at least two VMs")
        self.measurer = measurer
        self.vms = list(vms)
        self.ttl_s = ttl_s
        self._rates: Dict[Tuple[str, str], float] = {}
        self._measured_at: Dict[Tuple[str, str], float] = {}
        self._campaigns = obs.Counter("repro.measure.campaigns")
        self._pairs_measured = obs.Counter("repro.measure.pairs_measured")
        self._pairs_reused = obs.Counter("repro.measure.pairs_reused")
        self._pairs_degraded = obs.Counter("repro.measure.pairs_degraded")
        self._measurement_time = obs.Counter("repro.measure.time_s")

    @property
    def stats(self) -> CacheStats:
        """This cache's counters as a :class:`CacheStats` view."""
        return CacheStats(
            campaigns=self._campaigns.count,
            pairs_measured=self._pairs_measured.count,
            pairs_reused=self._pairs_reused.count,
            pairs_degraded=self._pairs_degraded.count,
            measurement_time_s=self._measurement_time.value,
        )

    # -------------------------------------------------------------- queries
    def mesh_pairs(self) -> List[Tuple[str, str]]:
        """Every ordered pair of the covered mesh."""
        return [(s, d) for s in self.vms for d in self.vms if s != d]

    def stale_pairs(self, now: float) -> List[Tuple[str, str]]:
        """Pairs never measured or older than the TTL at ``now``.

        The comparison is strict: a pair stamped *exactly* ``ttl_s`` ago is
        still fresh — it goes stale the instant after.
        """
        return [
            pair
            for pair in self.mesh_pairs()
            if pair not in self._measured_at
            or now - self._measured_at[pair] > self.ttl_s
        ]

    def age_of(self, pair: Tuple[str, str], now: float) -> Optional[float]:
        """Age of a pair's measurement, ``None`` when never measured."""
        measured = self._measured_at.get(pair)
        return None if measured is None else now - measured

    # ------------------------------------------------------------- topology
    def remove_vm(self, vm: str) -> None:
        """Drop a VM (e.g. preempted) and every pair touching it.

        Raises:
            ServiceError: unknown VM, or fewer than two VMs would remain.
        """
        if vm not in self.vms:
            raise ServiceError(f"measurement cache does not cover VM {vm!r}")
        if len(self.vms) <= 2:
            raise ServiceError(
                f"cannot remove {vm!r}: the measurement cache needs at "
                "least two VMs"
            )
        self.vms.remove(vm)
        for pair in [p for p in self._rates if vm in p]:
            del self._rates[pair]
            self._measured_at.pop(pair, None)

    def invalidate_pairs(self, pairs: Iterable[Tuple[str, str]]) -> int:
        """Force pairs stale (their cached rate survives as a fallback).

        Used for targeted re-measurement: when a fault event degrades a
        VM's link, the service invalidates every pair touching it so the
        next refresh re-probes exactly those.  Returns how many covered
        pairs were actually invalidated.
        """
        invalidated = 0
        for pair in pairs:
            if self._measured_at.pop(pair, None) is not None:
                invalidated += 1
        return invalidated

    # -------------------------------------------------------------- refresh
    def refresh(
        self,
        now: float,
        background: Sequence[VMFlow] = (),
        force: bool = False,
        fallback: Optional[Callable[[Tuple[str, str]], Optional[float]]] = None,
    ) -> NetworkProfile:
        """Re-probe stale pairs and return the merged full-mesh profile.

        Args:
            now: current provider time (ages are computed against it).
            background: flows the campaign should see as cross traffic.
            force: re-probe the full mesh regardless of age.
            fallback: called with a pair the campaign reported as degraded
                and that has no cached rate; may return a predicted rate
                (the service passes the forecaster here).  Degraded pairs
                with a cached rate coast on it.  Either way the pair's
                timestamp is *not* advanced, so it stays stale and is
                re-probed on the next refresh.
        """
        stale = self.mesh_pairs() if force else self.stale_pairs(now)
        with obs.span(
            "service.cache_refresh", stale=len(stale), force=bool(force)
        ):
            if stale:
                fresh = self.measurer.measure(
                    self.vms, background=background, pairs=stale
                )
                for pair, rate in fresh.rates_bps.items():
                    self._rates[pair] = rate
                    self._measured_at[pair] = fresh.measured_at_pair(*pair)
                for pair in fresh.degraded_pairs:
                    if pair not in self._rates:
                        predicted = (
                            fallback(pair) if fallback is not None else None
                        )
                        self._rates[pair] = (
                            predicted if predicted is not None and predicted > 0
                            else DEGRADED_FLOOR_BPS
                        )
                self._campaigns.inc()
                self._pairs_measured.inc(len(stale) - len(fresh.degraded_pairs))
                self._pairs_degraded.inc(len(fresh.degraded_pairs))
                self._measurement_time.inc(fresh.measurement_duration_s)
            self._pairs_reused.inc(len(self.mesh_pairs()) - len(stale))
            return self.profile(now)

    def profile(self, now: float) -> NetworkProfile:
        """The cache's current view as a full-mesh :class:`NetworkProfile`."""
        missing = [p for p in self.mesh_pairs() if p not in self._rates]
        if missing:
            raise ServiceError(
                f"measurement cache has never measured {len(missing)} pair(s); "
                "call refresh() first"
            )
        return NetworkProfile(
            vms=list(self.vms),
            rates_bps=dict(self._rates),
            sharing_model="hose",
            measured_at=now,
            measurement_duration_s=0.0,
            pair_measured_at=dict(self._measured_at),
        )
