"""Choreo itself: profiling, measurement, and network-aware placement.

This package is the paper's primary contribution.  The substrates it runs on
(the network simulator, synthetic cloud providers, and workload generator)
live in :mod:`repro.net`, :mod:`repro.cloud`, and :mod:`repro.workloads`.

* :mod:`repro.core.profiler` — application profiling (§2.1).
* :mod:`repro.core.network_profile` — the measured view of the network.
* :mod:`repro.core.measurement` — packet trains, cross-traffic estimation,
  bottleneck location (§3), and the full-mesh measurement orchestrator.
* :mod:`repro.core.placement` — greedy Algorithm 1, the ILP of the Appendix,
  and the Random / Round-robin / Minimum-Machines baselines (§5, §6).
* :mod:`repro.core.choreo` — the end-to-end system (§2).
"""

from repro.core.network_profile import NetworkProfile
from repro.core.profiler import ApplicationProfiler
from repro.core.rate_model import ConnectionLoad, effective_rate
from repro.core.estimator import estimate_completion_time, machine_pair_bytes
from repro.core.placement import (
    Machine,
    ClusterState,
    Placement,
    Placer,
    GreedyPlacer,
    OptimalPlacer,
    BruteForcePlacer,
    RandomPlacer,
    RoundRobinPlacer,
    MinimumMachinesPlacer,
)
from repro.core.measurement import (
    ThroughputEstimate,
    estimate_throughput,
    mathis_throughput,
    CrossTrafficEstimate,
    estimate_cross_traffic_series,
    infer_capacity_from_two_probes,
    InterferenceResult,
    BottleneckReport,
    BottleneckLocator,
    NetworkMeasurer,
)
from repro.core.choreo import ChoreoSystem, ChoreoConfig

__all__ = [
    "NetworkProfile",
    "ApplicationProfiler",
    "ConnectionLoad",
    "effective_rate",
    "estimate_completion_time",
    "machine_pair_bytes",
    "Machine",
    "ClusterState",
    "Placement",
    "Placer",
    "GreedyPlacer",
    "OptimalPlacer",
    "BruteForcePlacer",
    "RandomPlacer",
    "RoundRobinPlacer",
    "MinimumMachinesPlacer",
    "ThroughputEstimate",
    "estimate_throughput",
    "mathis_throughput",
    "CrossTrafficEstimate",
    "estimate_cross_traffic_series",
    "infer_capacity_from_two_probes",
    "InterferenceResult",
    "BottleneckReport",
    "BottleneckLocator",
    "NetworkMeasurer",
    "ChoreoSystem",
    "ChoreoConfig",
]
