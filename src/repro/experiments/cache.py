"""Persistent content-addressed result store for experiment sweeps.

The runner memoizes repeated grid cells within one run, but that memo dies
with the process, so a grown grid re-pays every cell on every invocation.
:class:`ResultStore` keeps trial records on disk instead, keyed by
*everything that determines a trial's outcome*:

``(scenario, params, placer, placer_params, trial, seed, code_version)``

where ``code_version`` is a digest of the installed ``repro`` source tree.
Change any source file and every key changes, so a store can never serve
results computed by different code — stale cells are simply never addressed
again (and :meth:`ResultStore.prune_stale` reclaims their disk space).

Layout: one JSON file per cell, addressed by the SHA-256 of the canonical
JSON encoding of the key::

    <root>/<code_version[:16]>/<digest[:2]>/<digest>.json
    <root>/<code_version[:16]>/costs/<writer>.json   (observed-cost sidecars)

Each file carries the full key next to the record, so a hash collision (or
a corrupted file) is detected on read and treated as a miss.

The store is safe to share between concurrent writers — including N
machines mounting one network directory, which is how the ``remote``
backend's workers populate a single store.  Every write lands under a
unique temp name (pid + random token) and becomes visible only through an
atomic rename, so a partial file is never visible under a cell name and
two processes storing the same cell cannot collide mid-rename.  When both
complete, last-writer-wins is benign: the cell is content-addressed, so
both wrote records of the same deterministic trial.

Writers also accumulate *observed per-cell cost* — mean trial wall seconds
per ``(scenario, placer)`` — into per-writer sidecar files under
``costs/``.  :meth:`ResultStore.cost_table` merges all sidecars; the
remote backend's cost-aware chunker reads it so an ilp-heavy chunk does
not strand a worker behind two orders of magnitude more work than its
siblings got.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import shutil
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro import obs
from repro.experiments.results import TrialRecord

#: Schema tag written into every cell file.
CACHE_SCHEMA = "repro.experiments/cache/v1"

#: Schema tag of the per-writer observed-cost sidecar files.
COST_SCHEMA = "repro.experiments/costs/v1"

#: Directory (under the version dir) holding the cost sidecars.  Its files
#: are not cells: ``__len__`` and ``prune_stale`` exclude it.
_COSTS_DIRNAME = "costs"


# ---------------------------------------------------------------------------
# Code-version digest
# ---------------------------------------------------------------------------
def tree_digest(root: Union[str, Path]) -> str:
    """SHA-256 over the relative paths and contents of a source tree.

    Only ``*.py`` files count: bytecode caches, editor droppings, and result
    files must not invalidate the store.
    """
    root = Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the installed ``repro`` package source (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        _CODE_VERSION = tree_digest(Path(repro.__file__).resolve().parent)
    return _CODE_VERSION


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CacheKey:
    """Everything that determines one trial's outcome."""

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    placer: str
    trial: int
    seed: int
    code_version: str
    placer_params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        scenario: str,
        placer: str,
        trial: int,
        seed: int,
        params: Optional[Mapping[str, object]] = None,
        version: Optional[str] = None,
        placer_params: Optional[Mapping[str, object]] = None,
    ) -> "CacheKey":
        return cls(
            scenario=scenario,
            params=tuple(sorted((params or {}).items())),
            placer=placer,
            trial=trial,
            seed=seed,
            code_version=version if version is not None else code_version(),
            placer_params=tuple(sorted((placer_params or {}).items())),
        )

    def to_json_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "params": {key: value for key, value in self.params},
            "placer": self.placer,
            "placer_params": {key: value for key, value in self.placer_params},
            "trial": self.trial,
            "seed": self.seed,
            "code_version": self.code_version,
        }

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical JSON encoding."""
        canonical = json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":"),
            default=repr,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------
class ResultStore:
    """Disk-backed content-addressed store of trial records.

    Args:
        root: directory holding the store (created on first write).
        version: the code version new keys default to; omit for the digest
            of the installed ``repro`` tree.  Tests inject explicit tokens
            to exercise invalidation without editing source files.
    """

    def __init__(self, root: Union[str, Path], version: Optional[str] = None):
        self.root = Path(root)
        self.version = version if version is not None else code_version()
        # Typed counters (thin-viewed by :attr:`stats`; aggregated
        # process-wide by ``obs.metrics.snapshot()`` under ``repro.store.*``).
        self._hits = obs.Counter("repro.store.hits")
        self._misses = obs.Counter("repro.store.misses")
        self._stored = obs.Counter("repro.store.stored")
        self._invalidated = obs.Counter("repro.store.invalidated")
        # Per-writer identity: temp files and the cost sidecar embed it so
        # concurrent writers (other processes, other machines) never share
        # a file name.
        self._writer_token = f"{os.getpid()}-{secrets.token_hex(4)}"
        self._costs: Dict[Tuple[str, str], List[float]] = {}

    # ------------------------------------------------------------- addressing
    def key_for(
        self,
        scenario: str,
        placer: str,
        trial: int,
        seed: int,
        params: Optional[Mapping[str, object]] = None,
        placer_params: Optional[Mapping[str, object]] = None,
    ) -> CacheKey:
        """A :class:`CacheKey` bound to this store's code version."""
        return CacheKey.make(
            scenario, placer, trial, seed, params=params, version=self.version,
            placer_params=placer_params,
        )

    def _path(self, key: CacheKey) -> Path:
        digest = key.digest()
        return self.root / key.code_version[:16] / digest[:2] / f"{digest}.json"

    # ---------------------------------------------------------------- access
    def get(self, key: CacheKey) -> Optional[TrialRecord]:
        """The stored record for ``key``, or ``None`` (counted as a miss).

        A cell file that fails to parse, carries the wrong schema, or whose
        embedded key disagrees with ``key`` (hash collision) is removed and
        counted under ``invalidated``.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self._misses.inc()
            return None
        # ValueError covers JSONDecodeError and UnicodeDecodeError alike.
        except (OSError, ValueError):
            self._invalidate(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != json.loads(json.dumps(key.to_json_dict(), default=repr))
        ):
            self._invalidate(path)
            return None
        try:
            record = TrialRecord(**payload["record"])
        except (KeyError, TypeError):
            self._invalidate(path)
            return None
        self._hits.inc()
        return record

    def put(self, key: CacheKey, record: TrialRecord) -> Path:
        """Store ``record`` under ``key`` (atomic write-then-rename).

        Concurrent-writer safe: the temp name embeds this writer's pid and
        a random token (``mkstemp``'s ``O_EXCL`` guarantee does not hold on
        all network filesystems, unique names do not need it), the bytes
        are fsynced before the rename so a machine crash cannot leave a
        renamed-but-empty cell, and the rename is atomic so readers only
        ever see complete cells.  Two writers racing the same cell is a
        benign last-writer-wins: the key determines the record.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key.to_json_dict(),
            "record": asdict(record),
        }
        text = json.dumps(payload, sort_keys=True, default=repr)
        tmp_path = path.with_name(f"{path.name}.{self._writer_token}.tmp")
        try:
            with open(tmp_path, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._stored.inc()
        self._record_cost(key, record)
        return path

    def _invalidate(self, path: Path) -> None:
        self._misses.inc()
        self._invalidated.inc()
        try:
            path.unlink()
        except OSError:
            pass

    # -------------------------------------------------------------- cost model
    def _record_cost(self, key: CacheKey, record: TrialRecord) -> None:
        wall = getattr(record, "trial_wall_s", None)
        if not wall or wall <= 0:
            return
        entry = self._costs.setdefault((key.scenario, key.placer), [0, 0.0])
        entry[0] += 1
        entry[1] += float(wall)

    def flush_costs(self) -> Optional[Path]:
        """Persist this writer's observed per-cell costs (atomic rename).

        Each writer owns exactly one sidecar file (named by its writer
        token) under ``<root>/<version[:16]>/costs/``, so N concurrent
        writers never contend and no locking is needed;
        :meth:`cost_table` merges them all.  Returns the sidecar path, or
        ``None`` while nothing has been observed.
        """
        if not self._costs:
            return None
        cost_dir = self.root / self.version[:16] / _COSTS_DIRNAME
        cost_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": COST_SCHEMA,
            "costs": [
                {
                    "scenario": scenario,
                    "placer": placer,
                    "count": count,
                    "total_wall_s": total,
                }
                for (scenario, placer), (count, total) in sorted(
                    self._costs.items()
                )
            ],
        }
        path = cost_dir / f"{self._writer_token}.json"
        tmp_path = path.with_name(path.name + ".tmp")
        tmp_path.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp_path, path)
        return path

    def cost_table(self) -> Dict[Tuple[str, str], float]:
        """Mean observed trial wall seconds per ``(scenario, placer)`` cell.

        Merged across every writer's flushed sidecar; unreadable or
        foreign files are skipped, and the table is simply empty until
        some writer has flushed.  This is what the remote backend's
        cost-aware chunker weighs chunks with.
        """
        cost_dir = self.root / self.version[:16] / _COSTS_DIRNAME
        if not cost_dir.is_dir():
            return {}
        merged: Dict[Tuple[str, str], List[float]] = {}
        for path in sorted(cost_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict) or payload.get("schema") != COST_SCHEMA:
                continue
            for row in payload.get("costs", ()):
                try:
                    cell = (str(row["scenario"]), str(row["placer"]))
                    count = int(row["count"])
                    total = float(row["total_wall_s"])
                except (KeyError, TypeError, ValueError):
                    continue
                if count <= 0:
                    continue
                entry = merged.setdefault(cell, [0, 0.0])
                entry[0] += count
                entry[1] += total
        return {cell: total / count for cell, (count, total) in merged.items()}

    # ------------------------------------------------------------ maintenance
    def prune_stale(self) -> int:
        """Drop every cell written under a different code version.

        This is the store's eviction policy: old-version cells can never be
        addressed again (their keys embed the old digest), so reclaiming
        them is always safe.  Returns the number of cells removed.
        """
        removed = 0
        current = self.version[:16]
        if not self.root.is_dir():
            return 0
        for version_dir in self.root.iterdir():
            if not version_dir.is_dir() or version_dir.name == current:
                continue
            removed += sum(1 for _ in self._cell_files(version_dir))
            # rmtree, not per-cell unlink: stale dirs may also hold .tmp
            # droppings from writes interrupted mid-put.
            shutil.rmtree(version_dir, ignore_errors=True)
        self._invalidated.inc(removed)
        return removed

    # ------------------------------------------------------------- inspection
    @property
    def stats(self) -> Dict[str, int]:
        """Counters: ``hits``, ``misses``, ``stored``, ``invalidated``.

        A thin view over this store's :class:`repro.obs.Counter`
        instruments (process-wide aggregates live in
        ``obs.metrics.snapshot()`` under ``repro.store.*``).
        """
        return {
            "hits": self._hits.count,
            "misses": self._misses.count,
            "stored": self._stored.count,
            "invalidated": self._invalidated.count,
        }

    @staticmethod
    def _cell_files(version_dir: Path):
        """Cell files under one version dir (cost sidecars are not cells)."""
        return (
            path
            for path in version_dir.rglob("*.json")
            if path.parent.name != _COSTS_DIRNAME
        )

    def __len__(self) -> int:
        """Cells stored under the *current* code version."""
        version_dir = self.root / self.version[:16]
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in self._cell_files(version_dir))

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, "
            f"version={self.version[:16]!r}, cells={len(self)})"
        )
