"""Optimal task placement (the paper's Appendix).

The Appendix formulates completion-time-minimising placement as a quadratic
program over the assignment matrix ``X`` and linearises it by introducing a
variable ``z_imjn`` for each product ``X_im * X_jn``.  We implement that
linearised program with ``scipy.optimize.milp`` (the HiGHS solver), using the
standard three-inequality product linearisation (``z <= X_im``,
``z <= X_jn``, ``z >= X_im + X_jn - 1``), which is equivalent at the optimum
and more robust than the paper's degree-counting equality.

Two bottleneck ("sharing") models are supported, matching
:func:`repro.core.estimator.estimate_completion_time`:

* ``"hose"`` — flows leaving a machine share its egress cap (what §4.4
  finds on EC2/Rackspace; the Appendix notes the hose model corresponds to
  ``S_{mi,mj} = 1``);
* ``"pipe"`` — every ordered machine pair is its own bottleneck (the
  Appendix's default when the shared-bottleneck matrix ``S`` is unknown).

:class:`BruteForcePlacer` enumerates every feasible assignment and is used
to validate the MILP on tiny instances.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.core.estimator import estimate_completion_time
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer, validate_placement
from repro.errors import PlacementError
from repro.units import BITS_PER_BYTE
from repro.workloads.application import Application

_EPS = 1e-9


class OptimalPlacer(Placer):
    """Solve the Appendix's linearised placement program with HiGHS.

    Args:
        model: ``"hose"`` or ``"pipe"`` bottleneck model.
        time_limit_s: solver time limit; the best incumbent is used if the
            limit is reached but a feasible solution exists.
        mip_rel_gap: relative MIP gap at which the solver may stop.
    """

    name = "choreo-optimal"

    def __init__(
        self,
        model: str = "hose",
        time_limit_s: float = 60.0,
        mip_rel_gap: float = 1e-4,
    ):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        if time_limit_s <= 0:
            raise PlacementError("time_limit_s must be positive")
        self.model = model
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap

    # -------------------------------------------------------------- solving
    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the optimal placer needs a network profile")
        self.check_feasible(app, cluster)

        tasks = app.task_names
        machines = cluster.machine_names()
        n_tasks, n_machines = len(tasks), len(machines)
        task_index = {t: i for i, t in enumerate(tasks)}

        # Communicating unordered task pairs and their directed volumes.
        volumes: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for src, dst, volume in app.transfers():
            i, j = task_index[src], task_index[dst]
            lo, hi = (i, j) if i < j else (j, i)
            fwd, rev = volumes.get((lo, hi), (0.0, 0.0))
            if i < j:
                fwd += volume
            else:
                rev += volume
            volumes[(lo, hi)] = (fwd, rev)
        pairs = sorted(volumes)

        n_x = n_tasks * n_machines
        n_z = len(pairs) * n_machines * n_machines
        n_vars = n_x + n_z + 1  # + the completion-time variable.
        z_col = n_vars - 1

        def x_col(task: int, machine: int) -> int:
            return task * n_machines + machine

        def pair_col(pair_idx: int, machine_a: int, machine_b: int) -> int:
            return n_x + (pair_idx * n_machines + machine_a) * n_machines + machine_b

        rows: List[Tuple[Dict[int, float], float, float]] = []  # (coeffs, lb, ub)

        # Each task is placed on exactly one machine.
        for t in range(n_tasks):
            coeffs = {x_col(t, m): 1.0 for m in range(n_machines)}
            rows.append((coeffs, 1.0, 1.0))

        # CPU capacity per machine.
        for m, machine in enumerate(machines):
            coeffs = {
                x_col(t, m): app.cpu_demand(tasks[t]) for t in range(n_tasks)
            }
            rows.append((coeffs, -np.inf, cluster.available_cpu(machine)))

        # Product linearisation for every communicating pair.
        for p, (i, j) in enumerate(pairs):
            for a in range(n_machines):
                for b in range(n_machines):
                    zc = pair_col(p, a, b)
                    rows.append(({zc: 1.0, x_col(i, a): -1.0}, -np.inf, 0.0))
                    rows.append(({zc: 1.0, x_col(j, b): -1.0}, -np.inf, 0.0))
                    rows.append(
                        ({x_col(i, a): 1.0, x_col(j, b): 1.0, zc: -1.0}, -np.inf, 1.0)
                    )

        # Completion-time (bottleneck) constraints.
        intra_rate = profile.intra_vm_rate_bps
        if self.model == "hose":
            for a, machine_a in enumerate(machines):
                rate = profile.hose_rate(machine_a)
                if math.isinf(rate):
                    continue
                coeffs: Dict[int, float] = {z_col: -1.0}
                for p, (i, j) in enumerate(pairs):
                    fwd, rev = volumes[(i, j)]
                    for b in range(n_machines):
                        if b == a:
                            continue
                        if fwd > 0:
                            col = pair_col(p, a, b)
                            coeffs[col] = coeffs.get(col, 0.0) + fwd * BITS_PER_BYTE / rate
                        if rev > 0:
                            col = pair_col(p, b, a)
                            coeffs[col] = coeffs.get(col, 0.0) + rev * BITS_PER_BYTE / rate
                rows.append((coeffs, -np.inf, 0.0))
        else:  # pipe
            for a, machine_a in enumerate(machines):
                for b, machine_b in enumerate(machines):
                    if a == b:
                        continue
                    rate = profile.rate(machine_a, machine_b)
                    if math.isinf(rate):
                        continue
                    coeffs = {z_col: -1.0}
                    for p, (i, j) in enumerate(pairs):
                        fwd, rev = volumes[(i, j)]
                        if fwd > 0:
                            col = pair_col(p, a, b)
                            coeffs[col] = coeffs.get(col, 0.0) + fwd * BITS_PER_BYTE / rate
                        if rev > 0:
                            col = pair_col(p, b, a)
                            coeffs[col] = coeffs.get(col, 0.0) + rev * BITS_PER_BYTE / rate
                    rows.append((coeffs, -np.inf, 0.0))

        # Intra-machine transfers (only matter when the intra-VM rate is finite).
        if not math.isinf(intra_rate):
            for a in range(n_machines):
                coeffs = {z_col: -1.0}
                for p, (i, j) in enumerate(pairs):
                    fwd, rev = volumes[(i, j)]
                    col = pair_col(p, a, a)
                    total = (fwd + rev) * BITS_PER_BYTE / intra_rate
                    if total > 0:
                        coeffs[col] = coeffs.get(col, 0.0) + total
                rows.append((coeffs, -np.inf, 0.0))

        # Assemble the sparse constraint matrix.
        data, row_idx, col_idx, lbs, ubs = [], [], [], [], []
        for r, (coeffs, lb, ub) in enumerate(rows):
            for col, value in coeffs.items():
                row_idx.append(r)
                col_idx.append(col)
                data.append(value)
            lbs.append(lb)
            ubs.append(ub)
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), n_vars)
        )
        constraints = optimize.LinearConstraint(matrix, lbs, ubs)

        objective = np.zeros(n_vars)
        objective[z_col] = 1.0
        integrality = np.ones(n_vars)
        integrality[z_col] = 0
        bounds = optimize.Bounds(
            lb=np.zeros(n_vars),
            ub=np.concatenate([np.ones(n_vars - 1), [np.inf]]),
        )

        result = optimize.milp(
            c=objective,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options={
                "time_limit": self.time_limit_s,
                "mip_rel_gap": self.mip_rel_gap,
                "disp": False,
            },
        )
        if result.x is None:
            raise PlacementError(
                f"optimal placement failed for {app.name!r}: {result.message}"
            )

        assignments: Dict[str, str] = {}
        for t, task in enumerate(tasks):
            values = [result.x[x_col(t, m)] for m in range(n_machines)]
            assignments[task] = machines[int(np.argmax(values))]
        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement


class BruteForcePlacer(Placer):
    """Enumerate every CPU-feasible assignment and keep the best one.

    Only suitable for tiny instances (``machines ** tasks`` assignments are
    enumerated); used to validate the MILP formulation in tests.
    """

    name = "brute-force"

    def __init__(self, model: str = "hose", max_assignments: int = 2_000_000):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        self.model = model
        self.max_assignments = max_assignments

    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the brute-force placer needs a network profile")
        self.check_feasible(app, cluster)
        tasks = app.task_names
        machines = cluster.machine_names()
        total = len(machines) ** len(tasks)
        if total > self.max_assignments:
            raise PlacementError(
                f"brute force would enumerate {total} assignments "
                f"(limit {self.max_assignments})"
            )

        best_assignment: Optional[Dict[str, str]] = None
        best_time = math.inf
        available = {m: cluster.available_cpu(m) for m in machines}
        for combo in itertools.product(machines, repeat=len(tasks)):
            usage: Dict[str, float] = {}
            feasible = True
            for task, machine in zip(tasks, combo):
                usage[machine] = usage.get(machine, 0.0) + app.cpu_demand(task)
                if usage[machine] > available[machine] + _EPS:
                    feasible = False
                    break
            if not feasible:
                continue
            assignment = dict(zip(tasks, combo))
            completion = estimate_completion_time(
                assignment, app, profile, model=self.model
            )
            if completion < best_time - _EPS:
                best_time = completion
                best_assignment = assignment
        if best_assignment is None:
            raise PlacementError(
                f"no CPU-feasible assignment exists for application {app.name!r}"
            )
        placement = Placement(app_name=app.name, assignments=best_assignment)
        validate_placement(placement, app, cluster)
        return placement
