"""Indexed, incremental max-min fair allocation engine.

:func:`repro.net.fairness.max_min_allocation` is the reference
progressive-filling implementation: it receives plain string-keyed mappings,
rebuilds its ``link -> members`` index on every call, and intersects member
sets against the unfrozen set at every water-filling step.  That is fine for
a one-off allocation, but the fluid simulator re-solves after *every* event
(a flow starting, finishing, or being switched off), so almost all of that
work is repeated with a nearly identical flow set.

:class:`IncrementalAllocator` keeps the state the solver needs *between*
solves:

* link ids and flow ids are interned to dense integer slots once;
* per-link member sets, member counts, and capacities live in flat lists
  indexed by those slots;
* :meth:`add_flow` / :meth:`remove_flow` apply deltas in O(path length);
* :meth:`solve` runs progressive filling over integer indices (counters
  instead of set intersections, a lazy heap for flow caps) and caches its
  result until the flow set changes again.

The solver performs the *same* floating-point operations in the same
per-flow order as the reference implementation, so its rates are
bit-identical on any instance where the reference's own (set-iteration-
order-dependent) tie-breaks do not matter — ``tests/test_hotpath.py``
checks agreement within 1e-9 on randomized instances, and
``python -m repro.bench`` re-checks it on every benchmark run.

Above a size threshold (see :func:`set_vector_thresholds`) :meth:`solve`
switches to an **array-backed water-filling path**: link capacities,
remaining headroom, and unfrozen-member counts live in NumPy vectors
indexed by the interned link slots, each flow's path is a cached int
index array (the rows of a CSR-style flow×link incidence), and the
per-round bottleneck search becomes one masked divide plus ``argmin``.
Because ``argmin`` breaks ties on the lowest index — exactly the
``(value, index)`` order of the scalar path's heaps — and the per-flow
freeze step performs the same subtract-then-clamp in the same dtype, the
vector path is bit-identical to the scalar path (and hence to the
reference, with the caveat above).  Paths that repeat a link fall back
to the scalar solver, which handles them exactly.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.net.fairness import FlowDemand

__all__ = [
    "IncrementalAllocator",
    "set_vector_thresholds",
    "vector_thresholds",
]

#: Allocator modes accepted by :class:`IncrementalAllocator`.
_MODES = ("auto", "scalar", "vector")

# Instance sizes below which the vectorised solve is not worth its NumPy
# dispatch overhead.  Both must be met for ``mode="auto"`` to vectorise:
# small-but-wide or tall-but-narrow instances stay on the scalar path.
_VECTOR_MIN_FLOWS = 256
_VECTOR_MIN_LINKS = 256


def set_vector_thresholds(
    flows: Optional[int] = None, links: Optional[int] = None
) -> Tuple[int, int]:
    """Set the ``mode="auto"`` vectorisation thresholds; returns the old pair.

    An allocator in ``"auto"`` mode (the default) uses the array-backed
    solve only when it holds at least ``flows`` routed flows *and* its
    link universe has at least ``links`` links.  Pass ``0`` to always
    vectorise, or a huge value to never do so.  Tests and benchmarks use
    this to force one path or the other without constructing allocators
    differently.
    """
    global _VECTOR_MIN_FLOWS, _VECTOR_MIN_LINKS
    previous = (_VECTOR_MIN_FLOWS, _VECTOR_MIN_LINKS)
    if flows is not None:
        if flows < 0:
            raise SimulationError("vector flow threshold must be >= 0")
        _VECTOR_MIN_FLOWS = int(flows)
    if links is not None:
        if links < 0:
            raise SimulationError("vector link threshold must be >= 0")
        _VECTOR_MIN_LINKS = int(links)
    return previous


def vector_thresholds() -> Tuple[int, int]:
    """Current ``(flows, links)`` auto-vectorisation thresholds."""
    return (_VECTOR_MIN_FLOWS, _VECTOR_MIN_LINKS)


class IncrementalAllocator:
    """Max-min fair allocator with O(path) flow add/remove deltas.

    Args:
        capacities: mapping of link id to capacity in bits/second.  The link
            universe is fixed at construction; flows may only reference these
            links.
        mode: ``"auto"`` (default) picks the array-backed solve above the
            :func:`set_vector_thresholds` sizes, ``"scalar"`` always runs
            the heap-based solve, ``"vector"`` always runs the array-backed
            one.  All three produce bit-identical rates; flows whose path
            repeats a link force the scalar solve regardless of mode.
    """

    def __init__(
        self, capacities: Mapping[str, float], mode: str = "auto"
    ) -> None:
        if mode not in _MODES:
            raise SimulationError(
                f"unknown allocator mode {mode!r}; expected one of {_MODES}"
            )
        self._mode = mode
        self._link_ids: List[str] = []
        self._link_index: Dict[str, int] = {}
        self._capacity: List[float] = []
        for link_id, cap in capacities.items():
            self._link_index[link_id] = len(self._link_ids)
            self._link_ids.append(link_id)
            self._capacity.append(float(cap))
        # Capacity vector for the array-backed solve, built on first use so
        # scalar-only allocators pay nothing.
        self._capacity_np: Optional[np.ndarray] = None
        # Flow slots: a free-list keeps slot indices dense under churn.
        self._flow_slot: Dict[str, int] = {}
        self._slot_name: List[str] = []
        self._slot_links: List[Tuple[int, ...]] = []  # with duplicates, if any
        self._slot_unique_links: List[Tuple[int, ...]] = []
        # Per-slot int index arrays (the CSR rows of the flow×link
        # incidence), materialised lazily by the vector solve and reused
        # across solves; a slot's row is dropped when the slot is freed.
        self._slot_links_np: List[Optional[np.ndarray]] = []
        self._slot_cap: List[Optional[float]] = []
        self._free_slots: List[int] = []
        # Per-link membership (flow slots currently crossing the link) and a
        # refcount of links in use, so solves touch only occupied links.
        self._members: List[Set[int]] = [set() for _ in self._link_ids]
        self._link_use: Dict[int, int] = {}
        # Flows whose path repeats a link break the share-heap monotonicity
        # (freezing subtracts the level once per occurrence, so a share can
        # shrink); while any such flow is registered, solve() selects
        # bottlenecks by linear scan instead.
        self._dup_link_flows = 0
        self._solution: Optional[Dict[str, float]] = None

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._flow_slot)

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._flow_slot

    def flow_ids(self) -> List[str]:
        """Ids of the flows currently registered."""
        return list(self._flow_slot)

    # ------------------------------------------------------------- mutation
    def add_flow(
        self,
        flow_id: str,
        links: Sequence[str],
        max_rate: Optional[float] = None,
    ) -> None:
        """Register a flow crossing ``links`` with an optional rate cap.

        Raises:
            SimulationError: on duplicate flow ids or unknown links.
        """
        if flow_id in self._flow_slot:
            raise SimulationError(f"duplicate flow id {flow_id!r}")
        indexed: List[int] = []
        for link_id in links:
            index = self._link_index.get(link_id)
            if index is None:
                raise SimulationError(
                    f"flow {flow_id!r} references unknown link {link_id!r}"
                )
            indexed.append(index)
        link_tuple = tuple(indexed)
        # The reference subtracts the frozen level once per *occurrence* but
        # counts each flow once per link, so keep both views when a path
        # repeats a link (it normally never does).
        unique = (
            link_tuple
            if len(set(link_tuple)) == len(link_tuple)
            else tuple(dict.fromkeys(link_tuple))
        )
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_name[slot] = flow_id
            self._slot_links[slot] = link_tuple
            self._slot_unique_links[slot] = unique
            self._slot_links_np[slot] = None
            self._slot_cap[slot] = max_rate
        else:
            slot = len(self._slot_name)
            self._slot_name.append(flow_id)
            self._slot_links.append(link_tuple)
            self._slot_unique_links.append(unique)
            self._slot_links_np.append(None)
            self._slot_cap.append(max_rate)
        self._flow_slot[flow_id] = slot
        if unique is not link_tuple:
            self._dup_link_flows += 1
        for index in unique:
            self._members[index].add(slot)
            self._link_use[index] = self._link_use.get(index, 0) + 1
        self._solution = None

    def add_demand(self, flow_id: str, demand: FlowDemand) -> None:
        """Register a flow from a :class:`~repro.net.fairness.FlowDemand`."""
        self.add_flow(flow_id, demand.links, demand.max_rate)

    def remove_flow(self, flow_id: str) -> None:
        """Forget a flow previously registered with :meth:`add_flow`."""
        slot = self._flow_slot.pop(flow_id, None)
        if slot is None:
            raise SimulationError(f"unknown flow {flow_id!r}")
        if self._slot_unique_links[slot] is not self._slot_links[slot]:
            self._dup_link_flows -= 1
        for index in self._slot_unique_links[slot]:
            self._members[index].discard(slot)
            left = self._link_use[index] - 1
            if left:
                self._link_use[index] = left
            else:
                del self._link_use[index]
        self._slot_name[slot] = ""
        self._slot_links[slot] = ()
        self._slot_unique_links[slot] = ()
        self._slot_links_np[slot] = None
        self._slot_cap[slot] = None
        self._free_slots.append(slot)
        self._solution = None

    def clear(self) -> None:
        """Remove every flow (capacities are kept)."""
        self._flow_slot.clear()
        self._slot_name.clear()
        self._slot_links.clear()
        self._slot_unique_links.clear()
        self._slot_links_np.clear()
        self._slot_cap.clear()
        self._free_slots.clear()
        for members in self._members:
            members.clear()
        self._link_use.clear()
        self._dup_link_flows = 0
        self._solution = None

    # --------------------------------------------------------------- solve
    @property
    def mode(self) -> str:
        """The allocator's configured mode (``auto``/``scalar``/``vector``)."""
        return self._mode

    def uses_vector_path(self) -> bool:
        """Whether the next :meth:`solve` will take the array-backed path."""
        if self._dup_link_flows:
            # The scalar solver is the only one that models a path crossing
            # the same link twice (one count, two capacity drains).
            return False
        if self._mode == "scalar":
            return False
        if self._mode == "vector":
            return True
        return (
            len(self._flow_slot) >= _VECTOR_MIN_FLOWS
            and len(self._link_ids) >= _VECTOR_MIN_LINKS
        )

    def solve(self) -> Dict[str, float]:
        """Max-min fair rates for the registered flows (cached between edits).

        Returns the same mapping a reference
        :func:`~repro.net.fairness.max_min_allocation` call over the current
        flow set would; callers must treat it as read-only.  The scalar and
        array-backed paths produce bit-identical mappings, so which one ran
        is unobservable from the result.
        """
        if self._solution is not None:
            return self._solution
        if self.uses_vector_path():
            self._solution = self._solve_vector()
        else:
            self._solution = self._solve_scalar()
        return self._solution

    def _solve_scalar(self) -> Dict[str, float]:
        """Heap-based progressive filling over interned int slots."""
        rates: Dict[str, float] = {}
        unfrozen: List[int] = []
        for flow_id, slot in self._flow_slot.items():
            if self._slot_links[slot]:
                unfrozen.append(slot)
            else:
                # Flows that traverse no links are only limited by their cap.
                cap = self._slot_cap[slot]
                rates[flow_id] = math.inf if cap is None else cap

        # Working copies for only the links currently in use.
        counts: Dict[int, int] = dict(self._link_use)
        capacity = self._capacity
        remaining: Dict[int, float] = {
            index: capacity[index] for index in counts
        }

        frozen = bytearray(len(self._slot_name))
        cap_heap: List[Tuple[float, int]] = [
            (self._slot_cap[slot], slot)
            for slot in unfrozen
            if self._slot_cap[slot] is not None
        ]
        heapq.heapify(cap_heap)
        # Lazy heap of per-link equal shares.  During progressive filling a
        # link's share never decreases (each frozen flow removes at most one
        # share's worth of capacity and one member), so stale entries are
        # safe: they pop early, get corrected in place, and re-sift.  A flow
        # that crosses the same link twice voids that invariant (freezing it
        # drains two shares from one member), so fall back to scanning.
        use_share_heap = self._dup_link_flows == 0
        share_heap: List[Tuple[float, int]] = []
        if use_share_heap:
            share_heap = [
                (remaining[index] / count, index)
                for index, count in counts.items()
            ]
            heapq.heapify(share_heap)

        slot_name = self._slot_name
        slot_links = self._slot_links
        slot_unique = self._slot_unique_links
        n_left = len(unfrozen)
        while n_left:
            # The next "water level" is the smallest of: the equal share on
            # any link carrying unfrozen flows, and the smallest unfrozen cap.
            bottleneck_share = math.inf
            bottleneck_link = -1
            if use_share_heap:
                while share_heap:
                    share, index = share_heap[0]
                    count = counts[index]
                    if count <= 0:
                        heapq.heappop(share_heap)
                        continue
                    current = remaining[index] / count
                    if current > share:  # stale entry: correct and re-sift
                        heapq.heapreplace(share_heap, (current, index))
                        continue
                    bottleneck_share = current
                    bottleneck_link = index
                    break
            else:
                for index, count in counts.items():
                    if count <= 0:
                        continue
                    share = remaining[index] / count
                    if share < bottleneck_share:
                        bottleneck_share = share
                        bottleneck_link = index

            while cap_heap and frozen[cap_heap[0][1]]:
                heapq.heappop(cap_heap)

            if cap_heap and cap_heap[0][0] <= bottleneck_share:
                # A flow hits its own cap before any link saturates.
                level, capped_slot = heapq.heappop(cap_heap)
                to_freeze = [capped_slot]
            elif bottleneck_link >= 0:
                if use_share_heap:
                    # Freezing drains the bottleneck link, so drop its entry.
                    heapq.heappop(share_heap)
                level = bottleneck_share
                to_freeze = [
                    slot
                    for slot in self._members[bottleneck_link]
                    if not frozen[slot]
                ]
            else:
                # Unfrozen flows remain but nothing constrains them.
                for slot in unfrozen:
                    if not frozen[slot]:
                        rates[slot_name[slot]] = math.inf
                break

            for slot in to_freeze:
                frozen[slot] = 1
                n_left -= 1
                rates[slot_name[slot]] = level
                for index in slot_links[slot]:
                    left = remaining[index] - level
                    remaining[index] = left if left > 0.0 else 0.0
                for index in slot_unique[slot]:
                    counts[index] -= 1

        return rates

    def _slot_row(self, slot: int) -> np.ndarray:
        """The slot's link index array (a CSR incidence row), cached."""
        row = self._slot_links_np[slot]
        if row is None:
            links = self._slot_links[slot]
            row = np.fromiter(links, dtype=np.intp, count=len(links))
            self._slot_links_np[slot] = row
        return row

    def _solve_vector(self) -> Dict[str, float]:
        """Array-backed water-filling over link capacity vectors.

        Per round: one masked divide + ``argmin`` finds the bottleneck link
        (ties break on the lowest link index, matching the scalar heaps'
        ``(share, index)`` order); freezing a flow subtracts the level from
        ``remaining`` and decrements ``counts`` through the flow's cached
        index row.  Flow caps keep the scalar path's lazy heap — caps are
        per-flow, so there is nothing to vectorise across links.  Only
        called when no registered path repeats a link.
        """
        if self._capacity_np is None:
            self._capacity_np = np.asarray(self._capacity, dtype=np.float64)

        rates: Dict[str, float] = {}
        unfrozen: List[int] = []
        for flow_id, slot in self._flow_slot.items():
            if self._slot_links[slot]:
                unfrozen.append(slot)
            else:
                # Flows that traverse no links are only limited by their cap.
                cap = self._slot_cap[slot]
                rates[flow_id] = math.inf if cap is None else cap

        n_links = len(self._capacity)
        counts = np.zeros(n_links, dtype=np.int64)
        n_used = len(self._link_use)
        if n_used:
            used = np.fromiter(
                self._link_use.keys(), dtype=np.intp, count=n_used
            )
            counts[used] = np.fromiter(
                self._link_use.values(), dtype=np.int64, count=n_used
            )
        remaining = self._capacity_np.copy()
        shares = np.empty(n_links, dtype=np.float64)
        active = np.empty(n_links, dtype=bool)

        frozen = bytearray(len(self._slot_name))
        cap_heap: List[Tuple[float, int]] = [
            (self._slot_cap[slot], slot)
            for slot in unfrozen
            if self._slot_cap[slot] is not None
        ]
        heapq.heapify(cap_heap)

        slot_name = self._slot_name
        inf = math.inf
        n_left = len(unfrozen)
        while n_left:
            # Bottleneck search: equal share of every link still carrying
            # unfrozen flows, in one vector divide; links with no unfrozen
            # members are masked to +inf.
            np.greater(counts, 0, out=active)
            shares.fill(inf)
            np.divide(remaining, counts, out=shares, where=active)
            bottleneck_link = int(np.argmin(shares))
            bottleneck_share = float(shares[bottleneck_link])

            while cap_heap and frozen[cap_heap[0][1]]:
                heapq.heappop(cap_heap)

            if cap_heap and cap_heap[0][0] <= bottleneck_share:
                # A flow hits its own cap before any link saturates.
                level, capped_slot = heapq.heappop(cap_heap)
                to_freeze = [capped_slot]
            elif bottleneck_share < inf:
                level = bottleneck_share
                to_freeze = [
                    slot
                    for slot in self._members[bottleneck_link]
                    if not frozen[slot]
                ]
            else:
                # Unfrozen flows remain but nothing constrains them.
                for slot in unfrozen:
                    if not frozen[slot]:
                        rates[slot_name[slot]] = inf
                break

            for slot in to_freeze:
                frozen[slot] = 1
                n_left -= 1
                rates[slot_name[slot]] = level
                row = self._slot_row(slot)
                segment = remaining[row] - level
                np.maximum(segment, 0.0, out=segment)
                remaining[row] = segment
                counts[row] -= 1

        return rates
