"""Trial execution: the unit of work every execution backend runs.

One *trial* re-creates a scenario from a derived seed, runs one placer on
it, executes the resulting placement on the provider's fluid simulator, and
records the timings into a :class:`~repro.experiments.results.TrialRecord`.
The per-trial seed depends only on ``(base_seed, scenario, trial)`` — not on
the placer — so every placer faces the *same* ground-truth network and
applications and per-trial speedups are paired comparisons, as in §6.

Everything a trial needs is named (scenario name, placer name, seed), which
is what makes a :class:`WorkItem` picklable for process pools and
JSON-serialisable for subprocess (and, eventually, multi-machine) backends.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.errors import ExperimentError, ReproError
from repro.experiments.placers import get_placer
from repro.experiments.results import TrialRecord
from repro.experiments.scenarios import (
    MODE_SEQUENCE,
    MODE_SERVICE,
    ScenarioInstance,
    ServiceSettings,
    get_scenario,
)
from repro.runtime.executor import run_applications
from repro.runtime.sequence import SequentialPlacementRunner


def trial_seed(base_seed: int, scenario_name: str, trial: int) -> int:
    """Deterministic per-trial seed, independent of the placer.

    Uses CRC32 (stable across processes and Python versions, unlike
    ``hash``) so parallel workers derive identical seeds.
    """
    key = f"{base_seed}:{scenario_name}:{trial}".encode()
    return zlib.crc32(key)


def run_trial(
    scenario_name: str,
    placer_name: str,
    trial: int,
    base_seed: int,
    scenario_params: Optional[Mapping[str, object]] = None,
    placer_params: Optional[Mapping[str, object]] = None,
    fail_fast: bool = False,
) -> TrialRecord:
    """Run one grid cell and return its record.

    By default the sweep keeps going: *any* raising trial — a library
    failure (:class:`ReproError`) or a genuine bug — is captured into the
    record with its exception string, so one bad cell cannot sink hours of
    sibling trials; the result surfaces them as ``dropped_trials`` and the
    CLI exits nonzero.  ``fail_fast=True`` restores the old abort-on-raise
    behaviour for debugging.
    """
    seed = trial_seed(base_seed, scenario_name, trial)
    record = TrialRecord(
        scenario=scenario_name, placer=placer_name, trial=trial, seed=seed
    )
    started = time.perf_counter()
    try:
        spec = get_scenario(scenario_name)
        instance = spec.build(seed=seed, **dict(scenario_params or {}))
        record.n_apps = len(instance.apps)
        record.n_vms = len(instance.cluster.machines)
        if instance.mode == MODE_SEQUENCE:
            _run_sequence_trial(instance, placer_name, seed, record, placer_params)
        elif instance.mode == MODE_SERVICE:
            _run_service_trial(instance, placer_name, seed, record, placer_params)
        else:
            _run_batch_trial(instance, placer_name, seed, record, placer_params)
    except Exception as exc:
        if fail_fast and not isinstance(exc, ReproError):
            raise
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
    record.trial_wall_s = time.perf_counter() - started
    return record


@dataclass(frozen=True)
class WorkItem:
    """One picklable, JSON-serialisable grid cell for an execution backend.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so work
    items are hashable and two items describing the same cell compare equal
    regardless of mapping order.

    ``fail_fast`` rides along on the wire so remote workers honour the
    runner's error policy, but it does not change *what* is computed —
    cache and memo keys deliberately exclude it.
    """

    scenario: str
    placer: str
    trial: int
    base_seed: int
    params: Tuple[Tuple[str, object], ...] = ()
    placer_params: Tuple[Tuple[str, object], ...] = ()
    fail_fast: bool = False

    @classmethod
    def make(
        cls,
        scenario: str,
        placer: str,
        trial: int,
        base_seed: int,
        params: Optional[Mapping[str, object]] = None,
        placer_params: Optional[Mapping[str, object]] = None,
        fail_fast: bool = False,
    ) -> "WorkItem":
        return cls(
            scenario=scenario,
            placer=placer,
            trial=trial,
            base_seed=base_seed,
            params=tuple(sorted((params or {}).items())),
            placer_params=tuple(sorted((placer_params or {}).items())),
            fail_fast=fail_fast,
        )

    @property
    def seed(self) -> int:
        return trial_seed(self.base_seed, self.scenario, self.trial)

    @property
    def trial_key(self) -> Tuple:
        """Identity of the simulation this item runs (``fail_fast`` aside).

        Mirrors the runner's memo key and the cache key's payload: two
        items with equal ``trial_key`` compute the identical record, which
        is what lets the remote backend discard duplicate records when a
        straggler's trials were re-dispatched and both workers finished.
        """
        return (
            self.scenario, self.params, self.placer, self.placer_params,
            self.trial, self.seed,
        )

    @property
    def cost_key(self) -> Tuple[str, str]:
        """The cost-model cell this item bills to.

        Observed trial wall clock clusters by ``(scenario, placer)`` — an
        ilp cell costs orders of magnitude more than a random-placer cell
        on the same scenario — so that pair is the granularity the result
        store's cost table and the remote backend's chunker work at.
        """
        return (self.scenario, self.placer)

    def run(self) -> TrialRecord:
        """Execute this cell in the current process."""
        return run_trial(
            self.scenario, self.placer, self.trial, self.base_seed,
            dict(self.params), dict(self.placer_params),
            fail_fast=self.fail_fast,
        )

    # ------------------------------------------------------------ wire format
    def to_json_dict(self) -> dict:
        """The subprocess-backend wire format (all params are plain JSON)."""
        return {
            "scenario": self.scenario,
            "placer": self.placer,
            "trial": self.trial,
            "base_seed": self.base_seed,
            "params": dict(self.params),
            "placer_params": dict(self.placer_params),
            "fail_fast": self.fail_fast,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "WorkItem":
        try:
            return cls.make(
                scenario=str(data["scenario"]),
                placer=str(data["placer"]),
                trial=int(data["trial"]),  # type: ignore[arg-type]
                base_seed=int(data["base_seed"]),  # type: ignore[arg-type]
                params=dict(data.get("params") or {}),  # type: ignore[arg-type]
                placer_params=dict(data.get("placer_params") or {}),  # type: ignore[arg-type]
                fail_fast=bool(data.get("fail_fast", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed work item: {exc}") from exc


def execute_work_item(item: WorkItem) -> TrialRecord:
    """Module-level alias of :meth:`WorkItem.run` (picklable for pools)."""
    return item.run()


def _measurement_plan() -> MeasurementPlan:
    # The paper's comparison charges the same measurement time to every
    # scheme rather than letting campaigns advance the clock mid-trial.
    return MeasurementPlan(advance_clock=False)


def _collect_solver_stats(placer, record: TrialRecord) -> None:
    """Copy a solver-backed placer's per-app stats into the record.

    Placers that expose ``stats_history`` (the ILP) report MIP gap, node
    counts, and warm-start acceptance per placed application; everything
    else leaves the field ``None``.
    """
    history = getattr(placer, "stats_history", None)
    if history:
        record.solver_stats = {app_name: dict(stats) for app_name, stats in history}


def _run_batch_trial(
    instance: ScenarioInstance,
    placer_name: str,
    seed: int,
    record: TrialRecord,
    placer_params: Optional[Mapping[str, object]] = None,
) -> None:
    """Place every application at time zero and run them together."""
    placer_spec = get_placer(placer_name)
    placer = placer_spec.create(seed, placer_params)
    provider, cluster = instance.provider, instance.cluster

    place_started = time.perf_counter()
    profile: Optional[NetworkProfile] = None
    if placer_spec.needs_profile:
        measurer = NetworkMeasurer(provider, plan=_measurement_plan())
        profile = measurer.measure(
            cluster.machine_names(), background=instance.background
        )
        record.measurement_overhead_s = profile.measurement_duration_s

    placements = {}
    state = cluster
    for app in instance.apps:
        placement = placer.place(app, state, profile)
        placements[app.name] = placement
        state = state.with_usage(placement.cpu_usage(app))
    record.placement_wall_s = time.perf_counter() - place_started
    _collect_solver_stats(placer, record)

    runs = run_applications(
        provider,
        placements=placements,
        apps=instance.apps,
        start_times={app.name: 0.0 for app in instance.apps},
        background=instance.background,
    )
    _fill_run_metrics(record, runs.values())


def _run_sequence_trial(
    instance: ScenarioInstance,
    placer_name: str,
    seed: int,
    record: TrialRecord,
    placer_params: Optional[Mapping[str, object]] = None,
) -> None:
    """Replay the §2.4 arrival sequence with the placer under test."""
    placer_spec = get_placer(placer_name)
    placer = placer_spec.create(seed, placer_params)
    runner = SequentialPlacementRunner(
        instance.provider,
        instance.cluster,
        placer,
        measurement=_measurement_plan(),
        measure_network=placer_spec.needs_profile,
        background=instance.background,
    )
    result = runner.run(instance.apps)
    _collect_solver_stats(placer, record)
    record.placement_wall_s = result.placement_wall_s
    record.measurement_overhead_s = sum(
        profile.measurement_duration_s
        for profile in result.profiles.values()
        if profile is not None
    )
    _fill_run_metrics(record, result.runs.values())


def _run_service_trial(
    instance: ScenarioInstance,
    placer_name: str,
    seed: int,
    record: TrialRecord,
    placer_params: Optional[Mapping[str, object]] = None,
) -> None:
    """Stream the applications through the online placement service.

    The per-application metric is admission-to-completion time; rejected
    applications (CPU-infeasible at their arrival) are excluded from the
    timing sums but surface in ``solver_stats``-style accounting via the
    per-app map (their duration is absent).
    """
    # Local import: repro.service resolves placers through this package's
    # registry, so a module-level import would be circular.
    from repro.service.engine import PlacementService

    placer_spec = get_placer(placer_name)
    placer = placer_spec.create(seed, placer_params)
    settings = instance.service or ServiceSettings()
    service = PlacementService(
        instance.provider,
        instance.cluster,
        placer,
        predictor=settings.predictor,
        ttl_s=settings.ttl_s,
        migrate=settings.migrate,
        improvement_threshold=settings.improvement_threshold,
    )
    report = service.run_session(instance.apps, hours=settings.hours)
    record.placement_wall_s = report.placement_wall_s
    record.measurement_overhead_s = float(
        report.measurement.get("measurement_time_s", 0.0)
    )
    completed = report.completed()
    record.per_app_duration_s = {a.name: a.duration for a in completed}
    record.total_running_time_s = report.total_completion_time_s
    if completed:
        record.makespan_s = max(a.completed_at for a in completed) - min(
            a.arrived_at for a in completed
        )


def _fill_run_metrics(record: TrialRecord, runs) -> None:
    runs = list(runs)
    record.per_app_duration_s = {run.app_name: run.duration for run in runs}
    record.total_running_time_s = sum(run.duration for run in runs)
    record.makespan_s = max(run.completion_time for run in runs) - min(
        run.start_time for run in runs
    )
    record.network_bytes = sum(run.network_bytes for run in runs)
    record.colocated_bytes = sum(run.colocated_bytes for run in runs)
