"""Switch the library between optimised and reference hot paths.

Each optimisation in this PR kept its pre-optimisation implementation
reachable behind a switch:

* :func:`repro.net.fluid.set_default_allocator` — incremental vs reference
  max-min allocation inside :class:`~repro.net.fluid.FluidSimulation`;
* :func:`repro.core.placement.greedy.set_default_rate_cache` — cached vs
  recomputed candidate rates in the greedy placer;
* :func:`repro.net.topology.set_route_cache_enabled` — the process-wide
  structural routing cache;
* :func:`repro.net.topology.set_structured_routing_enabled` — the
  arithmetic tree-topology routing fast path.

:func:`reference_mode` flips all four at once so the benchmarks can time
"the code as it was" against "the code as it is" inside one process.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.placement.greedy import set_default_rate_cache
from repro.net.fluid import ALLOCATOR_REFERENCE, set_default_allocator
from repro.net.topology import (
    clear_route_cache,
    set_route_cache_enabled,
    set_structured_routing_enabled,
)


@contextmanager
def reference_mode():
    """Run the enclosed block on the pre-optimisation code paths."""
    previous_allocator = set_default_allocator(ALLOCATOR_REFERENCE)
    previous_cache = set_default_rate_cache(False)
    previous_routes = set_route_cache_enabled(False)
    previous_structured = set_structured_routing_enabled(False)
    clear_route_cache()
    try:
        yield
    finally:
        set_default_allocator(previous_allocator)
        set_default_rate_cache(previous_cache)
        set_route_cache_enabled(previous_routes)
        set_structured_routing_enabled(previous_structured)
