"""Span tracer: nested timing events flushed to a JSONL file.

Off by default.  Three ways to switch it on, in precedence order:

* programmatically — ``obs.configure(trace_path="t.jsonl")``;
* per process tree — ``REPRO_TRACE=t.jsonl python -m repro ...`` (the
  unified CLI's ``--trace`` flag sets exactly this variable, so worker
  subprocesses spawned by the process/remote backends inherit it and
  append their spans to the same file);
* per call site never: instrumented code calls :func:`span`
  unconditionally and the disabled path is a shared no-op context
  manager, cheap enough to sit inside the fluid event loop (the ``obs``
  bench holds it to ≤2% on the ``fluid_loop`` workload).

Each completed span emits one JSON line::

    {"ev": "span", "name": "alloc.solve", "span": "1a2b-3", "parent":
     "1a2b-1", "ts": 0.123, "dur": 0.004, "pid": 6698, "tid": 1234,
     "worker": "w0", "attrs": {"mode": "vector", "links": 96}}

``ts`` is a *monotonic* start time (``time.perf_counter``), meaningful
for ordering and deltas within one process only; ``span``/``parent``
ids are unique per process and reconstruct the nesting; ``worker`` is
the ``REPRO_WORKER_ID`` env var when the process is a sweep worker.
The file is opened in append mode and flushed per line so concurrent
writer processes interleave whole lines and a crash loses nothing.

Tracing is pure observation: no instrumented code path branches on it,
so traced results are bit-identical to untraced ones (asserted by the
``obs`` bench and the CI ``obs`` job).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "configure",
    "enabled",
    "span",
    "point",
    "trace_path",
]

#: Environment variable naming the trace file; checked once, lazily.
TRACE_ENV = "REPRO_TRACE"
#: Optional worker identity stamped on every event.
WORKER_ID_ENV = "REPRO_WORKER_ID"


class _TracerState:
    def __init__(self) -> None:
        self.enabled = False
        self.path: Optional[str] = None
        self.file = None
        self.lock = threading.Lock()
        self.counter = 0
        self.env_checked = False
        self.local = threading.local()


_state = _TracerState()


def _check_env() -> None:
    # Lazy so `import repro` alone never touches the filesystem; a worker
    # subprocess that inherited REPRO_TRACE starts tracing on first use.
    if _state.env_checked:
        return
    _state.env_checked = True
    path = os.environ.get(TRACE_ENV)
    if path and not _state.enabled:
        _open(path)


def _open(path: str) -> None:
    _state.file = open(path, "a", encoding="utf-8")
    _state.path = path
    _state.enabled = True


def configure(trace_path: Optional[str] = None, *, export_env: bool = True) -> None:
    """Enable (path given) or disable (``None``) tracing for this process.

    With ``export_env`` (the default), the path is also written to the
    ``REPRO_TRACE`` environment variable so subprocesses spawned later
    (sweep workers, the remote fabric) trace into the same file.
    """
    with _state.lock:
        if _state.file is not None:
            _state.file.close()
            _state.file = None
        _state.enabled = False
        _state.path = None
        _state.env_checked = True
        if trace_path:
            _open(str(trace_path))
            if export_env:
                os.environ[TRACE_ENV] = str(trace_path)
        elif export_env:
            os.environ.pop(TRACE_ENV, None)


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    if not _state.env_checked:
        _check_env()
    return _state.enabled


def trace_path() -> Optional[str]:
    """The active trace file path, or ``None`` when disabled."""
    if not _state.env_checked:
        _check_env()
    return _state.path


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        """Attribute updates are dropped while tracing is off."""


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. a result size)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        _state.counter += 1
        self.span_id = f"{os.getpid():x}-{_state.counter}"
        stack = getattr(_state.local, "stack", None)
        if stack is None:
            stack = _state.local.stack = []
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self.start
        stack = _state.local.stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event = {
            "ev": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": self.start,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        worker = os.environ.get(WORKER_ID_ENV)
        if worker:
            event["worker"] = worker
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        _emit(event)
        return False


def span(name: str, **attrs):
    """Context manager timing ``name``; a shared no-op when tracing is off.

    Attributes must be JSON-serialisable.  Nested ``span`` calls on the
    same thread link via ``parent`` ids.
    """
    if not _state.enabled:
        if _state.env_checked:
            return _NOOP
        _check_env()
        if not _state.enabled:
            return _NOOP
    return _Span(name, attrs)


def point(name: str, **attrs) -> None:
    """Record an instantaneous event (a lease death, a recovery action)."""
    if not _state.enabled:
        if _state.env_checked:
            return
        _check_env()
        if not _state.enabled:
            return
    stack = getattr(_state.local, "stack", None)
    event = {
        "ev": "point",
        "name": name,
        "parent": stack[-1] if stack else None,
        "ts": time.perf_counter(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
    }
    worker = os.environ.get(WORKER_ID_ENV)
    if worker:
        event["worker"] = worker
    if attrs:
        event["attrs"] = attrs
    _emit(event)


def _emit(event: Dict[str, object]) -> None:
    line = json.dumps(event, separators=(",", ":"), sort_keys=True, default=str)
    with _state.lock:
        handle = _state.file
        if handle is None:
            return
        handle.write(line + "\n")
        handle.flush()
