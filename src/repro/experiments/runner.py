"""Experiment runner: grid construction, cache lookup, dispatch, assembly.

The runner owns *what* to run — the scenario x placer x trial grid — and
delegates *how* to run it to a named
:class:`~repro.experiments.backends.ExecutionBackend` (``inline``,
``process``, ``subprocess-pool``, ...).  Before dispatching, it consults an
optional persistent :class:`~repro.experiments.cache.ResultStore`, so
re-running a grown grid only executes cells that are new (or whose code
changed).  Trial execution itself lives in :mod:`repro.experiments.trials`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import logging

from repro import obs
from repro.errors import ExperimentError
from repro.experiments.backends import (
    DEFAULT_BACKEND,
    create_backend,
    get_backend,
)
from repro.experiments.cache import ResultStore
from repro.experiments.placers import resolve_placer
from repro.experiments.results import ExperimentResult, TrialRecord
from repro.experiments.scenarios import get_scenario
from repro.experiments.trials import (  # noqa: F401  (re-exported API)
    WorkItem,
    run_trial,
    trial_seed,
)

DEFAULT_PLACERS: Tuple[str, ...] = ("greedy", "ilp", "random", "round-robin")


@dataclass(frozen=True)
class ExperimentConfig:
    """A sweep grid: which scenarios, placers, and trials to run.

    Attributes:
        scenarios: registered scenario names to sweep.
        placers: registered placer names to compare.
        trials: trials per (scenario, placer) cell.
        base_seed: root seed the per-trial seeds derive from.
        baseline: placer the speedups are computed against; it is added to
            the grid automatically when missing.
        workers: worker-count hint for the backend; ``None`` sizes the pool
            to the grid (capped at the CPU count).
        backend: registered execution-backend name; ``None`` picks
            ``inline`` for ``workers == 1`` and ``process`` otherwise,
            preserving the pre-backend behaviour.
        cache_dir: directory of a persistent
            :class:`~repro.experiments.cache.ResultStore`; ``None`` disables
            the cross-run cache (within-run memoization always applies).
        scenario_params: per-scenario builder parameter overrides.
        placer_params: per-placer construction overrides (e.g. the ILP's
            per-cell solver budget: ``{"ilp": {"time_limit_s": 5.0}}``),
            validated by the placer's factory.
        fail_fast: abort the sweep on the first raising trial instead of
            capturing it into the record (keep-going is the default).
        max_retries: retry waves the ``subprocess-pool`` and ``remote``
            backends run for trials whose worker died (ignored by
            in-process backends, which cannot lose workers).
        chunk_timeout_s: per-worker wall-clock budget of the
            ``subprocess-pool`` backend; hung workers are killed and their
            finished trials salvaged.  Only valid with that backend.
        endpoints: worker endpoints of the ``remote`` backend
            (``http://host:port`` for running workers, ``ssh://host:port``
            to launch them); empty, the backend spawns a localhost pool of
            ``workers`` processes.  Only valid with that backend.
        heartbeat_timeout_s: lease heartbeat deadline of the ``remote``
            backend — a leased worker that streams no record for this long
            is probed, its finished trials salvaged, and the rest
            re-enqueued.  Only valid with that backend.

    Placer names (including the baseline) accept the registry's aliases
    (``choreo-optimal`` for ``ilp``) and are canonicalised on construction,
    so result files and cache keys always carry the registry name.
    """

    scenarios: Tuple[str, ...]
    placers: Tuple[str, ...] = DEFAULT_PLACERS
    trials: int = 3
    base_seed: int = 0
    baseline: str = "random"
    workers: Optional[int] = 1
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    scenario_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    placer_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    fail_fast: bool = False
    max_retries: int = 2
    chunk_timeout_s: Optional[float] = None
    endpoints: Tuple[str, ...] = ()
    heartbeat_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ExperimentError("an experiment needs at least one scenario")
        if self.trials < 1:
            raise ExperimentError("trials must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ExperimentError("workers must be >= 1 (or None for auto)")
        if self.backend is not None:
            get_backend(self.backend)  # fail fast on typos
        if self.max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if self.chunk_timeout_s is not None:
            if self.chunk_timeout_s <= 0:
                raise ExperimentError("chunk_timeout_s must be positive (or None)")
            if self.effective_backend != "subprocess-pool":
                raise ExperimentError(
                    "chunk_timeout_s only applies to the subprocess-pool "
                    f"backend, not {self.effective_backend!r}"
                )
        if self.heartbeat_timeout_s is not None:
            if self.heartbeat_timeout_s <= 0:
                raise ExperimentError(
                    "heartbeat_timeout_s must be positive (or None)"
                )
            if self.effective_backend != "remote":
                raise ExperimentError(
                    "heartbeat_timeout_s only applies to the remote "
                    f"backend, not {self.effective_backend!r}"
                )
        if self.endpoints:
            if self.effective_backend != "remote":
                raise ExperimentError(
                    "endpoints only apply to the remote backend, not "
                    f"{self.effective_backend!r}"
                )
            object.__setattr__(
                self, "endpoints", tuple(str(spec) for spec in self.endpoints)
            )
            # Parse up front so a typo'd endpoint fails here, not after the
            # grid's cache pass inside the backend.
            from repro.experiments.worker import parse_endpoint

            for spec in self.endpoints:
                parse_endpoint(spec)
        # Canonicalise placer aliases up front through the registry facade
        # (frozen dataclass, hence object.__setattr__): every consumer
        # downstream — records, cache keys, summaries — then agrees on the
        # registry name, and unknown placers fail here with the full list.
        object.__setattr__(
            self,
            "placers",
            tuple(resolve_placer(name).name for name in self.placers),
        )
        object.__setattr__(
            self, "baseline", resolve_placer(self.baseline).name
        )
        canonical_params: Dict[str, Mapping[str, object]] = {}
        for name, params in self.placer_params.items():
            canonical = resolve_placer(name).name
            if canonical in canonical_params:
                # An alias and its canonical name (or two aliases) both
                # carry params: merging could silently combine conflicting
                # overrides, so reject the ambiguity outright.
                raise ExperimentError(
                    f"placer_params given twice for {canonical!r} "
                    f"(via an alias); merge the entries"
                )
            canonical_params[canonical] = params
        object.__setattr__(self, "placer_params", canonical_params)
        for name in self.scenarios:
            get_scenario(name)
        for name, params in self.scenario_params.items():
            get_scenario(name).validate_params(params)
            self._check_json_scalars("scenario_params", name, params)
        for name, params in self.placer_params.items():
            # Dry-run construction: factories validate their own parameter
            # names, so typos fail here instead of inside a worker.
            resolve_placer(name).create(0, params)
            self._check_json_scalars("placer_params", name, params)

    @staticmethod
    def _check_json_scalars(
        group: str, name: str, params: Mapping[str, object]
    ) -> None:
        for key, value in params.items():
            # JSON scalars only: anything richer would round-trip
            # differently through the subprocess wire format (tuple ->
            # list) and break the backends' bit-identical guarantee.
            if not isinstance(value, (type(None), bool, int, float, str)):
                raise ExperimentError(
                    f"{group}[{name!r}][{key!r}] is "
                    f"{type(value).__name__}; parameter values must be "
                    "JSON scalars (None/bool/int/float/str) so every "
                    "backend and the result store key them identically"
                )

    @property
    def effective_placers(self) -> Tuple[str, ...]:
        """The placer grid with the baseline guaranteed present."""
        if self.baseline in self.placers:
            return self.placers
        return self.placers + (self.baseline,)

    @property
    def effective_backend(self) -> str:
        """The backend name after applying the historical default."""
        if self.backend is not None:
            return self.backend
        return DEFAULT_BACKEND if self.workers == 1 else "process"

    @property
    def backend_options(self) -> Dict[str, object]:
        """Backend-specific options derived from the config.

        The ``subprocess-pool`` and ``remote`` backends take options; the
        in-process backends reject any, so this stays empty for them.  The
        remote backend's backoff jitter is seeded from ``base_seed``, so a
        sweep that loses workers retries on the same schedule every run,
        and its workers share the runner's store via ``store_root``.
        """
        if self.effective_backend == "subprocess-pool":
            options: Dict[str, object] = {"max_retries": self.max_retries}
            if self.chunk_timeout_s is not None:
                options["chunk_timeout_s"] = self.chunk_timeout_s
            return options
        if self.effective_backend == "remote":
            options = {
                "max_retries": self.max_retries,
                "backoff_seed": self.base_seed,
            }
            if self.endpoints:
                options["endpoints"] = list(self.endpoints)
            if self.heartbeat_timeout_s is not None:
                options["heartbeat_timeout_s"] = self.heartbeat_timeout_s
            if self.cache_dir:
                options["store_root"] = self.cache_dir
            return options
        return {}


@dataclass(frozen=True)
class RunStats:
    """How the last :meth:`ExperimentRunner.run` obtained its records.

    ``cells`` counts grid cells, ``unique_cells`` the distinct simulations
    among them, ``cache_hits`` the unique cells served by the persistent
    store, and ``executed`` the unique cells the backend actually ran.
    """

    backend: str
    cells: int
    unique_cells: int
    executed: int
    cache_hits: int

    def to_json_dict(self) -> dict:
        return {
            "backend": self.backend,
            "cells": self.cells,
            "unique_cells": self.unique_cells,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
        }


logger = logging.getLogger("repro.experiments.runner")

#: Sweep counters (``obs.metrics.snapshot()`` under ``repro.sweep.*``).
_SWEEP_RUNS = obs.Counter("repro.sweep.runs")
_SWEEP_CELLS = obs.Counter("repro.sweep.cells")
_SWEEP_EXECUTED = obs.Counter("repro.sweep.executed")
_SWEEP_CACHE_HITS = obs.Counter("repro.sweep.cache_hits")


class ExperimentRunner:
    """Executes a sweep grid through a backend, reusing cached results.

    Args:
        config: the grid and execution settings.
        store: a ready :class:`ResultStore`; omitted, one is opened at
            ``config.cache_dir`` when set (no store, no cross-run caching).
    """

    def __init__(self, config: ExperimentConfig, store: Optional[ResultStore] = None):
        self.config = config
        if store is None and config.cache_dir:
            store = ResultStore(config.cache_dir)
        self.store = store
        self.last_stats: Optional[RunStats] = None

    def cells(self) -> List[Tuple[str, str, int]]:
        """The grid as ``(scenario, placer, trial)`` work items."""
        return [
            (scenario, placer, trial)
            for scenario in self.config.scenarios
            for placer in self.config.effective_placers
            for trial in range(self.config.trials)
        ]

    def _work_item(self, scenario: str, placer: str, trial: int) -> WorkItem:
        return WorkItem.make(
            scenario, placer, trial, self.config.base_seed,
            self.config.scenario_params.get(scenario),
            self.config.placer_params.get(placer),
            fail_fast=self.config.fail_fast,
        )

    def _cell_key(self, scenario: str, placer: str, trial: int) -> Tuple:
        """Within-run memoization key: everything that determines a trial.

        Two cells with the same ``(scenario, params, placer, placer_params,
        trial, seed)`` run the identical simulation, so repeated grid cells
        — e.g. a baseline listed twice, or duplicated scenario entries — are
        simulated once per run and their records reused.  The trial index
        stays in the key so distinct trials can never merge through a CRC32
        seed collision.  (The *persistent* key additionally embeds the code
        version; see :mod:`repro.experiments.cache`.)
        """
        params = self.config.scenario_params.get(scenario) or {}
        params_key = tuple(sorted((str(k), repr(v)) for k, v in params.items()))
        pparams = self.config.placer_params.get(placer) or {}
        pparams_key = tuple(sorted((str(k), repr(v)) for k, v in pparams.items()))
        seed = trial_seed(self.config.base_seed, scenario, trial)
        return (scenario, params_key, placer, pparams_key, trial, seed)

    def run(self) -> ExperimentResult:
        """Run every cell and return the aggregated result.

        Grid construction — dedupe repeated cells, then split the unique
        ones into cache hits and work for the backend; assembly — map the
        records back onto the full grid in a deterministic order.
        """
        config = self.config
        cells = self.cells()
        unique: Dict[Tuple, Tuple[str, str, int]] = {}
        for cell in cells:
            unique.setdefault(self._cell_key(*cell), cell)

        sweep = obs.span(
            "experiments.run",
            backend=config.effective_backend,
            cells=len(cells),
            unique_cells=len(unique),
        )
        with sweep:
            memo: Dict[Tuple, TrialRecord] = {}
            pending: List[Tuple[Tuple, WorkItem]] = []
            for key, cell in unique.items():
                item = self._work_item(*cell)
                cached = (
                    self.store.get(self._store_key(item)) if self.store else None
                )
                if cached is not None:
                    memo[key] = cached
                else:
                    pending.append((key, item))

            logger.info(
                "sweep: %d cell(s), %d unique, %d from store, %d to execute "
                "via %s backend",
                len(cells), len(unique), len(unique) - len(pending),
                len(pending), config.effective_backend,
            )
            if pending:
                backend = create_backend(
                    config.effective_backend,
                    workers=config.workers,
                    options=config.backend_options,
                )
                with obs.span(
                    "experiments.map_trials",
                    backend=config.effective_backend,
                    trials=len(pending),
                ):
                    records = backend.map_trials([item for _, item in pending])
                for (key, item), record in zip(pending, records):
                    memo[key] = record
                    if self.store is not None:
                        self.store.put(self._store_key(item), record)
                if self.store is not None:
                    # Persist observed per-cell costs for the next sweep's
                    # cost-aware chunking (remote backend).  Remote workers
                    # already wrote these cells themselves (same keys, same
                    # bytes modulo wall clocks) — the re-put above is a benign
                    # last-writer-wins on a content-addressed cell.
                    self.store.flush_costs()
            sweep.set(executed=len(pending))

        self.last_stats = RunStats(
            backend=config.effective_backend,
            cells=len(cells),
            unique_cells=len(unique),
            executed=len(pending),
            cache_hits=len(unique) - len(pending),
        )
        _SWEEP_RUNS.inc()
        _SWEEP_CELLS.inc(len(cells))
        _SWEEP_EXECUTED.inc(len(pending))
        _SWEEP_CACHE_HITS.inc(len(unique) - len(pending))

        records_out: List[TrialRecord] = []
        seen: set = set()
        for cell in cells:
            key = self._cell_key(*cell)
            record = memo[key]
            if key in seen:
                # A reused record: hand out an independent copy.
                record = copy.deepcopy(record)
            seen.add(key)
            records_out.append(record)

        records_out.sort(key=lambda rec: (rec.scenario, rec.placer, rec.trial))
        return ExperimentResult(
            scenarios=list(config.scenarios),
            placers=list(config.effective_placers),
            trials=config.trials,
            base_seed=config.base_seed,
            baseline=config.baseline,
            records=records_out,
        )

    def _store_key(self, item: WorkItem):
        assert self.store is not None
        return self.store.key_for(
            item.scenario, item.placer, item.trial, item.seed,
            params=dict(item.params),
            placer_params=dict(item.placer_params),
        )
