"""The measured view of the cloud network (output of Choreo's measurement).

A :class:`NetworkProfile` is what Choreo's placement algorithms consume: the
estimated single-connection TCP throughput for every ordered VM pair
(``R`` in the Appendix), optional per-path cross-traffic estimates (``c``
from §3.2), optional per-VM hose-rate estimates, and which sharing model the
measurements support ("hose" on EC2/Rackspace, §4.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError


@dataclass
class NetworkProfile:
    """Pairwise network measurements for a set of VMs.

    Attributes:
        vms: the VM names covered by this profile.
        rates_bps: estimated single-connection throughput per ordered pair.
        intra_vm_rate_bps: rate used for two tasks placed on the same VM;
            the paper models intra-machine paths as essentially infinite.
        cross_traffic: per-ordered-pair equivalent number of background bulk
            connections (``c`` from §3.2), defaulting to zero.
        hose_rates_bps: per-VM estimated egress cap; when missing, the
            maximum measured rate out of the VM is used.
        sharing_model: ``"hose"`` (connections out of one VM share its
            egress cap) or ``"pipe"`` (connections on the same path share
            that path's rate) — §4.4 finds "hose" on EC2 and Rackspace.
        measured_at: provider time at which the measurement was taken.
        measurement_duration_s: wall-clock cost of the measurement campaign.
        pair_measured_at: provider time each ordered pair was probed; pairs
            measured in later campaign rounds carry later timestamps, which
            is what lets a TTL cache invalidate stale pairs selectively
            instead of re-meshing the full N² campaign.  Pairs missing from
            the map fall back to ``measured_at``.
        degraded_pairs: pairs the campaign could not measure (probes failed
            even after retries, see ``MeasurementPlan.max_retries``), mapped
            to a human-readable reason.  Degraded pairs carry no rate —
            consumers fall back to a forecast or a floor instead of trusting
            a number that was never observed.
    """

    vms: List[str]
    rates_bps: Dict[Tuple[str, str], float]
    intra_vm_rate_bps: float = math.inf
    cross_traffic: Dict[Tuple[str, str], float] = field(default_factory=dict)
    hose_rates_bps: Dict[str, float] = field(default_factory=dict)
    sharing_model: str = "hose"
    measured_at: float = 0.0
    measurement_duration_s: float = 0.0
    pair_measured_at: Dict[Tuple[str, str], float] = field(default_factory=dict)
    degraded_pairs: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.vms)) != len(self.vms):
            raise MeasurementError("duplicate VM names in profile")
        if self.sharing_model not in ("hose", "pipe"):
            raise MeasurementError(
                f"sharing_model must be 'hose' or 'pipe', got {self.sharing_model!r}"
            )
        known = set(self.vms)
        for (src, dst), rate in self.rates_bps.items():
            if src not in known or dst not in known:
                raise MeasurementError(
                    f"profile rate references unknown VM {src!r} or {dst!r}"
                )
            if rate <= 0:
                raise MeasurementError(f"rate for ({src!r}, {dst!r}) must be positive")
            if src == dst:
                raise MeasurementError("rates_bps must not contain self pairs")
        for c in self.cross_traffic.values():
            if c < 0:
                raise MeasurementError("cross traffic estimates must be >= 0")
        for pair in self.pair_measured_at:
            if pair not in self.rates_bps:
                raise MeasurementError(
                    f"pair_measured_at references unmeasured pair {pair!r}"
                )
        for (src, dst) in self.degraded_pairs:
            if src not in known or dst not in known:
                raise MeasurementError(
                    f"degraded pair references unknown VM {src!r} or {dst!r}"
                )
            if src == dst:
                raise MeasurementError("degraded_pairs must not contain self pairs")
            if (src, dst) in self.rates_bps:
                raise MeasurementError(
                    f"pair ({src!r}, {dst!r}) is both measured and degraded"
                )
        # Lazily built by rate_matrix(); invalidated when the number of
        # measured pairs changes (profiles are otherwise treated as
        # immutable once placement starts consuming them).
        self._matrix_cache: Optional[np.ndarray] = None
        self._matrix_cache_pairs: int = -1

    # ------------------------------------------------------------- accessors
    def rate(self, src_vm: str, dst_vm: str) -> float:
        """Estimated single-connection throughput from ``src_vm`` to ``dst_vm``."""
        if src_vm == dst_vm:
            return self.intra_vm_rate_bps
        try:
            return self.rates_bps[(src_vm, dst_vm)]
        except KeyError as exc:
            raise MeasurementError(
                f"profile has no measurement for ({src_vm!r}, {dst_vm!r})"
            ) from exc

    def has_pair(self, src_vm: str, dst_vm: str) -> bool:
        """True if the ordered pair was measured (self pairs always count)."""
        return src_vm == dst_vm or (src_vm, dst_vm) in self.rates_bps

    def measured_at_pair(self, src_vm: str, dst_vm: str) -> float:
        """When an ordered pair was last probed (campaign start as fallback)."""
        if not self.has_pair(src_vm, dst_vm):
            raise MeasurementError(
                f"profile has no measurement for ({src_vm!r}, {dst_vm!r})"
            )
        return self.pair_measured_at.get((src_vm, dst_vm), self.measured_at)

    def cross(self, src_vm: str, dst_vm: str) -> float:
        """Cross-traffic estimate ``c`` for a pair (0 when not measured)."""
        if src_vm == dst_vm:
            return 0.0
        return self.cross_traffic.get((src_vm, dst_vm), 0.0)

    def hose_rate(self, vm: str) -> float:
        """Estimated egress cap of a VM.

        Falls back to the maximum measured rate out of the VM, which is the
        natural hose estimate when the provider does not advertise one.
        """
        if vm in self.hose_rates_bps:
            return self.hose_rates_bps[vm]
        outgoing = [rate for (src, _), rate in self.rates_bps.items() if src == vm]
        if not outgoing:
            raise MeasurementError(f"profile has no measurements out of {vm!r}")
        return max(outgoing)

    def rate_matrix(self, order: Optional[Sequence[str]] = None) -> np.ndarray:
        """Dense pairwise-rate array aligned with ``order`` (default: ``vms``).

        Entry ``[i, j]`` is the measured rate from ``order[i]`` to
        ``order[j]``; the diagonal carries ``intra_vm_rate_bps`` and
        unmeasured pairs are ``NaN``.  Built in one pass over the measured
        pairs and cached for the default order, so hierarchical placement
        can cluster a large mesh without N² dictionary lookups.  Callers
        must treat the returned array as read-only.

        Raises:
            MeasurementError: if ``order`` names a VM outside the profile.
        """
        if order is None:
            if (
                self._matrix_cache is not None
                and self._matrix_cache_pairs == len(self.rates_bps)
            ):
                return self._matrix_cache
            names = self.vms
        else:
            names = list(order)
            known = set(self.vms)
            for vm in names:
                if vm not in known:
                    raise MeasurementError(
                        f"rate_matrix order references unknown VM {vm!r}"
                    )
        index = {vm: i for i, vm in enumerate(names)}
        matrix = np.full((len(names), len(names)), math.nan)
        np.fill_diagonal(matrix, self.intra_vm_rate_bps)
        for (src, dst), rate in self.rates_bps.items():
            i = index.get(src)
            j = index.get(dst)
            if i is not None and j is not None:
                matrix[i, j] = rate
        if order is None:
            self._matrix_cache = matrix
            self._matrix_cache_pairs = len(self.rates_bps)
        return matrix

    def pairs(self) -> List[Tuple[str, str]]:
        """All measured ordered pairs."""
        return list(self.rates_bps.keys())

    def fastest_pairs(self, n: Optional[int] = None) -> List[Tuple[str, str, float]]:
        """Measured pairs sorted by descending rate (ties broken by name)."""
        ranked = sorted(
            ((src, dst, rate) for (src, dst), rate in self.rates_bps.items()),
            key=lambda item: (-item[2], item[0], item[1]),
        )
        return ranked if n is None else ranked[:n]

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_uniform_rate(
        cls,
        vms: Sequence[str],
        rate_bps: float,
        intra_vm_rate_bps: float = math.inf,
        sharing_model: str = "hose",
    ) -> "NetworkProfile":
        """A profile where every pair has the same rate (Rackspace-like)."""
        if rate_bps <= 0:
            raise MeasurementError("rate must be positive")
        rates = {
            (a, b): rate_bps for a in vms for b in vms if a != b
        }
        return cls(
            vms=list(vms),
            rates_bps=rates,
            intra_vm_rate_bps=intra_vm_rate_bps,
            sharing_model=sharing_model,
        )

    @classmethod
    def from_rate_function(
        cls,
        vms: Sequence[str],
        rate_fn,
        intra_vm_rate_bps: float = math.inf,
        sharing_model: str = "hose",
    ) -> "NetworkProfile":
        """A profile built by calling ``rate_fn(src, dst)`` for every pair."""
        rates = {}
        for a in vms:
            for b in vms:
                if a != b:
                    rates[(a, b)] = float(rate_fn(a, b))
        return cls(
            vms=list(vms),
            rates_bps=rates,
            intra_vm_rate_bps=intra_vm_rate_bps,
            sharing_model=sharing_model,
        )


class MatrixNetworkProfile(NetworkProfile):
    """A :class:`NetworkProfile` whose rates live in a dense NumPy matrix.

    A dict keyed by ordered VM pairs costs hundreds of bytes per entry — a
    4096-VM mesh is ~16.7M pairs, far past what the tuple-keyed
    representation can hold.  This subclass stores the same measurements as
    one float64 ``(n, n)`` array (``NaN`` marks unmeasured pairs, the
    diagonal is the intra-VM rate) and overrides the per-pair accessors to
    index into it, so datacenter-scale synthetic meshes (the ``scale``
    bench family) and hierarchical placement stay in array land end to end.

    ``rates_bps`` is intentionally left empty: pair-dict consumers should
    go through :meth:`rate` / :meth:`rate_matrix`, which every placement
    path does.  :meth:`pairs` and :meth:`fastest_pairs` materialise tuples
    on demand and are O(n²) — fine for tests, avoided on hot paths.
    """

    def __init__(
        self,
        vms: Sequence[str],
        matrix: "np.ndarray",
        intra_vm_rate_bps: float = math.inf,
        hose_rates_bps: Optional[Mapping[str, float]] = None,
        sharing_model: str = "hose",
        measured_at: float = 0.0,
        measurement_duration_s: float = 0.0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        n = len(vms)
        if matrix.shape != (n, n):
            raise MeasurementError(
                f"rate matrix shape {matrix.shape} does not match "
                f"{n} VMs (expected ({n}, {n}))"
            )
        off_diag = ~np.eye(n, dtype=bool)
        measured = off_diag & ~np.isnan(matrix)
        if np.any(matrix[measured] <= 0):
            raise MeasurementError("matrix rates must be positive")
        matrix = matrix.copy()
        np.fill_diagonal(matrix, intra_vm_rate_bps)
        self._matrix = matrix
        self._index: Dict[str, int] = {vm: i for i, vm in enumerate(vms)}
        super().__init__(
            vms=list(vms),
            rates_bps={},
            intra_vm_rate_bps=intra_vm_rate_bps,
            hose_rates_bps=dict(hose_rates_bps or {}),
            sharing_model=sharing_model,
            measured_at=measured_at,
            measurement_duration_s=measurement_duration_s,
        )

    # ------------------------------------------------------------- accessors
    def rate(self, src_vm: str, dst_vm: str) -> float:
        if src_vm == dst_vm:
            return self.intra_vm_rate_bps
        try:
            value = self._matrix[self._index[src_vm], self._index[dst_vm]]
        except KeyError:
            raise MeasurementError(
                f"profile has no measurement for ({src_vm!r}, {dst_vm!r})"
            ) from None
        if math.isnan(value):
            raise MeasurementError(
                f"profile has no measurement for ({src_vm!r}, {dst_vm!r})"
            )
        return float(value)

    def has_pair(self, src_vm: str, dst_vm: str) -> bool:
        if src_vm == dst_vm:
            return True
        i = self._index.get(src_vm)
        j = self._index.get(dst_vm)
        if i is None or j is None:
            return False
        return not math.isnan(self._matrix[i, j])

    def measured_at_pair(self, src_vm: str, dst_vm: str) -> float:
        if not self.has_pair(src_vm, dst_vm):
            raise MeasurementError(
                f"profile has no measurement for ({src_vm!r}, {dst_vm!r})"
            )
        return self.measured_at

    def hose_rate(self, vm: str) -> float:
        if vm in self.hose_rates_bps:
            return self.hose_rates_bps[vm]
        i = self._index.get(vm)
        if i is None:
            raise MeasurementError(f"profile has no measurements out of {vm!r}")
        row = self._matrix[i].copy()
        row[i] = math.nan
        if np.all(np.isnan(row)):
            raise MeasurementError(f"profile has no measurements out of {vm!r}")
        return float(np.nanmax(row))

    def rate_matrix(self, order: Optional[Sequence[str]] = None) -> np.ndarray:
        if order is None:
            return self._matrix
        rows = []
        for vm in order:
            i = self._index.get(vm)
            if i is None:
                raise MeasurementError(
                    f"rate_matrix order references unknown VM {vm!r}"
                )
            rows.append(i)
        idx = np.asarray(rows, dtype=np.intp)
        return self._matrix[np.ix_(idx, idx)]

    def pairs(self) -> List[Tuple[str, str]]:
        vms = self.vms
        return [
            (vms[i], vms[j])
            for i in range(len(vms))
            for j in range(len(vms))
            if i != j and not math.isnan(self._matrix[i, j])
        ]

    def fastest_pairs(self, n: Optional[int] = None) -> List[Tuple[str, str, float]]:
        ranked = sorted(
            (
                (self.vms[i], self.vms[j], float(self._matrix[i, j]))
                for i in range(len(self.vms))
                for j in range(len(self.vms))
                if i != j and not math.isnan(self._matrix[i, j])
            ),
            key=lambda item: (-item[2], item[0], item[1]),
        )
        return ranked if n is None else ranked[:n]
