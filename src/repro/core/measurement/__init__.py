"""Choreo's measurement sub-system (paper §3 and §4).

* :mod:`repro.core.measurement.packet_train` — pairwise TCP throughput
  estimation from packet-train observations, combined with the Mathis bound.
* :mod:`repro.core.measurement.cross_traffic` — equivalent-connection
  cross-traffic estimation from probe throughput time series.
* :mod:`repro.core.measurement.bottleneck` — interference tests, rack
  clustering, and rate-limit (hose) detection.
* :mod:`repro.core.measurement.orchestrator` — runs a full-mesh measurement
  campaign against a provider and produces a
  :class:`~repro.core.network_profile.NetworkProfile`.
"""

from repro.core.measurement.packet_train import (
    ThroughputEstimate,
    estimate_throughput,
    mathis_throughput,
    CalibrationPoint,
    calibrate_train_parameters,
)
from repro.core.measurement.cross_traffic import (
    CrossTrafficEstimate,
    estimate_cross_traffic,
    estimate_cross_traffic_series,
    infer_capacity_from_two_probes,
)
from repro.core.measurement.bottleneck import (
    InterferenceResult,
    BottleneckReport,
    BottleneckLocator,
    connections_interfere_at_tor,
    connections_interfere_at_core,
)
from repro.core.measurement.orchestrator import NetworkMeasurer, MeasurementPlan

__all__ = [
    "ThroughputEstimate",
    "estimate_throughput",
    "mathis_throughput",
    "CalibrationPoint",
    "calibrate_train_parameters",
    "CrossTrafficEstimate",
    "estimate_cross_traffic",
    "estimate_cross_traffic_series",
    "infer_capacity_from_two_probes",
    "InterferenceResult",
    "BottleneckReport",
    "BottleneckLocator",
    "connections_interfere_at_tor",
    "connections_interfere_at_core",
    "NetworkMeasurer",
    "MeasurementPlan",
]
