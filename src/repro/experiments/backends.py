"""Pluggable execution backends for experiment sweeps.

The runner used to hard-code its execution strategy (run inline, or fan out
over a ``ProcessPoolExecutor``).  This module turns that strategy into a
seam: an :class:`ExecutionBackend` maps :class:`~repro.experiments.trials.WorkItem`
batches to :class:`~repro.experiments.results.TrialRecord` lists, and
backends are registered by name so configs, the CLI, and result files can
address them as data.

Three backends ship in-tree:

* ``inline`` — run every trial in the current process (deterministic
  debugging default);
* ``process`` — fan out over a ``ProcessPoolExecutor`` (the strategy
  formerly hard-coded in the runner);
* ``subprocess-pool`` — split the batch into chunks and spawn one fresh
  ``python -m repro.experiments.backends`` worker process per chunk,
  exchanging JSON files.  Nothing in the protocol assumes a shared
  interpreter (or even a shared machine): the worker reads named work items
  and writes plain-JSON records, which is the stepping stone to running
  chunks over ssh on a multi-machine pool.

Every backend must return records in the order of its input items, and a
backend given the same items must produce the same records (modulo host
wall-clock timings) — the equivalence tests hold all three to that.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from concurrent import futures
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.errors import ExperimentError
from repro.experiments.results import TrialRecord
from repro.experiments.trials import WorkItem, execute_work_item

#: Wire-format schema the subprocess worker speaks.
WORKER_SCHEMA = "repro.experiments/worker/v1"

DEFAULT_BACKEND = "inline"


@runtime_checkable
class ExecutionBackend(Protocol):
    """Executes picklable work items; how and where is the backend's business."""

    name: str

    def submit(self, item: WorkItem) -> TrialRecord:
        """Run a single work item."""
        ...

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        """Run a batch; the result order matches the input order."""
        ...


@dataclass(frozen=True)
class BackendSpec:
    """A registered execution backend: metadata plus a factory.

    The factory takes the worker-count hint (``None`` = size to the batch,
    capped at the CPU count) and returns a ready :class:`ExecutionBackend`.
    """

    name: str
    description: str
    factory: Callable[[Optional[int]], ExecutionBackend]


_BACKENDS: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register a backend spec; duplicate names raise :class:`ExperimentError`."""
    if spec.name in _BACKENDS:
        raise ExperimentError(f"backend {spec.name!r} is already registered")
    _BACKENDS[spec.name] = spec
    return spec


def get_backend(name: str) -> BackendSpec:
    """Look up a backend spec by name."""
    try:
        return _BACKENDS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from exc


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_BACKENDS)


def create_backend(name: str, workers: Optional[int] = None) -> ExecutionBackend:
    """Instantiate a registered backend with a worker-count hint."""
    return get_backend(name).factory(workers)


def _resolve_workers(workers: Optional[int], n_items: int) -> int:
    if workers is not None:
        return max(1, workers)
    return max(1, min(n_items, os.cpu_count() or 1))


# ---------------------------------------------------------------------------
# inline
# ---------------------------------------------------------------------------
class InlineBackend:
    """Run every trial in the current process, one after another."""

    name = "inline"

    def submit(self, item: WorkItem) -> TrialRecord:
        return execute_work_item(item)

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        return [execute_work_item(item) for item in items]


# ---------------------------------------------------------------------------
# process
# ---------------------------------------------------------------------------
class ProcessPoolBackend:
    """Fan trials out over a ``concurrent.futures.ProcessPoolExecutor``."""

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        workers = _resolve_workers(self.workers, len(items))
        if workers == 1:
            return InlineBackend().map_trials(items)
        records: List[Optional[TrialRecord]] = [None] * len(items)
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(execute_work_item, item): index
                for index, item in enumerate(items)
            }
            for future in futures.as_completed(pending):
                records[pending[future]] = future.result()
        return records  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# subprocess-pool
# ---------------------------------------------------------------------------
def _worker_env() -> Dict[str, str]:
    """Child env with the parent's ``repro`` package importable.

    Test runs import ``repro`` from a source checkout via ``sys.path`` (not
    the environment), so the parent's import location is prepended to the
    child's ``PYTHONPATH`` explicitly.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def _split_chunks(items: Sequence[WorkItem], n_chunks: int) -> List[List[int]]:
    """Round-robin item indices into ``n_chunks`` non-empty chunks."""
    chunks: List[List[int]] = [[] for _ in range(min(n_chunks, len(items)))]
    for index in range(len(items)):
        chunks[index % len(chunks)].append(index)
    return chunks


class SubprocessPoolBackend:
    """Spawn one fresh worker process per chunk of the batch.

    Unlike ``process``, workers share nothing with the parent but a JSON
    file pair, so the same protocol can dispatch chunks to remote machines.
    The price is a cold interpreter start per chunk, which amortises over
    chunk size — exactly the trade a multi-machine pool makes.
    """

    name = "subprocess-pool"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        chunks = _split_chunks(items, _resolve_workers(self.workers, len(items)))
        records: List[Optional[TrialRecord]] = [None] * len(items)
        with tempfile.TemporaryDirectory(prefix="repro-subproc-") as tmp:
            env = _worker_env()
            procs: List[subprocess.Popen] = []
            out_paths: List[Path] = []
            for chunk_no, indices in enumerate(chunks):
                in_path = Path(tmp) / f"chunk{chunk_no}.in.json"
                out_path = Path(tmp) / f"chunk{chunk_no}.out.json"
                in_path.write_text(
                    json.dumps(
                        {
                            "schema": WORKER_SCHEMA,
                            "items": [
                                items[i].to_json_dict() for i in indices
                            ],
                        }
                    )
                )
                procs.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro.experiments.backends",
                            str(in_path), str(out_path),
                        ],
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                )
                out_paths.append(out_path)
            # Reap every worker before judging any of them: raising early
            # would orphan still-running siblings and delete the tempdir
            # from under them.
            stderrs = [proc.communicate()[1] for proc in procs]
            for chunk_no, (proc, indices) in enumerate(zip(procs, chunks)):
                if proc.returncode != 0:
                    raise ExperimentError(
                        f"subprocess-pool worker {chunk_no} exited with "
                        f"status {proc.returncode}: "
                        f"{stderrs[chunk_no].strip()[-2000:]}"
                    )
                payload = json.loads(out_paths[chunk_no].read_text())
                chunk_records = [
                    TrialRecord(**rec) for rec in payload["records"]
                ]
                if len(chunk_records) != len(indices):
                    raise ExperimentError(
                        f"subprocess-pool worker {chunk_no} returned "
                        f"{len(chunk_records)} record(s) for {len(indices)} item(s)"
                    )
                for index, record in zip(indices, chunk_records):
                    records[index] = record
        return records  # type: ignore[return-value]


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of one subprocess-pool worker.

    ``python -m repro.experiments.backends IN.json OUT.json`` reads a chunk
    of work items from ``IN.json``, runs them inline, and writes their
    records to ``OUT.json``.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print(
            "usage: python -m repro.experiments.backends IN.json OUT.json",
            file=sys.stderr,
        )
        return 2
    in_path, out_path = Path(argv[0]), Path(argv[1])
    payload = json.loads(in_path.read_text())
    if payload.get("schema") != WORKER_SCHEMA:
        print(f"unexpected work-item schema {payload.get('schema')!r}", file=sys.stderr)
        return 2
    items = [WorkItem.from_json_dict(data) for data in payload["items"]]
    records = [execute_work_item(item) for item in items]
    out_path.write_text(
        json.dumps(
            {"schema": WORKER_SCHEMA, "records": [asdict(rec) for rec in records]}
        )
    )
    return 0


# ---------------------------------------------------------------------------
# registry entries
# ---------------------------------------------------------------------------
register_backend(
    BackendSpec(
        name="inline",
        description="Run every trial in the current process (deterministic default).",
        factory=lambda workers: InlineBackend(),
    )
)
register_backend(
    BackendSpec(
        name="process",
        description="Fan trials out over a local ProcessPoolExecutor.",
        factory=lambda workers: ProcessPoolBackend(workers=workers),
    )
)
register_backend(
    BackendSpec(
        name="subprocess-pool",
        description=(
            "Spawn a fresh worker process per chunk, exchanging JSON "
            "(the stepping stone to multi-machine pools)."
        ),
        factory=lambda workers: SubprocessPoolBackend(workers=workers),
    )
)


if __name__ == "__main__":
    sys.exit(worker_main())
