"""Evaluation-subsystem tests: scenario registry, per-trial seeding, the
(serial and parallel) experiment runner, JSON results, and the CLI."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    TrialRecord,
    get_scenario,
    list_scenarios,
    placer_names,
    run_trial,
    scenario_names,
    trial_seed,
)
from repro.experiments.cli import main as cli_main


# ----------------------------------------------------------------- registry
def test_registry_has_at_least_five_distinct_scenarios():
    names = scenario_names()
    assert len(names) >= 5
    assert len(set(names)) == len(names)
    for spec in list_scenarios():
        assert spec.description


def test_unknown_scenario_and_placer_raise_experiment_error():
    with pytest.raises(ExperimentError):
        get_scenario("does-not-exist")
    with pytest.raises(ExperimentError):
        ExperimentConfig(scenarios=("smoke",), placers=("not-a-placer",))


def test_unknown_scenario_param_raises_experiment_error():
    with pytest.raises(ExperimentError):
        get_scenario("smoke").build(seed=0, bogus_param=3)


def test_config_validates_scenario_params_eagerly():
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",), scenario_params={"smoke": {"n_vm": 4}}
        )


def test_scenario_builds_are_seed_reproducible():
    first = get_scenario("smoke").build(seed=123)
    second = get_scenario("smoke").build(seed=123)
    assert [vm.host for vm in first.provider.vms()] == [
        vm.host for vm in second.provider.vms()
    ]
    assert first.apps[0].transfers() == second.apps[0].transfers()


# ------------------------------------------------------------------ seeding
def test_trial_seed_is_stable_and_placer_independent():
    seed = trial_seed(0, "smoke", 0)
    assert seed == trial_seed(0, "smoke", 0)
    assert seed != trial_seed(0, "smoke", 1)
    assert seed != trial_seed(1, "smoke", 0)
    # run_trial derives the same seed for every placer -> paired comparison.
    greedy = run_trial("smoke", "greedy", 0, 0)
    random_ = run_trial("smoke", "random", 0, 0)
    assert greedy.seed == random_.seed


def test_run_trial_captures_library_failures_as_error_records():
    record = run_trial("smoke", "greedy", 0, 0, scenario_params={"n_vms": 1})
    assert record.status == "error"
    assert "ExperimentError" in record.error


# ------------------------------------------------------------------- runner
def test_serial_sweep_produces_speedup_summary(tmp_path):
    config = ExperimentConfig(
        scenarios=("smoke",), placers=("greedy",), trials=2, workers=1
    )
    result = ExperimentRunner(config).run()
    # The baseline (random) is added to the grid automatically.
    assert set(result.placers) == {"greedy", "random"}
    assert len(result.records) == 4
    assert all(rec.ok for rec in result.records)
    greedy_records = result.ok_records("smoke", "greedy")
    assert all(rec.measurement_overhead_s > 0 for rec in greedy_records)
    assert all(rec.measurement_overhead_s == 0 for rec in result.ok_records("smoke", "random"))

    summary = result.summary()
    assert "speedup_vs_random" in summary["smoke"]["greedy"]
    assert summary["smoke"]["greedy"]["trials_ok"] == 2

    # JSON round trip.
    path = result.save(tmp_path / "out.json")
    loaded = ExperimentResult.from_json_dict(json.loads(path.read_text()))
    assert loaded.record("smoke", "greedy", 0).seed == trial_seed(0, "smoke", 0)
    assert loaded.summary()["smoke"]["greedy"]["trials_ok"] == 2


def test_sequence_trial_placement_wall_excludes_simulation():
    record = run_trial("multi-app-sequence", "greedy", 0, 0)
    assert record.ok
    assert 0 < record.placement_wall_s < record.trial_wall_s


def test_speedups_drop_undefined_zero_baseline_trials():
    def rec(placer, trial, total):
        return TrialRecord(
            scenario="s", placer=placer, trial=trial, seed=trial,
            total_running_time_s=total,
        )

    result = ExperimentResult(
        scenarios=["s"], placers=["round-robin", "random"], trials=2,
        base_seed=0, baseline="random",
        records=[
            rec("random", 0, 0.0), rec("round-robin", 0, 2.0),  # -inf: dropped
            rec("random", 1, 2.0), rec("round-robin", 1, 1.0),  # 0.5
        ],
    )
    assert result.speedups_vs_baseline("s", "round-robin") == [0.5]
    json.dumps(result.to_json_dict(), allow_nan=False)  # strict-JSON safe


def test_parallel_sweep_matches_grid_and_runs_all_cells():
    config = ExperimentConfig(
        scenarios=("smoke", "all-to-all"),
        placers=("greedy", "random"),
        trials=1,
        workers=2,
    )
    result = ExperimentRunner(config).run()
    assert len(result.records) == 4
    assert all(rec.ok for rec in result.records)
    # Records come back sorted regardless of completion order.
    keys = [(rec.scenario, rec.placer, rec.trial) for rec in result.records]
    assert keys == sorted(keys)


# ---------------------------------------------------------------------- CLI
def test_cli_list_json_names_every_scenario(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [s["name"] for s in payload["scenarios"]] == scenario_names()
    assert payload["placers"] == placer_names()


def test_cli_run_writes_structured_results(tmp_path, capsys):
    out = tmp_path / "results.json"
    code = cli_main(
        ["run", "--scenario", "smoke", "--trials", "1",
         "--placers", "greedy,random", "--output", str(out)]
    )
    assert code == 0
    data = json.loads(out.read_text())
    assert data["schema"] == "repro.experiments/result/v1"
    assert {rec["placer"] for rec in data["records"]} == {"greedy", "random"}
    assert "speedup_vs_random" in data["summary"]["smoke"]["greedy"]
    per_placer_times = {
        rec["placer"]: rec["total_running_time_s"] for rec in data["records"]
    }
    assert all(time >= 0 for time in per_placer_times.values())


def test_cli_run_rejects_unknown_scenario(capsys):
    assert cli_main(["run", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_run_rejects_param_key_no_scenario_declares(capsys):
    code = cli_main(["run", "--scenario", "smoke", "--param", "n_vmz=9"])
    assert code == 2
    assert "n_vmz" in capsys.readouterr().err


def test_cli_run_exits_nonzero_when_trials_fail(tmp_path, capsys):
    # n_vms=1 is below the scenario minimum, so every trial errors out.
    out = tmp_path / "failed.json"
    code = cli_main(
        ["run", "--scenario", "smoke", "--trials", "1",
         "--param", "n_vms=1", "--output", str(out)]
    )
    assert code == 1
    assert "trial(s) failed" in capsys.readouterr().err
    data = json.loads(out.read_text())
    assert all(rec["status"] == "error" for rec in data["records"])


def test_cli_bench_emits_machine_readable_summary(tmp_path, capsys):
    out = tmp_path / "BENCH_experiments.json"
    code = cli_main(
        ["bench", "--scenarios", "smoke", "--trials", "1", "--output", str(out)]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.experiments/bench/v1"
    assert payload["trials_ok"] == payload["trials_total"] == 2
    assert payload["total_wall_s"] >= 0
    assert "smoke" in payload["per_scenario"]
