"""Tracked micro- and end-to-end benchmarks for the hot paths.

The §6 sweep bottoms out in three hot paths — the max-min allocator, the
fluid simulator's event loop, and the greedy placer's candidate-rate scans
— and the paper's pitch is that the measurement+placement cycle must finish
in about 90 seconds to be usable, so speed *is* fidelity here.  This
package times those paths A/B against their pre-optimisation reference
implementations (which remain in the tree behind switches) and emits a
``BENCH_*.json``-style report so wins are measurable and cannot silently
regress.

Run it with::

    python -m repro.bench            # full run, writes BENCH_hotpath.json
    python -m repro.bench --quick    # small sizes, for CI smoke

The process exits non-zero when any optimised path *disagrees* with its
reference (allocator rates, fluid timelines, greedy placements, experiment
metrics) — correctness is checked on every benchmark run, speed is
reported.  See ``docs/performance.md`` for how to read the output.
"""

from repro.bench.benchmarks import (
    bench_allocator,
    bench_e2e_experiments,
    bench_fluid,
    bench_greedy,
    bench_mesh,
    bench_sweep_resume,
    run_benchmarks,
)
from repro.bench.modes import reference_mode

__all__ = [
    "bench_allocator",
    "bench_e2e_experiments",
    "bench_fluid",
    "bench_greedy",
    "bench_mesh",
    "bench_sweep_resume",
    "reference_mode",
    "run_benchmarks",
]
