"""Directed link objects and identifier helpers.

A physical cable between two switches is modelled as two *directed* links,
one per direction, because datacenter links are full duplex and the paper's
bottlenecks (hose-model egress limits, ToR uplinks) are directional.

Two kinds of synthetic links also appear in flow paths:

* **loopback links** carry intra-machine traffic between VMs that share a
  physical host (the near-4 Gbit/s paths observed on EC2, §4.2);
* **hose links** are virtual first-hop links that implement the provider's
  per-VM egress rate limit (§2.2, §4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TopologyError


class LinkKind(enum.Enum):
    """The role a directed link plays in the topology."""

    HOST_TOR = "host-tor"
    TOR_AGG = "tor-agg"
    AGG_AGG = "agg-agg"
    AGG_CORE = "agg-core"
    LOOPBACK = "loopback"
    HOSE = "hose"
    GENERIC = "generic"


@dataclass(frozen=True)
class Link:
    """A directed, capacitated link.

    Attributes:
        link_id: globally unique string identifier (``"u->v"`` for physical
            links, ``"loop:<host>"`` / ``"hose:<node>"`` for synthetic ones).
        src: upstream node name.
        dst: downstream node name (equal to ``src`` for loopback/hose links).
        capacity_bps: capacity in bits per second.
        kind: the :class:`LinkKind` of the link.
    """

    link_id: str
    src: str
    dst: str
    capacity_bps: float
    kind: LinkKind = LinkKind.GENERIC

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise TopologyError(
                f"link {self.link_id!r} must have positive capacity, "
                f"got {self.capacity_bps!r}"
            )


def directed_link_id(src: str, dst: str) -> str:
    """Identifier for the directed physical link from ``src`` to ``dst``."""
    return f"{src}->{dst}"


def loopback_link_id(host: str) -> str:
    """Identifier for the intra-host loopback link of ``host``."""
    return f"loop:{host}"


def hose_link_id(node: str) -> str:
    """Identifier for the virtual egress hose link of ``node``."""
    return f"hose:{node}"
