"""Discrete fault events layered onto a drifting cloud network.

The drift generators in :mod:`repro.service.timeline` model *smooth* rate
variation; real clouds also fail discretely — a link degrades for a while, a
VM is preempted and never comes back, a burst of packet-train probes is lost
or returns wild estimates.  A :class:`FaultTimeline` is a seeded, replayable
schedule of such events, attached to a provider via
:func:`attach_faults` (mirroring ``attach_timeline``): the provider consults
it from ``hose_rate`` and the probe paths, the
:class:`~repro.service.engine.PlacementService` subscribes to it at epoch
ticks and heals (re-place preempted apps, re-measure degraded links, coast
on forecasts through probe loss).

A timeline with **no events is inert by construction**: every hook
short-circuits before consuming randomness or perturbing a rate, so
zero-fault runs stay bit-identical to runs without a fault timeline at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import FaultError

#: Egress rate of a preempted VM: effectively dark, but non-zero so the
#: fluid simulator's positive-rate invariants hold while the service heals.
PREEMPTED_RATE_BPS = 1.0

_SCHEMA = "repro.faults/timeline/v1"


# ---------------------------------------------------------------------------
# Event types
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LinkDegradation:
    """A VM's egress rate is multiplied by ``multiplier`` over an interval.

    Active while ``start_s <= t < end_s``; overlapping degradations on the
    same VM compose multiplicatively.
    """

    vm: str
    start_s: float
    end_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise FaultError(
                f"degradation of {self.vm!r} must end after it starts "
                f"(start_s={self.start_s}, end_s={self.end_s})"
            )
        if not 0.0 < self.multiplier < 1.0:
            raise FaultError(
                f"degradation multiplier must be in (0, 1), got {self.multiplier}"
            )

    @property
    def effect_time_s(self) -> float:
        return self.start_s


@dataclass(frozen=True)
class VmPreemption:
    """A VM disappears at ``time_s`` and never returns.

    The provider keeps the handle alive (its hose collapses to
    :data:`PREEMPTED_RATE_BPS`) so in-flight simulation stays well-formed;
    the service removes the VM from its cluster and re-places affected
    applications at the next epoch tick.
    """

    vm: str
    time_s: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise FaultError(f"preemption time must be >= 0, got {self.time_s}")

    @property
    def effect_time_s(self) -> float:
        return self.time_s


@dataclass(frozen=True)
class ProbeLoss:
    """Packet-train probes of one ordered pair fail or go wild for a while.

    ``mode="fail"`` makes probes of ``(src, dst)`` raise (lost trains);
    ``mode="wild"`` makes them return ``factor`` times the true estimate
    (interrupt coalescing / burst compression artefacts, §3.1).  Active
    while ``start_s <= t < end_s``.  True transfer rates are unaffected —
    only the *measurement* of them.
    """

    src: str
    dst: str
    start_s: float
    end_s: float
    mode: str = "fail"
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise FaultError("probe-loss pair must not be a self pair")
        if self.end_s <= self.start_s:
            raise FaultError(
                f"probe loss on ({self.src!r}, {self.dst!r}) must end after "
                f"it starts (start_s={self.start_s}, end_s={self.end_s})"
            )
        if self.mode not in ("fail", "wild"):
            raise FaultError(
                f"probe-loss mode must be 'fail' or 'wild', got {self.mode!r}"
            )
        if self.mode == "wild" and (self.factor <= 0 or self.factor == 1.0):
            raise FaultError(
                f"wild probe factor must be positive and != 1, got {self.factor}"
            )

    @property
    def effect_time_s(self) -> float:
        return self.start_s


FaultEvent = Union[LinkDegradation, VmPreemption, ProbeLoss]

#: Deterministic ordering for events sharing an effect time.
_KIND_ORDER = {VmPreemption: 0, LinkDegradation: 1, ProbeLoss: 2}

_KIND_NAMES = {
    VmPreemption: "vm-preemption",
    LinkDegradation: "link-degradation",
    ProbeLoss: "probe-loss",
}


def _event_sort_key(event: FaultEvent) -> Tuple:
    if isinstance(event, VmPreemption):
        tail: Tuple = (event.vm,)
    elif isinstance(event, LinkDegradation):
        tail = (event.vm, event.end_s)
    else:
        tail = (event.src, event.dst, event.end_s)
    return (event.effect_time_s, _KIND_ORDER[type(event)], tail)


# ---------------------------------------------------------------------------
# The timeline
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultTimeline:
    """A replayable schedule of discrete fault events.

    Attributes:
        events: the events, stored sorted by (effect time, kind, target).
        generator: which generator produced it (``"recorded"`` for loaded
            or hand-built timelines) — documentation only.
    """

    events: Tuple[FaultEvent, ...] = ()
    generator: str = "recorded"

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, (LinkDegradation, VmPreemption, ProbeLoss)):
                raise FaultError(
                    f"unknown fault event type {type(event).__name__}"
                )
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_event_sort_key))
        )

    # ------------------------------------------------------------- inspection
    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def n_events(self) -> int:
        return len(self.events)

    def vms(self) -> List[str]:
        """Every VM named by any event (sorted)."""
        names = set()
        for event in self.events:
            if isinstance(event, ProbeLoss):
                names.update((event.src, event.dst))
            else:
                names.add(event.vm)
        return sorted(names)

    def events_between(self, t0: float, t1: float) -> List[FaultEvent]:
        """Events whose effect time falls in ``(t0, t1]``, in replay order."""
        return [e for e in self.events if t0 < e.effect_time_s <= t1]

    def pending_after(self, t: float) -> bool:
        """True if any event takes effect strictly after ``t``."""
        return any(e.effect_time_s > t for e in self.events)

    # ----------------------------------------------------------- rate effects
    def preempted(self, vm: str, t: float) -> bool:
        """True once ``vm`` has been preempted at or before ``t``."""
        return any(
            isinstance(e, VmPreemption) and e.vm == vm and e.time_s <= t
            for e in self.events
        )

    def preempted_vms(self, t: float) -> List[str]:
        """All VMs preempted at or before ``t`` (sorted)."""
        return sorted(
            {
                e.vm
                for e in self.events
                if isinstance(e, VmPreemption) and e.time_s <= t
            }
        )

    def degradation_factor(self, vm: str, t: float) -> float:
        """Product of all degradation multipliers active on ``vm`` at ``t``."""
        factor = 1.0
        for event in self.events:
            if (
                isinstance(event, LinkDegradation)
                and event.vm == vm
                and event.start_s <= t < event.end_s
            ):
                factor *= event.multiplier
        return factor

    def effective_hose_rate(self, vm: str, t: float, rate_bps: float) -> float:
        """Fault-adjusted egress rate of ``vm`` at ``t``.

        Preemption collapses the rate to :data:`PREEMPTED_RATE_BPS`;
        otherwise active degradations multiply in.  With no matching events
        this returns ``rate_bps`` unchanged.
        """
        if self.preempted(vm, t):
            return PREEMPTED_RATE_BPS
        return rate_bps * self.degradation_factor(vm, t)

    def probe_fault(
        self, src: str, dst: str, t: float
    ) -> Optional[Tuple[str, float]]:
        """Active probe fault for an ordered pair, or ``None``.

        Returns ``("fail", 0.0)`` when a probe of the pair must raise —
        probes touching a preempted VM always fail — or ``("wild", factor)``
        when it returns a distorted estimate.
        """
        if self.preempted(src, t) or self.preempted(dst, t):
            return ("fail", 0.0)
        for event in self.events:
            if (
                isinstance(event, ProbeLoss)
                and event.src == src
                and event.dst == dst
                and event.start_s <= t < event.end_s
            ):
                if event.mode == "fail":
                    return ("fail", 0.0)
                return ("wild", event.factor)
        return None

    # ------------------------------------------------------------ persistence
    def save(self, path: Union[str, Path]) -> None:
        """Write the timeline as JSON (see :meth:`load`)."""
        records = []
        for event in self.events:
            record: Dict[str, object] = {"kind": _KIND_NAMES[type(event)]}
            if isinstance(event, VmPreemption):
                record.update(vm=event.vm, time_s=event.time_s)
            elif isinstance(event, LinkDegradation):
                record.update(
                    vm=event.vm, start_s=event.start_s, end_s=event.end_s,
                    multiplier=event.multiplier,
                )
            else:
                record.update(
                    src=event.src, dst=event.dst, start_s=event.start_s,
                    end_s=event.end_s, mode=event.mode, factor=event.factor,
                )
            records.append(record)
        payload = {
            "schema": _SCHEMA,
            "generator": self.generator,
            "events": records,
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, source: Union[str, Path]) -> "FaultTimeline":
        """Read a timeline written by :meth:`save`.

        Raises:
            FaultError: unreadable file, wrong schema, or a malformed or
                incomplete event record (the message names the file and the
                missing field).
        """
        try:
            payload = json.loads(Path(source).read_text())
        except (OSError, ValueError) as exc:
            raise FaultError(f"cannot read fault timeline {source}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            raise FaultError(
                f"{source} is not a fault timeline file (schema {_SCHEMA})"
            )
        events: List[FaultEvent] = []
        for i, record in enumerate(payload.get("events", [])):
            try:
                kind = record["kind"]
                if kind == "vm-preemption":
                    events.append(
                        VmPreemption(
                            vm=str(record["vm"]), time_s=float(record["time_s"])
                        )
                    )
                elif kind == "link-degradation":
                    events.append(
                        LinkDegradation(
                            vm=str(record["vm"]),
                            start_s=float(record["start_s"]),
                            end_s=float(record["end_s"]),
                            multiplier=float(record["multiplier"]),
                        )
                    )
                elif kind == "probe-loss":
                    events.append(
                        ProbeLoss(
                            src=str(record["src"]),
                            dst=str(record["dst"]),
                            start_s=float(record["start_s"]),
                            end_s=float(record["end_s"]),
                            mode=str(record.get("mode", "fail")),
                            factor=float(record.get("factor", 1.0)),
                        )
                    )
                else:
                    raise FaultError(
                        f"malformed fault timeline {source}: event {i} has "
                        f"unknown kind {kind!r}"
                    )
            except KeyError as exc:
                raise FaultError(
                    f"malformed fault timeline {source}: event {i} is "
                    f"missing field {exc}"
                ) from exc
            except (TypeError, ValueError) as exc:
                raise FaultError(
                    f"malformed fault timeline {source}: event {i}: {exc}"
                ) from exc
        generator = payload.get("generator", "recorded")
        return cls(events=tuple(events), generator=str(generator))


# ---------------------------------------------------------------------------
# Generators (mirroring the drift-generator registry in service.timeline)
# ---------------------------------------------------------------------------
#: signature: (vms, n_epochs, rng, strength, epoch_s) -> events
FaultGenerator = Callable[
    [Sequence[str], int, np.random.Generator, float, float], List[FaultEvent]
]

#: Preemption keeps at least this many VMs alive so placement stays possible.
_MIN_SURVIVORS = 3


def _faults_none(vms, n_epochs, rng, strength, epoch_s):
    return []


def _faults_random_preempt(vms, n_epochs, rng, strength, epoch_s):
    """Preempt a random ``strength`` fraction of VMs at random mid-epochs.

    Never preempts into the last :data:`_MIN_SURVIVORS` VMs, and never in
    epoch 0 (the bootstrap measurement must see a healthy mesh).
    """
    budget = len(vms) - _MIN_SURVIVORS
    n_preempt = min(max(1, round(strength * len(vms))), budget)
    if n_preempt <= 0 or n_epochs < 2:
        return []
    victims = rng.choice(len(vms), size=n_preempt, replace=False)
    events: List[FaultEvent] = []
    for idx in sorted(victims):
        epoch = int(rng.integers(1, n_epochs))
        offset = float(rng.uniform(0.25, 0.75))
        events.append(
            VmPreemption(vm=vms[idx], time_s=(epoch + offset) * epoch_s)
        )
    return events


#: VMs per pseudo-rack when a caller has no topology to hand (allocation
#: order is the best rack proxy available: providers fill hosts in order).
_PSEUDO_RACK_SIZE = 4


def _faults_rack_outage(vms, n_epochs, rng, strength, epoch_s, racks=None):
    """Take out whole top-of-rack switches: correlated VM preemptions.

    Unlike ``random-preempt``, failures here are *correlated* — every VM
    under a dying ToR is preempted inside the same epoch window (with
    per-VM offsets, as preemption notices do not land simultaneously).
    ``strength`` is the fraction of racks lost.  At least one rack always
    survives, and a rack whose loss would leave fewer than
    :data:`_MIN_SURVIVORS` VMs alive is spared, so placement stays
    possible and the healing loop has somewhere to go.

    ``racks`` maps VM name -> rack identity; without it, VMs are grouped
    into pseudo-racks of :data:`_PSEUDO_RACK_SIZE` in allocation order.
    """
    if n_epochs < 2:
        return []
    by_rack: Dict[str, List[str]] = {}
    if racks:
        for vm in vms:
            by_rack.setdefault(str(racks.get(vm, "unracked")), []).append(vm)
    else:
        for i, vm in enumerate(vms):
            by_rack.setdefault(f"pseudo-rack-{i // _PSEUDO_RACK_SIZE}", []).append(vm)
    rack_names = sorted(by_rack)
    if len(rack_names) < 2:
        return []  # one rack: an outage would be a cluster outage
    n_out = min(max(1, round(strength * len(rack_names))), len(rack_names) - 1)
    doomed = rng.choice(len(rack_names), size=n_out, replace=False)
    events: List[FaultEvent] = []
    survivors = set(vms)
    for rack_idx in sorted(int(i) for i in doomed):
        members = by_rack[rack_names[rack_idx]]
        if len(survivors) - len(members) < _MIN_SURVIVORS:
            continue  # this rack is too big to lose; try the next victim
        epoch = int(rng.integers(1, n_epochs))
        for vm in sorted(members):
            offset = float(rng.uniform(0.25, 0.75))
            events.append(
                VmPreemption(vm=vm, time_s=(epoch + offset) * epoch_s)
            )
            survivors.discard(vm)
    return events


def _faults_link_flap(vms, n_epochs, rng, strength, epoch_s):
    """Give a ``strength`` fraction of VMs one or two degraded intervals."""
    n_flappy = min(max(1, round(strength * len(vms))), len(vms))
    if n_epochs < 2:
        return []
    flappy = rng.choice(len(vms), size=n_flappy, replace=False)
    events: List[FaultEvent] = []
    for idx in sorted(flappy):
        for _ in range(int(rng.integers(1, 3))):
            start_epoch = int(rng.integers(1, n_epochs))
            duration = float(rng.uniform(1.0, 2.0))
            events.append(
                LinkDegradation(
                    vm=vms[idx],
                    start_s=start_epoch * epoch_s,
                    end_s=(start_epoch + duration) * epoch_s,
                    multiplier=float(rng.uniform(0.15, 0.5)),
                )
            )
    return events


def _faults_lossy_probes(vms, n_epochs, rng, strength, epoch_s):
    """Each ordered pair independently suffers a one-epoch probe burst."""
    if n_epochs < 2:
        return []
    events: List[FaultEvent] = []
    for src in vms:
        for dst in vms:
            if src == dst or rng.random() >= strength:
                continue
            start_epoch = int(rng.integers(1, n_epochs))
            mode = "fail" if rng.random() < 0.7 else "wild"
            factor = float(rng.uniform(2.0, 6.0)) if mode == "wild" else 1.0
            events.append(
                ProbeLoss(
                    src=src, dst=dst,
                    start_s=start_epoch * epoch_s,
                    end_s=(start_epoch + 1) * epoch_s,
                    mode=mode, factor=factor,
                )
            )
    return events


_FAULTS: Dict[str, FaultGenerator] = {
    "none": _faults_none,
    "random-preempt": _faults_random_preempt,
    "rack-outage": _faults_rack_outage,
    "link-flap": _faults_link_flap,
    "lossy-probes": _faults_lossy_probes,
}

#: Generators that understand a VM -> rack mapping.
_RACK_AWARE = frozenset({"rack-outage"})

#: Per-generator default ``strength`` (fraction of VMs / pairs / racks).
_DEFAULT_STRENGTH: Dict[str, float] = {
    "none": 0.0,
    "random-preempt": 0.2,
    "rack-outage": 0.34,
    "link-flap": 0.3,
    "lossy-probes": 0.12,
}

FAULT_NAMES: Tuple[str, ...] = tuple(sorted(_FAULTS))


def generate_faults(
    vms: Sequence[str],
    n_epochs: int,
    faults: str = "random-preempt",
    seed: int = 0,
    strength: Optional[float] = None,
    epoch_s: float = 3600.0,
    racks: Optional[Mapping[str, str]] = None,
) -> FaultTimeline:
    """Generate a seeded :class:`FaultTimeline` for ``vms``.

    ``racks`` (VM name -> rack identity) feeds rack-aware generators such
    as ``rack-outage``; others ignore it.  Without a mapping those
    generators fall back to pseudo-racks in allocation order.

    Raises:
        FaultError: unknown generator, bad strength, or n_epochs < 1.
    """
    if faults not in _FAULTS:
        raise FaultError(
            f"unknown fault generator {faults!r}; choose from {list(FAULT_NAMES)}"
        )
    if n_epochs < 1:
        raise FaultError(f"n_epochs must be >= 1, got {n_epochs}")
    if epoch_s <= 0:
        raise FaultError(f"epoch_s must be positive, got {epoch_s}")
    if strength is None:
        strength = _DEFAULT_STRENGTH[faults]
    if strength < 0:
        raise FaultError(f"fault strength must be >= 0, got {strength}")
    if strength == 0.0 or faults == "none":
        return FaultTimeline(events=(), generator=faults)
    rng = np.random.default_rng(seed)
    if faults in _RACK_AWARE:
        events = _FAULTS[faults](
            list(vms), n_epochs, rng, strength, epoch_s, racks=racks
        )
    else:
        events = _FAULTS[faults](list(vms), n_epochs, rng, strength, epoch_s)
    return FaultTimeline(events=tuple(events), generator=faults)


def attach_faults(provider, faults: FaultTimeline) -> None:
    """Attach ``faults`` to a provider so rate and probe hooks consult it.

    Raises:
        FaultError: an event names a VM the provider has not allocated.
    """
    known = {vm.name for vm in provider.vms()}
    unknown = [vm for vm in faults.vms() if vm not in known]
    if unknown:
        raise FaultError(
            f"fault timeline names unknown VM(s) {unknown}; provider has "
            f"{sorted(known)}"
        )
    provider.fault_timeline = faults


__all__ = [
    "FAULT_NAMES",
    "FaultEvent",
    "FaultTimeline",
    "LinkDegradation",
    "PREEMPTED_RATE_BPS",
    "ProbeLoss",
    "VmPreemption",
    "attach_faults",
    "generate_faults",
]
