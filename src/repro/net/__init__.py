"""Datacenter network simulator substrate.

This package provides everything the Choreo reproduction needs from "the
network": multi-rooted tree topologies (:mod:`repro.net.topology`), routing
and hop counts (:mod:`repro.net.routing`, :mod:`repro.net.traceroute`),
max-min fair bandwidth sharing (:mod:`repro.net.fairness`), a flow-level
event-driven simulator (:mod:`repro.net.fluid`), hose-model egress rate
limiting (:mod:`repro.net.hose`), ON/OFF cross-traffic processes
(:mod:`repro.net.crosstraffic`), and a burst-level packet-train transmission
model (:mod:`repro.net.packets`).
"""

from repro.net.topology import (
    Topology,
    TreeSpec,
    build_multi_rooted_tree,
    build_dumbbell,
    build_two_rack_cloud,
    clear_route_cache,
    route_cache_info,
    set_route_cache_enabled,
    NodeKind,
)
from repro.net.links import Link, LinkKind, loopback_link_id, hose_link_id
from repro.net.flows import Flow, FlowState
from repro.net.alloc import IncrementalAllocator
from repro.net.fairness import FlowDemand, max_min_allocation
from repro.net.fluid import FluidSimulation, FluidResult, RateTimeline, set_default_allocator
from repro.net.hose import HoseModel
from repro.net.crosstraffic import OnOffSource, OnOffInterval, generate_on_intervals
from repro.net.packets import (
    TokenBucket,
    PathTransmissionModel,
    PacketTrainSpec,
    BurstObservation,
    TrainObservation,
    send_packet_train,
)
from repro.net.traceroute import traceroute_hop_count
from repro.net.latency import LatencyModel

__all__ = [
    "Topology",
    "TreeSpec",
    "build_multi_rooted_tree",
    "build_dumbbell",
    "build_two_rack_cloud",
    "NodeKind",
    "Link",
    "LinkKind",
    "loopback_link_id",
    "hose_link_id",
    "Flow",
    "FlowState",
    "FlowDemand",
    "IncrementalAllocator",
    "max_min_allocation",
    "set_default_allocator",
    "clear_route_cache",
    "route_cache_info",
    "set_route_cache_enabled",
    "FluidSimulation",
    "FluidResult",
    "RateTimeline",
    "HoseModel",
    "OnOffSource",
    "OnOffInterval",
    "generate_on_intervals",
    "TokenBucket",
    "PathTransmissionModel",
    "PacketTrainSpec",
    "BurstObservation",
    "TrainObservation",
    "send_packet_train",
    "traceroute_hop_count",
    "LatencyModel",
]
