"""Pluggable execution backends for experiment sweeps.

The runner used to hard-code its execution strategy (run inline, or fan out
over a ``ProcessPoolExecutor``).  This module turns that strategy into a
seam: an :class:`ExecutionBackend` maps :class:`~repro.experiments.trials.WorkItem`
batches to :class:`~repro.experiments.results.TrialRecord` lists, and
backends are registered by name so configs, the CLI, and result files can
address them as data.

Three backends ship in-tree:

* ``inline`` — run every trial in the current process (deterministic
  debugging default);
* ``process`` — fan out over a ``ProcessPoolExecutor`` (the strategy
  formerly hard-coded in the runner);
* ``subprocess-pool`` — split the batch into chunks and spawn one fresh
  ``python -m repro.experiments.backends`` worker process per chunk,
  exchanging JSON files.  Nothing in the protocol assumes a shared
  interpreter (or even a shared machine): the worker reads named work items
  and writes plain-JSON records, which is the stepping stone to running
  chunks over ssh on a multi-machine pool.

The subprocess pool is the only backend whose workers can *die* (crash,
OOM-kill, network partition on a future multi-machine pool), so it is the
one that carries fault tolerance: workers stream records as JSON Lines —
one line per completed trial, flushed — and the parent salvages whatever a
dead or hung worker managed to finish, then retries only the missing
trials in a fresh wave of workers.  Hung workers are detected with a
per-chunk timeout and killed.  Because every trial is a deterministic
function of its work item, a record salvaged from a crashed worker is
bit-identical to one from a healthy worker, and a sweep that loses workers
mid-flight still produces the exact result a clean run would.

Every backend must return records in the order of its input items, and a
backend given the same items must produce the same records (modulo host
wall-clock timings) — the equivalence tests hold all three to that.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent import futures
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.errors import ExperimentError
from repro.experiments.results import TrialRecord
from repro.experiments.trials import WorkItem, execute_work_item

#: Wire-format schema the subprocess worker speaks.  v2 replaced the single
#: output JSON document with JSON Lines (header, then one record per line,
#: flushed as produced) so a killed worker leaves a salvageable prefix.
WORKER_SCHEMA = "repro.experiments/worker/v2"

DEFAULT_BACKEND = "inline"

#: Default number of retry waves the subprocess pool runs for trials whose
#: worker died, beyond the initial wave.
DEFAULT_MAX_RETRIES = 2

#: Environment variables of the worker chaos hook (test-only): when both
#: are set, the *first* worker to win the marker-file race in
#: ``REPRO_WORKER_CHAOS_DIR`` misbehaves per ``REPRO_WORKER_CHAOS_MODE``
#: (``crash``: exit hard after its first record; ``hang``: sleep forever
#: after its first record).  Exactly one worker per chaos dir misbehaves,
#: so chaos tests are deterministic in *what* is lost even though process
#: scheduling is not.
CHAOS_DIR_ENV = "REPRO_WORKER_CHAOS_DIR"
CHAOS_MODE_ENV = "REPRO_WORKER_CHAOS_MODE"

#: Exit status of a chaos-crashed worker (distinct from argparse's 2).
CHAOS_EXIT_STATUS = 17


@runtime_checkable
class ExecutionBackend(Protocol):
    """Executes picklable work items; how and where is the backend's business."""

    name: str

    def submit(self, item: WorkItem) -> TrialRecord:
        """Run a single work item."""
        ...

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        """Run a batch; the result order matches the input order."""
        ...


@dataclass(frozen=True)
class BackendSpec:
    """A registered execution backend: metadata plus a factory.

    The factory takes the worker-count hint (``None`` = size to the batch,
    capped at the CPU count) and a backend-specific options mapping, and
    returns a ready :class:`ExecutionBackend`.  Backends without options
    must reject a non-empty mapping so typos fail loudly.
    """

    name: str
    description: str
    factory: Callable[[Optional[int], Mapping[str, object]], ExecutionBackend]


_BACKENDS: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register a backend spec; duplicate names raise :class:`ExperimentError`."""
    if spec.name in _BACKENDS:
        raise ExperimentError(f"backend {spec.name!r} is already registered")
    _BACKENDS[spec.name] = spec
    return spec


def get_backend(name: str) -> BackendSpec:
    """Look up a backend spec by name."""
    try:
        return _BACKENDS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from exc


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_BACKENDS)


def create_backend(
    name: str,
    workers: Optional[int] = None,
    options: Optional[Mapping[str, object]] = None,
) -> ExecutionBackend:
    """Instantiate a registered backend with a worker hint and options."""
    return get_backend(name).factory(workers, dict(options or {}))


def _reject_options(name: str, options: Mapping[str, object]) -> None:
    if options:
        raise ExperimentError(
            f"backend {name!r} accepts no options; got {sorted(options)}"
        )


def _resolve_workers(workers: Optional[int], n_items: int) -> int:
    if workers is not None:
        return max(1, workers)
    return max(1, min(n_items, os.cpu_count() or 1))


# ---------------------------------------------------------------------------
# inline
# ---------------------------------------------------------------------------
class InlineBackend:
    """Run every trial in the current process, one after another."""

    name = "inline"

    def submit(self, item: WorkItem) -> TrialRecord:
        return execute_work_item(item)

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        return [execute_work_item(item) for item in items]


# ---------------------------------------------------------------------------
# process
# ---------------------------------------------------------------------------
class ProcessPoolBackend:
    """Fan trials out over a ``concurrent.futures.ProcessPoolExecutor``."""

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        workers = _resolve_workers(self.workers, len(items))
        if workers == 1:
            return InlineBackend().map_trials(items)
        records: List[Optional[TrialRecord]] = [None] * len(items)
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(execute_work_item, item): index
                for index, item in enumerate(items)
            }
            for future in futures.as_completed(pending):
                records[pending[future]] = future.result()
        return records  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# subprocess-pool
# ---------------------------------------------------------------------------
def _worker_env() -> Dict[str, str]:
    """Child env with the parent's ``repro`` package importable.

    Test runs import ``repro`` from a source checkout via ``sys.path`` (not
    the environment), so the parent's import location is prepended to the
    child's ``PYTHONPATH`` explicitly.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def _split_chunks(items: Sequence, n_chunks: int) -> List[List[int]]:
    """Round-robin item indices into ``n_chunks`` non-empty chunks."""
    chunks: List[List[int]] = [[] for _ in range(min(n_chunks, len(items)))]
    for index in range(len(items)):
        chunks[index % len(chunks)].append(index)
    return chunks


def _salvage_records(out_path: Path) -> Dict[int, TrialRecord]:
    """Recover completed records from a worker's (possibly partial) output.

    The worker writes JSON Lines — a schema header, then one
    ``{"index": local_index, "record": {...}}`` line per completed trial,
    flushed immediately — so a worker killed mid-chunk leaves a valid
    prefix.  A truncated or garbled tail line (the worker died mid-write)
    is skipped, as is the whole file when the header is missing or from a
    different schema version.
    """
    try:
        lines = out_path.read_text().splitlines()
    except OSError:
        return {}
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except ValueError:
        return {}
    if not isinstance(header, dict) or header.get("schema") != WORKER_SCHEMA:
        return {}
    salvaged: Dict[int, TrialRecord] = {}
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            record = TrialRecord(**data["record"])
            index = int(data["index"])
        except (ValueError, KeyError, TypeError):
            continue  # truncated/garbled tail: everything before it stands
        salvaged[index] = record
    return salvaged


class SubprocessPoolBackend:
    """Spawn one fresh worker process per chunk of the batch.

    Unlike ``process``, workers share nothing with the parent but a JSON
    file pair, so the same protocol can dispatch chunks to remote machines.
    The price is a cold interpreter start per chunk, which amortises over
    chunk size — exactly the trade a multi-machine pool makes.

    Worker loss is tolerated, not fatal: each worker streams completed
    records (JSON Lines, flushed per trial), so when one crashes or hangs
    the parent salvages its finished prefix, kills it if needed, and
    re-runs only the missing trials in up to ``max_retries`` further waves.
    Because trials are deterministic in their work items, the assembled
    result is bit-identical to a run without failures.

    Args:
        workers: worker-count hint (``None`` sizes to the batch, capped at
            the CPU count).
        max_retries: retry waves for missing trials after the initial wave;
            only when a wave ends with trials still missing *and* the
            budget is spent does the sweep fail.
        chunk_timeout_s: wall-clock budget per worker process; a worker
            still running after it is presumed hung and killed (its
            completed prefix is salvaged).  ``None`` waits forever.
    """

    name = "subprocess-pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        chunk_timeout_s: Optional[float] = None,
    ):
        if max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise ExperimentError("chunk_timeout_s must be positive (or None)")
        self.workers = workers
        self.max_retries = max_retries
        self.chunk_timeout_s = chunk_timeout_s

    def submit(self, item: WorkItem) -> TrialRecord:
        return self.map_trials([item])[0]

    def map_trials(self, items: Sequence[WorkItem]) -> List[TrialRecord]:
        if not items:
            return []
        records: Dict[int, TrialRecord] = {}
        missing = list(range(len(items)))
        failures: List[str] = []
        for wave in range(self.max_retries + 1):
            failures = self._run_wave(items, missing, records, wave)
            missing = [i for i in range(len(items)) if i not in records]
            if not missing:
                break
        if missing:
            detail = "; ".join(failures[:4]) if failures else "no worker output"
            raise ExperimentError(
                f"subprocess-pool gave up on {len(missing)} trial(s) after "
                f"{self.max_retries + 1} wave(s): {detail}"
            )
        return [records[i] for i in range(len(items))]

    def _run_wave(
        self,
        items: Sequence[WorkItem],
        missing: Sequence[int],
        records: Dict[int, TrialRecord],
        wave: int,
    ) -> List[str]:
        """Run one wave of workers over the missing items.

        Salvages whatever each worker completed into ``records`` and
        returns the failure descriptions of workers that died, hung, or
        returned short — the caller decides whether another wave runs.
        """
        chunks = _split_chunks(missing, _resolve_workers(self.workers, len(missing)))
        failures: List[str] = []
        with tempfile.TemporaryDirectory(prefix="repro-subproc-") as tmp:
            env = _worker_env()
            procs: List[subprocess.Popen] = []
            out_paths: List[Path] = []
            for chunk_no, local_indices in enumerate(chunks):
                in_path = Path(tmp) / f"wave{wave}.chunk{chunk_no}.in.json"
                out_path = Path(tmp) / f"wave{wave}.chunk{chunk_no}.out.jsonl"
                in_path.write_text(
                    json.dumps(
                        {
                            "schema": WORKER_SCHEMA,
                            "items": [
                                items[missing[i]].to_json_dict()
                                for i in local_indices
                            ],
                        }
                    )
                )
                procs.append(
                    subprocess.Popen(
                        [
                            sys.executable, "-m", "repro.experiments.backends",
                            str(in_path), str(out_path),
                        ],
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                )
                out_paths.append(out_path)
            # Reap every worker before judging any of them: raising early
            # would orphan still-running siblings and delete the tempdir
            # from under them.  A worker that outlives its chunk budget is
            # presumed hung: kill it and salvage what it finished.
            outcomes: List[str] = []
            for proc in procs:
                try:
                    _, stderr = proc.communicate(timeout=self.chunk_timeout_s)
                    outcomes.append(
                        "ok" if proc.returncode == 0
                        else f"exited with status {proc.returncode}: "
                             f"{(stderr or '').strip()[-500:]}"
                    )
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.communicate()
                    outcomes.append(
                        f"hung past the {self.chunk_timeout_s:.0f}s chunk "
                        "timeout and was killed"
                    )
            for chunk_no, local_indices in enumerate(chunks):
                salvaged = _salvage_records(out_paths[chunk_no])
                for local, record in salvaged.items():
                    if 0 <= local < len(local_indices):
                        records[missing[local_indices[local]]] = record
                short = len(salvaged) < len(local_indices)
                if outcomes[chunk_no] != "ok" or short:
                    failures.append(
                        f"wave {wave} worker {chunk_no} "
                        f"({len(salvaged)}/{len(local_indices)} trial(s) "
                        f"salvaged): {outcomes[chunk_no]}"
                    )
        return failures


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of one subprocess-pool worker.

    ``python -m repro.experiments.backends IN.json OUT.jsonl`` reads a chunk
    of work items from ``IN.json``, runs them inline, and streams records to
    ``OUT.jsonl`` as JSON Lines — a schema header line, then one
    ``{"index": local_index, "record": {...}}`` line per completed trial,
    flushed immediately so the parent can salvage a dead worker's prefix.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print(
            "usage: python -m repro.experiments.backends IN.json OUT.jsonl",
            file=sys.stderr,
        )
        return 2
    in_path, out_path = Path(argv[0]), Path(argv[1])
    payload = json.loads(in_path.read_text())
    if payload.get("schema") != WORKER_SCHEMA:
        print(f"unexpected work-item schema {payload.get('schema')!r}", file=sys.stderr)
        return 2
    items = [WorkItem.from_json_dict(data) for data in payload["items"]]
    chaos_mode = _arm_chaos()
    with open(out_path, "w") as out:
        out.write(json.dumps({"schema": WORKER_SCHEMA}) + "\n")
        out.flush()
        for local_index, item in enumerate(items):
            record = execute_work_item(item)
            out.write(
                json.dumps({"index": local_index, "record": asdict(record)})
                + "\n"
            )
            out.flush()
            if chaos_mode == "crash":
                os._exit(CHAOS_EXIT_STATUS)
            if chaos_mode == "hang":
                time.sleep(3600)
    return 0


def _arm_chaos() -> Optional[str]:
    """Decide whether *this* worker misbehaves (see the chaos env docs).

    The marker file is created atomically, so across however many workers
    share the chaos dir exactly one arms itself; the rest (and every
    retry-wave worker) run clean.
    """
    chaos_dir = os.environ.get(CHAOS_DIR_ENV)
    mode = os.environ.get(CHAOS_MODE_ENV)
    if not chaos_dir or mode not in ("crash", "hang"):
        return None
    try:
        fd = os.open(
            os.path.join(chaos_dir, "chaos-fired"),
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
        os.close(fd)
    except (FileExistsError, OSError):
        return None
    return mode


# ---------------------------------------------------------------------------
# registry entries
# ---------------------------------------------------------------------------
register_backend(
    BackendSpec(
        name="inline",
        description="Run every trial in the current process (deterministic default).",
        factory=lambda workers, options: (
            _reject_options("inline", options), InlineBackend()
        )[1],
    )
)
register_backend(
    BackendSpec(
        name="process",
        description="Fan trials out over a local ProcessPoolExecutor.",
        factory=lambda workers, options: (
            _reject_options("process", options), ProcessPoolBackend(workers=workers)
        )[1],
    )
)


def _make_subprocess_pool(
    workers: Optional[int], options: Mapping[str, object]
) -> SubprocessPoolBackend:
    known = {"max_retries", "chunk_timeout_s"}
    unknown = set(options) - known
    if unknown:
        raise ExperimentError(
            f"backend 'subprocess-pool' got unknown option(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    try:
        max_retries = int(options.get("max_retries", DEFAULT_MAX_RETRIES))
        timeout = options.get("chunk_timeout_s")
        chunk_timeout_s = None if timeout is None else float(timeout)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"bad subprocess-pool option: {exc}") from exc
    return SubprocessPoolBackend(
        workers=workers, max_retries=max_retries, chunk_timeout_s=chunk_timeout_s
    )


register_backend(
    BackendSpec(
        name="subprocess-pool",
        description=(
            "Spawn a fresh worker process per chunk, exchanging JSON; "
            "salvages and retries work from crashed or hung workers "
            "(the stepping stone to multi-machine pools)."
        ),
        factory=_make_subprocess_pool,
    )
)


if __name__ == "__main__":
    sys.exit(worker_main())
