"""Million-flow engine properties: vector event loop + structured routing.

Two contracts underpin the large-scale fast paths:

* the vectorised fluid event loop must be *bit-identical* to the scalar
  loop (same completion times, remaining bytes, states, end time, and
  rate-timeline segments) on arbitrary workloads, and
* the arithmetic tree-topology router must reproduce the graph-search
  routes exactly, pair for pair, over entire host meshes.

Both are checked property-style over randomised instances here; the
benchmarks (``python -m repro.bench``) re-assert them at scale.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import random

import networkx as nx
import pytest

from repro.net.flows import Flow
from repro.net.fluid import (
    ALLOCATOR_REFERENCE,
    FluidSimulation,
    LOOP_SCALAR,
    LOOP_VECTOR,
    RateTimeline,
    SimulationError,
    loop_threshold,
    set_default_loop,
    set_loop_threshold,
)
from repro.net.hose import HoseModel
from repro.net.topology import (
    TreeSpec,
    _lazy_kth_shortest_path,
    build_multi_rooted_tree,
    clear_route_cache,
    set_route_cache_enabled,
    set_structured_routing_enabled,
    structured_routing_info,
)


def _timelines_equal(a: RateTimeline, b: RateTimeline) -> bool:
    if len(a.segments) != len(b.segments):
        return False
    return all(
        sa.start == sb.start and sa.end == sb.end and sa.rate_bps == sb.rate_bps
        for sa, sb in zip(a.segments, b.segments)
    )


def _assert_results_identical(reference, got, context=""):
    assert got.completion_times == reference.completion_times, context
    assert got.remaining_bytes == reference.remaining_bytes, context
    assert got.end_time == reference.end_time, context
    assert got.states == reference.states, context
    assert set(got.timelines) == set(reference.timelines), context
    for fid in reference.timelines:
        assert _timelines_equal(reference.timelines[fid], got.timelines[fid]), (
            context,
            fid,
            reference.timelines[fid].segments,
            got.timelines[fid].segments,
        )


class TestVectorLoopBitIdentity:
    """Scalar and vector event loops agree exactly, field for field."""

    N_INSTANCES = 200

    def _run_case(self, seed: int) -> None:
        rng = random.Random(seed)
        spec = TreeSpec(
            pods=rng.choice([1, 2, 3]),
            racks_per_pod=rng.choice([1, 2]),
            hosts_per_rack=rng.choice([2, 4]),
            num_cores=rng.choice([1, 2]),
        )
        topo = build_multi_rooted_tree(spec)
        hosts = topo.hosts()
        hose = None
        if rng.random() < 0.4:
            hose = HoseModel.uniform(hosts, rng.choice([0.5e9, 1e9]))
        sim_s = FluidSimulation(topo, hose=hose, loop=LOOP_SCALAR)
        sim_v = FluidSimulation(topo, hose=hose, loop=LOOP_VECTOR)
        for i in range(rng.randint(1, 40)):
            src = rng.choice(hosts)
            dst = rng.choice([h for h in hosts if h != src])
            start = rng.choice([0.0, rng.uniform(0, 2.0), rng.choice([0.5, 1.0])])
            if rng.random() < 0.3:
                # Unbounded flow; include zero-length and near-Zeno windows.
                end = start + rng.choice([0.0, 1e-13, rng.uniform(0.01, 2.0)])
                flow = Flow(
                    flow_id=f"u{i}", src=src, dst=dst, size_bytes=None,
                    start_time=start, end_time=end,
                )
            else:
                size = rng.choice(
                    [0.0, 1e-7, rng.uniform(1, 1e6), rng.choice([1e5, 2e5])]
                )
                max_rate = None
                if rng.random() < 0.2:
                    max_rate = rng.choice([1e6, 1e9, math.inf])
                flow = Flow(
                    flow_id=f"f{i}", src=src, dst=dst, size_bytes=size,
                    start_time=start, max_rate_bps=max_rate,
                )
            sim_s.add_flow(flow)
            sim_v.add_flow(flow)
        until = rng.uniform(0.0, 1.5) if rng.random() < 0.4 else None
        _assert_results_identical(
            sim_s.run(until=until), sim_v.run(until=until), context=f"seed={seed}"
        )

    def test_randomized_instances_bit_identical(self):
        for seed in range(self.N_INSTANCES):
            self._run_case(seed)


class TestLoopPlumbing:
    """Mode switches: defaults, thresholds, and the reference pairing."""

    def test_unknown_loop_rejected(self):
        topo = build_multi_rooted_tree(TreeSpec(1, 1, 2, 1))
        with pytest.raises(SimulationError):
            FluidSimulation(topo, loop="turbo")
        with pytest.raises(SimulationError):
            set_default_loop("turbo")

    def test_default_loop_round_trips(self):
        previous = set_default_loop(LOOP_SCALAR)
        try:
            assert set_default_loop(LOOP_VECTOR) == LOOP_SCALAR
        finally:
            set_default_loop(previous)

    def test_threshold_round_trips_and_validates(self):
        before = loop_threshold()
        previous = set_loop_threshold(7)
        try:
            assert previous == before
            assert loop_threshold() == 7
            with pytest.raises(SimulationError):
                set_loop_threshold(-1)
            assert loop_threshold() == 7
        finally:
            set_loop_threshold(previous)
        assert loop_threshold() == before

    def _loop_taken(self, monkeypatch, **kwargs) -> str:
        topo = build_multi_rooted_tree(TreeSpec(1, 1, 4, 1))
        sim = FluidSimulation(topo, **kwargs)
        hosts = topo.hosts()
        for i, (a, b) in enumerate(itertools.permutations(hosts[:3], 2)):
            sim.add_flow(Flow(
                flow_id=f"f{i}", src=a, dst=b, size_bytes=1e5, start_time=0.0,
            ))
        taken = []
        scalar, vector = FluidSimulation._run_scalar, FluidSimulation._run_vector
        monkeypatch.setattr(
            FluidSimulation, "_run_scalar",
            lambda self, until: taken.append("scalar") or scalar(self, until),
        )
        monkeypatch.setattr(
            FluidSimulation, "_run_vector",
            lambda self, until: taken.append("vector") or vector(self, until),
        )
        sim.run()
        assert len(taken) == 1
        return taken[0]

    def test_auto_obeys_the_flow_threshold(self, monkeypatch):
        previous = set_loop_threshold(0)
        try:
            assert self._loop_taken(monkeypatch, loop="auto") == "vector"
            set_loop_threshold(10_000)
            assert self._loop_taken(monkeypatch, loop="auto") == "scalar"
        finally:
            set_loop_threshold(previous)

    def test_reference_allocator_forces_the_scalar_loop(self, monkeypatch):
        taken = self._loop_taken(
            monkeypatch, loop=LOOP_VECTOR, allocator=ALLOCATOR_REFERENCE
        )
        assert taken == "scalar"


#: Assorted tree shapes: single rack, ECMP cores, asymmetric pod counts.
_ROUTING_SPECS = (
    TreeSpec(pods=1, racks_per_pod=1, hosts_per_rack=4, num_cores=1),
    TreeSpec(pods=2, racks_per_pod=2, hosts_per_rack=2, num_cores=2),
    TreeSpec(pods=2, racks_per_pod=2, hosts_per_rack=4, num_cores=3),
    TreeSpec(pods=3, racks_per_pod=2, hosts_per_rack=2, num_cores=4),
)


class TestStructuredRouting:
    """The arithmetic tree router reproduces graph search exactly."""

    @pytest.mark.parametrize("spec", _ROUTING_SPECS, ids=str)
    def test_matches_networkx_over_the_full_mesh(self, spec):
        fast = build_multi_rooted_tree(spec)
        assert structured_routing_info()["routers"] >= 1
        previous = set_structured_routing_enabled(False)
        previous_cache = set_route_cache_enabled(False)
        clear_route_cache()
        try:
            slow = build_multi_rooted_tree(spec)
            for src, dst in slow.host_pairs():
                expected = slow.node_path(src, dst)
                assert fast.node_path(src, dst) == expected, (src, dst)
                assert fast.hop_count(src, dst) == len(expected) - 1
        finally:
            set_route_cache_enabled(previous_cache)
            set_structured_routing_enabled(previous)

    @pytest.mark.parametrize("spec", _ROUTING_SPECS[1:3], ids=str)
    def test_path_links_matrix_agrees_with_path_links(self, spec):
        topo = build_multi_rooted_tree(spec)
        hosts = topo.hosts()
        pairs = topo.host_pairs() + [(h, h) for h in hosts[:2]]
        rows, lengths, link_ids = topo.path_links_matrix(pairs)
        assert rows.shape[0] == len(pairs) == len(lengths)
        for i, (src, dst) in enumerate(pairs):
            expected = [link.link_id for link in topo.path_links(src, dst)]
            got = [link_ids[j] for j in rows[i, : lengths[i]]]
            assert got == expected, (src, dst)
            assert (rows[i, lengths[i]:] == -1).all()

    def test_lazy_kth_path_matches_eager_sort(self):
        topo = build_multi_rooted_tree(_ROUTING_SPECS[3])
        graph = topo.graph
        hosts = topo.hosts()
        rng = random.Random(11)
        for src, dst in rng.sample(topo.host_pairs(), 25):
            eager = sorted(nx.all_shortest_paths(graph, src, dst))
            for k in range(len(eager)):
                assert _lazy_kth_shortest_path(graph, src, dst, k) == eager[k]
            digest = hashlib.sha256(f"{src}|{dst}".encode()).digest()
            k = int.from_bytes(digest[:4], "big") % len(eager)
            assert _lazy_kth_shortest_path(graph, src, dst) == eager[k]

    def test_disable_switch_round_trips(self):
        previous = set_structured_routing_enabled(False)
        try:
            assert structured_routing_info()["enabled"] == 0
            assert set_structured_routing_enabled(True) is False
        finally:
            set_structured_routing_enabled(previous)
