"""Bottleneck location and rate-limit detection (paper §3.3, §4.3).

Choreo determines which paths share bottlenecks by running concurrent bulk
connections: if connection A->B slows down significantly when C->D runs at
the same time, the two paths share a bottleneck.  Combined with
traceroute-based rack clustering and the multi-rooted-tree assumption
(§3.3.1), a handful of these tests reveal:

* whether the provider rate-limits at the source (hose model): connections
  from the *same* source always interfere and their sum stays constant,
  while connections between four distinct endpoints never interfere — this
  is exactly what §4.3 observes on EC2 and Rackspace;
* which racks would contend on their ToR uplink (rules 1 and 2 of §3.3.2),
  so one measurement generalises to the whole rack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError


# ---------------------------------------------------------------------------
# Interference rules of §3.3.2, expressed over rack/subtree localities.
# ---------------------------------------------------------------------------
def connections_interfere_at_tor(
    src_a: str, dst_a: str, src_c: str, dst_c: str,
    rack_of: Dict[str, str],
) -> bool:
    """Rule 1: interference when the bottleneck is the ToR uplink.

    Two connections A->B and C->D interfere if (a) they share a source, or
    (b) A and C are on the same rack and neither B nor D is on that rack.
    """
    if src_a == src_c:
        return True
    rack_a, rack_c = rack_of.get(src_a), rack_of.get(src_c)
    if rack_a is None or rack_a != rack_c:
        return False
    return rack_of.get(dst_a) != rack_a and rack_of.get(dst_c) != rack_a


def connections_interfere_at_core(
    src_a: str, dst_a: str, src_c: str, dst_c: str,
    subtree_of: Dict[str, str],
) -> bool:
    """Rule 2: potential interference when the bottleneck is the agg-to-core link.

    The connections potentially interfere if both originate in the same
    aggregation subtree and both must leave it.  (They may still not
    interfere if ECMP routes them through different aggregate switches.)
    """
    sub_a, sub_c = subtree_of.get(src_a), subtree_of.get(src_c)
    if sub_a is None or sub_a != sub_c:
        return False
    return subtree_of.get(dst_a) != sub_a and subtree_of.get(dst_c) != sub_a


@dataclass(frozen=True)
class InterferenceResult:
    """Outcome of one concurrent-connection interference test."""

    pair_a: Tuple[str, str]
    pair_b: Tuple[str, str]
    solo_rate_a_bps: float
    concurrent_rate_a_bps: float
    threshold: float

    @property
    def drop_fraction(self) -> float:
        """Fractional throughput loss of connection A when B runs concurrently."""
        if self.solo_rate_a_bps <= 0:
            return 0.0
        return max(
            0.0, 1.0 - self.concurrent_rate_a_bps / self.solo_rate_a_bps
        )

    @property
    def interferes(self) -> bool:
        """True when A slowed down by more than the threshold."""
        return self.drop_fraction > self.threshold


@dataclass
class BottleneckReport:
    """Summary of a bottleneck-location campaign (§4.3)."""

    same_source_results: List[InterferenceResult] = field(default_factory=list)
    distinct_endpoint_results: List[InterferenceResult] = field(default_factory=list)
    rack_clusters: List[List[str]] = field(default_factory=list)
    hose_rate_estimates_bps: Dict[str, float] = field(default_factory=dict)

    @property
    def same_source_interference_fraction(self) -> float:
        """Fraction of same-source tests that interfered."""
        if not self.same_source_results:
            return 0.0
        return sum(r.interferes for r in self.same_source_results) / len(
            self.same_source_results
        )

    @property
    def distinct_endpoint_interference_fraction(self) -> float:
        """Fraction of distinct-endpoint tests that interfered."""
        if not self.distinct_endpoint_results:
            return 0.0
        return sum(r.interferes for r in self.distinct_endpoint_results) / len(
            self.distinct_endpoint_results
        )

    @property
    def rate_limiting(self) -> str:
        """Classification of the provider's rate limiting.

        ``"hose"`` when same-source connections (almost) always interfere but
        distinct-endpoint connections (almost) never do — bottlenecks at the
        first hop; ``"shared-fabric"`` when distinct endpoints also interfere;
        ``"none"`` when nothing interferes.
        """
        same = self.same_source_interference_fraction
        distinct = self.distinct_endpoint_interference_fraction
        if same >= 0.9 and distinct <= 0.1:
            return "hose"
        if distinct > 0.1:
            return "shared-fabric"
        if same <= 0.1:
            return "none"
        return "mixed"


class BottleneckLocator:
    """Runs the §3.3/§4.3 bottleneck-location experiments against a provider."""

    def __init__(
        self,
        provider,
        duration_s: float = 5.0,
        interference_threshold: float = 0.25,
        rack_hop_threshold: int = 2,
        seed: int = 0,
    ):
        if duration_s <= 0:
            raise MeasurementError("duration must be positive")
        if not 0.0 < interference_threshold < 1.0:
            raise MeasurementError("interference_threshold must be in (0, 1)")
        self.provider = provider
        self.duration_s = duration_s
        self.interference_threshold = interference_threshold
        self.rack_hop_threshold = rack_hop_threshold
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------- primitives
    def measure_interference(
        self, pair_a: Tuple[str, str], pair_b: Tuple[str, str]
    ) -> InterferenceResult:
        """Does running ``pair_b`` concurrently slow ``pair_a`` down?"""
        solo = self.provider.run_netperf(*pair_a, duration=self.duration_s)
        concurrent = self.provider.concurrent_netperf(
            [pair_a, pair_b], duration=self.duration_s
        )
        return InterferenceResult(
            pair_a=pair_a,
            pair_b=pair_b,
            solo_rate_a_bps=solo,
            concurrent_rate_a_bps=concurrent[pair_a],
            threshold=self.interference_threshold,
        )

    def cluster_by_rack(self, vm_names: Sequence[str]) -> List[List[str]]:
        """Group VMs whose traceroute hop count suggests a shared rack."""
        parent = {name: name for name in vm_names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for a, b in itertools.combinations(vm_names, 2):
            if self.provider.traceroute(a, b) <= self.rack_hop_threshold:
                union(a, b)
        clusters: Dict[str, List[str]] = {}
        for name in vm_names:
            clusters.setdefault(find(name), []).append(name)
        return [sorted(members) for _, members in sorted(clusters.items())]

    # ----------------------------------------------------------------- driver
    def locate(
        self,
        vm_names: Sequence[str],
        n_same_source: int = 20,
        n_distinct: int = 20,
    ) -> BottleneckReport:
        """Run the full §4.3 experiment.

        ``n_distinct`` tests use four distinct VMs (two independent paths);
        ``n_same_source`` tests use two connections out of the same source.
        """
        names = list(vm_names)
        if len(names) < 4:
            raise MeasurementError("bottleneck location needs at least four VMs")
        report = BottleneckReport()

        for _ in range(n_distinct):
            a, b, c, d = self._rng.choice(names, size=4, replace=False)
            report.distinct_endpoint_results.append(
                self.measure_interference((str(a), str(b)), (str(c), str(d)))
            )

        for _ in range(n_same_source):
            a, b, c = self._rng.choice(names, size=3, replace=False)
            result = self.measure_interference((str(a), str(b)), (str(a), str(c)))
            report.same_source_results.append(result)
            # Under a hose model the sum of concurrent connections out of a
            # source stays (roughly) at the source's cap, so the solo rate is
            # itself the hose estimate.
            report.hose_rate_estimates_bps.setdefault(
                str(a), result.solo_rate_a_bps
            )

        report.rack_clusters = self.cluster_by_rack(names)
        return report
