"""Typed metric instruments and the process-wide registry.

Three instrument kinds, modelled on the Prometheus data model:

* :class:`Counter` — a monotonically increasing count (cache hits,
  leases granted, solver invocations);
* :class:`Gauge` — a value that goes up and down (active leases, the
  idle fraction of the slowest worker);
* :class:`Histogram` — a distribution of observations (span durations,
  batch sizes) bucketed on a fixed boundary ladder.

Instruments are plain objects owned by whichever component needs them
(an allocator, a result store, a lease scheduler); constructing one
registers it with the process-wide :class:`MetricsRegistry` under its
dotted name.  Several live instruments may share a name — a sweep that
opens three result stores has three ``repro.store.hits`` counters — and
the registry *sums* them at snapshot time, so the global view aggregates
while each owner keeps its per-instance numbers (the pre-existing
``.stats`` properties are thin views over the owner's instruments).

Registration holds weak references: when an owner is garbage collected
its instruments leave the registry, keeping long-lived processes (the
placement service, sweep workers) from accumulating dead stores.

Increments deliberately take no lock — ``+=`` on a float is atomic
enough under the GIL for statistics, and these sit on hot paths where a
lock would show up in the ``obs`` bench's overhead floor.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
    "registry",
]

#: Bucket ladder for duration histograms: 10 µs to ~2 minutes, roughly
#: half-decade steps.  Wide enough for a single allocator partial solve
#: and for a whole ILP placement phase.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 120.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


class _Instrument:
    """Base: a named instrument auto-registered with the global registry."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002 - mirrors prometheus client naming
        labels: Optional[Mapping[str, str]] = None,
        register: bool = True,
    ) -> None:
        if not name or any(c.isspace() for c in name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        if register:
            registry.register(self)

    # Subclasses fill these in.
    def value_dict(self) -> Dict[str, float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def merge_into(self, acc: Dict[str, float]) -> None:
        for key, value in self.value_dict().items():
            acc[key] = acc.get(key, 0.0) + value


class Counter(_Instrument):
    """Monotonic count.  ``inc()`` is the only mutator."""

    kind = "counter"

    def __init__(self, name, help="", labels=None, register=True):  # noqa: A002
        super().__init__(name, help, labels, register)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    @property
    def count(self) -> int:
        return int(self.value)

    def value_dict(self) -> Dict[str, float]:
        return {"total": self.value}


class Gauge(_Instrument):
    """A value that can move both ways (``set``/``inc``/``dec``)."""

    kind = "gauge"

    def __init__(self, name, help="", labels=None, register=True):  # noqa: A002
        super().__init__(name, help, labels, register)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def value_dict(self) -> Dict[str, float]:
        return {"value": self.value}


class Histogram(_Instrument):
    """Bucketed distribution with count/sum/min/max.

    Buckets are cumulative-upper-bound style (`le`), like Prometheus;
    observations above the last bound land only in the implicit
    ``+Inf`` bucket (tracked via ``count``).
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",  # noqa: A002
        labels=None,
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
        register=True,
    ) -> None:
        super().__init__(name, help, labels, register)
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    def value_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {"count": float(self.count), "sum": self.sum}
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            out[f"le_{bound:g}"] = float(bucket)
        return out

    def summary(self) -> Dict[str, float]:
        """Flat summary (no buckets) for human-facing snapshots."""
        out: Dict[str, float] = {"count": float(self.count), "sum": self.sum}
        if self.count:
            out["mean"] = self.sum / self.count
            out["min"] = float(self.min)
            out["max"] = float(self.max)
        return out


class MetricsRegistry:
    """Weak collection of every live instrument, summed on demand."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> list of weakrefs to instruments sharing that name.
        self._by_name: Dict[str, List[weakref.ref]] = {}

    # ------------------------------------------------------------ registration
    def register(self, instrument: _Instrument) -> None:
        with self._lock:
            self._by_name.setdefault(instrument.name, []).append(
                weakref.ref(instrument)
            )

    def _live(self) -> Dict[str, List[_Instrument]]:
        """Live instruments by name; prunes dead weakrefs as a side effect."""
        with self._lock:
            out: Dict[str, List[_Instrument]] = {}
            for name, refs in list(self._by_name.items()):
                live = [inst for inst in (ref() for ref in refs) if inst is not None]
                if live:
                    self._by_name[name] = [weakref.ref(i) for i in live]
                    out[name] = live
                else:
                    del self._by_name[name]
            return out

    def reset(self) -> None:
        """Forget every registered instrument (tests / fresh runs)."""
        with self._lock:
            self._by_name.clear()

    # --------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, object]:
        """All metrics, aggregated across same-named instruments.

        Counters and gauges collapse to a number; histograms to a
        ``{count, sum, mean, min, max}`` summary dict.  Keys are the
        dotted metric names, sorted, so the snapshot diff-s cleanly.
        """
        out: Dict[str, object] = {}
        for name, instruments in sorted(self._live().items()):
            first = instruments[0]
            if first.kind in ("counter", "gauge"):
                total = sum(inst.value for inst in instruments)
                out[name] = int(total) if float(total).is_integer() else total
            else:
                counts = sum(inst.count for inst in instruments)
                sums = sum(inst.sum for inst in instruments)
                mins = [inst.min for inst in instruments if inst.min is not None]
                maxs = [inst.max for inst in instruments if inst.max is not None]
                summary: Dict[str, float] = {"count": counts, "sum": sums}
                if counts:
                    summary["mean"] = sums / counts
                    summary["min"] = min(mins)
                    summary["max"] = max(maxs)
                out[name] = summary
        return out

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Dotted names become underscore names (``repro.store.hits`` →
        ``repro_store_hits``); counters gain the conventional ``_total``
        suffix; labels render as ``{k="v"}``.  Same-named instruments
        with identical labels are summed, distinct label sets emit one
        sample each.
        """
        lines: List[str] = []
        for name, instruments in sorted(self._live().items()):
            flat = name.replace(".", "_").replace("-", "_")
            kind = instruments[0].kind
            if instruments[0].help:
                lines.append(f"# HELP {flat} {instruments[0].help}")
            lines.append(f"# TYPE {flat} {kind}")
            by_labels: Dict[Tuple[Tuple[str, str], ...], List[_Instrument]] = {}
            for inst in instruments:
                by_labels.setdefault(inst.labels, []).append(inst)
            for labels, group in sorted(by_labels.items()):
                suffix = _render_labels(labels)
                if kind in ("counter", "gauge"):
                    total = sum(inst.value for inst in group)
                    metric = flat + ("_total" if kind == "counter" else "")
                    lines.append(f"{metric}{suffix} {_fmt(total)}")
                else:
                    counts = sum(inst.count for inst in group)
                    sums = sum(inst.sum for inst in group)
                    bounds = group[0].bounds
                    cumulative = [0] * len(bounds)
                    for inst in group:
                        if inst.bounds != bounds:
                            continue
                        for i, c in enumerate(inst.bucket_counts):
                            cumulative[i] += c
                    for bound, c in zip(bounds, cumulative):
                        bl = _render_labels(labels + (("le", f"{bound:g}"),))
                        lines.append(f"{flat}_bucket{bl} {c}")
                    bl = _render_labels(labels + (("le", "+Inf"),))
                    lines.append(f"{flat}_bucket{bl} {counts}")
                    lines.append(f"{flat}_sum{suffix} {_fmt(sums)}")
                    lines.append(f"{flat}_count{suffix} {counts}")
        return "\n".join(lines) + "\n"


def _render_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = list(labels)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


#: The process-wide registry every instrument self-registers with.
registry = MetricsRegistry()
