"""`repro.obs` — the unified telemetry layer.

One import gives instrumented code everything it needs::

    from repro import obs

    with obs.span("alloc.solve", mode="vector", links=n):
        ...                      # traced when REPRO_TRACE / --trace is on

    hits = obs.Counter("repro.store.hits")   # always-on, ~dict-increment cost
    hits.inc()

    obs.metrics.snapshot()       # {"repro.store.hits": 1, ...}
    obs.metrics.prometheus_text()  # exposition for GET /metrics

Three pillars:

* **spans** (:mod:`repro.obs.trace`) — nested timing events flushed to a
  JSONL file, off by default, enabled via ``REPRO_TRACE=path``, the
  unified CLI's ``--trace``, or :func:`configure`;
* **metrics** (:mod:`repro.obs.metrics`) — typed Counter/Gauge/Histogram
  instruments owned by components, aggregated by the process-wide
  :data:`metrics` registry; the pre-existing ad-hoc ``.stats`` dicts are
  now thin views over these;
* **analysis** (:mod:`repro.obs.report`) — ``python -m repro.obs report
  trace.jsonl`` turns a trace into a self/cumulative-time profile tree.

Tracing is pure observation: results of traced runs are bit-identical
to untraced runs (see the ``obs`` bench and docs/observability.md).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry as metrics,
)
from repro.obs.trace import (
    TRACE_ENV,
    WORKER_ID_ENV,
    configure,
    enabled,
    point,
    span,
    trace_path,
)

__all__ = [
    "TRACE_ENV",
    "WORKER_ID_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "configure",
    "enabled",
    "point",
    "span",
    "trace_path",
    "setup_logging",
    "add_observability_flags",
    "apply_observability_args",
]

_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_configured_logging = False


def setup_logging(level: int = logging.WARNING) -> None:
    """Attach one stderr handler to the ``repro`` logger tree.

    Idempotent: repeated calls only adjust the level, so library users
    who configured logging themselves are never double-handled.
    """
    global _configured_logging
    logger = logging.getLogger("repro")
    if not _configured_logging:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        logger.addHandler(handler)
        logger.propagate = False
        _configured_logging = True
    logger.setLevel(level)


def add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """Attach ``--trace``/``--log-level``/``-v`` to a (sub)parser."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="append span trace events (JSONL) to PATH; worker "
        "subprocesses inherit it via REPRO_TRACE and share the file "
        "(analyse with `python -m repro.obs report PATH`)",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["debug", "info", "warning", "error"],
        help="logging threshold for the repro.* loggers "
        "(default warning; overrides -v)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise log verbosity (-v = info, -vv = debug)",
    )


def apply_observability_args(args: argparse.Namespace) -> None:
    """Act on the flags declared by :func:`add_observability_flags`.

    Tolerates namespaces missing the flags (subcommands that do not take
    them), so every CLI entry point can call this unconditionally.
    """
    level = getattr(args, "log_level", None)
    verbose = getattr(args, "verbose", 0)
    if level:
        setup_logging(getattr(logging, level.upper()))
    elif verbose >= 2:
        setup_logging(logging.DEBUG)
    elif verbose == 1:
        setup_logging(logging.INFO)
    else:
        setup_logging(logging.WARNING)
    trace = getattr(args, "trace", None)
    if trace:
        configure(trace_path=trace)
