"""Max-min fair bandwidth allocation (progressive filling).

The paper's throughput model assumes TCP divides a bottleneck's rate equally
between bulk connections (§3.2: "TCP divides the bottleneck rate equally
between bulk connections in cloud networks"), which is exactly the max-min
fair allocation when every flow is backlogged.  The fluid simulator
(:mod:`repro.net.fluid`) recomputes this allocation whenever the set of
active flows changes.

The algorithm is the classic progressive-filling / water-filling procedure:
repeatedly find the most constrained link (smallest equal share among its
unfrozen flows), freeze every unfrozen flow crossing it at that share, remove
the consumed capacity, and iterate.  Flows may carry an individual
``max_rate`` cap (application-limited sources); capped flows freeze at their
cap as soon as the water level reaches it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class FlowDemand:
    """A flow's routing and cap, as seen by the allocator.

    Attributes:
        links: identifiers of the directed links the flow traverses.  An
            empty tuple means the flow uses no shared resource (its rate is
            only bounded by ``max_rate``, or unbounded).
        max_rate: optional cap on the flow's rate in bits/second.
    """

    links: Tuple[str, ...]
    max_rate: Optional[float] = None


def max_min_allocation(
    demands: Mapping[str, FlowDemand],
    capacities: Mapping[str, float],
) -> Dict[str, float]:
    """Compute the max-min fair rate for each flow.

    Args:
        demands: mapping of flow id to :class:`FlowDemand`.
        capacities: mapping of link id to capacity in bits/second.  Every
            link referenced by a demand must be present.

    Returns:
        Mapping of flow id to allocated rate (bits/second).  Flows that use
        no links and have no cap get ``math.inf``.

    Raises:
        SimulationError: if a demand references an unknown link.
    """
    for flow_id, demand in demands.items():
        for link_id in demand.links:
            if link_id not in capacities:
                raise SimulationError(
                    f"flow {flow_id!r} references unknown link {link_id!r}"
                )

    rates: Dict[str, float] = {}
    unfrozen = set(demands)

    # Flows that traverse no links are only limited by their own cap.
    for flow_id in list(unfrozen):
        if not demands[flow_id].links:
            cap = demands[flow_id].max_rate
            rates[flow_id] = math.inf if cap is None else cap
            unfrozen.discard(flow_id)

    remaining = {link_id: float(cap) for link_id, cap in capacities.items()}
    link_members: Dict[str, set] = {}
    for flow_id in unfrozen:
        for link_id in demands[flow_id].links:
            link_members.setdefault(link_id, set()).add(flow_id)

    while unfrozen:
        # The next "water level" is the smallest of: the equal share on any
        # link carrying unfrozen flows, and the smallest unfrozen flow cap.
        bottleneck_share = math.inf
        bottleneck_link: Optional[str] = None
        for link_id, members in link_members.items():
            active = members & unfrozen
            if not active:
                continue
            share = remaining[link_id] / len(active)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link_id

        capped_level = math.inf
        capped_flow: Optional[str] = None
        for flow_id in unfrozen:
            cap = demands[flow_id].max_rate
            if cap is not None and cap < capped_level:
                capped_level = cap
                capped_flow = flow_id

        if bottleneck_link is None and capped_flow is None:
            # Unfrozen flows remain but nothing constrains them; they are
            # effectively unbounded (should not happen for routed flows).
            for flow_id in unfrozen:
                rates[flow_id] = math.inf
            break

        if capped_level <= bottleneck_share:
            # A flow hits its own cap before any link saturates at this level.
            frozen = {capped_flow}
            level = capped_level
        else:
            frozen = {f for f in link_members[bottleneck_link] if f in unfrozen}
            level = bottleneck_share

        for flow_id in frozen:
            rates[flow_id] = level
            unfrozen.discard(flow_id)
            for link_id in demands[flow_id].links:
                remaining[link_id] = max(0.0, remaining[link_id] - level)

    return rates


def bottleneck_rate(
    links: Sequence[str], capacities: Mapping[str, float]
) -> float:
    """Capacity of the slowest link on a path (the path's raw bottleneck)."""
    if not links:
        return math.inf
    try:
        return min(capacities[link_id] for link_id in links)
    except KeyError as exc:
        raise SimulationError(f"unknown link {exc.args[0]!r}") from exc
