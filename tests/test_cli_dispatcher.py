"""Tests for the unified CLI surface (``python -m repro``) and the placer
registry facade.

Every subcommand must be reachable both through the top-level dispatcher
and through its historical ``python -m repro.<subsystem>`` alias, with
identical behaviour under a fixed seed; the shared flags must spell the
same everywhere; and malformed parameters must fail with actionable
messages, not stack traces.
"""

import json

import pytest

import repro
from repro.bench.__main__ import main as bench_main
from repro.cli import main as repro_main
from repro.cli import parse_params, parse_placer_params, parse_value
from repro.errors import ExperimentError, ServiceError
from repro.experiments.cli import main as experiments_main
from repro.experiments.placers import (
    PlacerSpec,
    get_placer,
    list_placers,
    placer_names,
    resolve_placer,
)
from repro.service.__main__ import main as service_main


class TestDispatcherRoundTrips:
    def test_experiments_list_identical_via_both_entries(self, capsys):
        assert experiments_main(["list", "--json"]) == 0
        via_alias = capsys.readouterr().out
        assert repro_main(["experiments", "list", "--json"]) == 0
        via_dispatcher = capsys.readouterr().out
        assert via_alias == via_dispatcher
        payload = json.loads(via_dispatcher)
        assert "smoke" in [s["name"] for s in payload["scenarios"]]

    def test_experiments_run_identical_under_fixed_seed(self, tmp_path, capsys):
        argv = [
            "run", "--scenario", "smoke", "--trials", "1", "--seed", "7",
            "--placers", "greedy,random",
        ]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert experiments_main(argv + ["--output", str(a)]) == 0
        assert repro_main(["experiments"] + argv + ["--output", str(b)]) == 0
        capsys.readouterr()

        def canonical(path):
            payload = json.loads(path.read_text())
            # Wall-clock fields legitimately differ between runs.
            for record in payload["records"]:
                for key in list(record):
                    if key.endswith("_wall_s") or key == "solver_stats":
                        record.pop(key)
            payload.pop("summary", None)
            return payload

        assert canonical(a) == canonical(b)

    def test_workers_spelling_still_accepted(self, tmp_path, capsys):
        code = experiments_main(
            ["run", "--scenario", "smoke", "--trials", "1", "--workers", "1",
             "--placers", "random", "--output", str(tmp_path / "r.json")]
        )
        capsys.readouterr()
        assert code == 0

    def test_bench_identical_via_both_entries(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert bench_main(
            ["--quick", "--only", "allocator", "--output", str(a)]
        ) == 0
        assert repro_main(
            ["bench", "--quick", "--only", "allocator", "--output", str(b)]
        ) == 0
        capsys.readouterr()
        pa, pb = json.loads(a.read_text()), json.loads(b.read_text())
        assert pa["all_matched"] and pb["all_matched"]
        bench_a, bench_b = pa["benches"]["allocator"], pb["benches"]["allocator"]
        assert bench_a["params"] == bench_b["params"]
        assert bench_a["max_relative_diff"] == bench_b["max_relative_diff"]

    def test_service_identical_via_both_entries(self, tmp_path, capsys):
        argv = [
            "run", "--param", "n_vms=4", "--param", "hours=2",
            "--param", "max_tasks=3", "--seed", "11", "--no-oracle",
        ]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert service_main(argv + ["--output", str(a)]) == 0
        assert repro_main(["service"] + argv + ["--output", str(b)]) == 0
        capsys.readouterr()

        def canonical(path):
            payload = json.loads(path.read_text())
            for key in ("placement_wall_s", "session_wall_s"):
                payload["report"].pop(key, None)
            return payload

        assert canonical(a) == canonical(b)

    def test_service_param_overrides_match_dedicated_flags(self, tmp_path, capsys):
        flags = [
            "run", "--n-vms", "4", "--hours", "2", "--max-tasks", "3",
            "--seed", "11", "--no-oracle", "--output", str(tmp_path / "a.json"),
        ]
        params = [
            "run", "--param", "n_vms=4", "--param", "hours=2",
            "--param", "max_tasks=3", "--seed", "11", "--no-oracle",
            "--output", str(tmp_path / "b.json"),
        ]
        assert service_main(flags) == 0
        assert service_main(params) == 0
        capsys.readouterr()
        a = json.loads((tmp_path / "a.json").read_text())
        b = json.loads((tmp_path / "b.json").read_text())
        assert a["report"]["apps"] == b["report"]["apps"]

    def test_dispatcher_requires_a_subsystem(self, capsys):
        with pytest.raises(SystemExit):
            repro_main([])
        capsys.readouterr()


class TestParamHelpers:
    def test_parse_value_casts(self):
        assert parse_value("true") is True
        assert parse_value("7") == 7
        assert parse_value("0.5") == 0.5
        assert parse_value("hose") == "hose"

    def test_parse_params_error_names_flag_and_shows_shape(self):
        with pytest.raises(ExperimentError) as excinfo:
            parse_params(["oops"])
        message = str(excinfo.value)
        assert "--param" in message and "KEY=VALUE" in message and "oops" in message

    def test_parse_placer_params_error_points_at_param_for_session_keys(self):
        with pytest.raises(ExperimentError) as excinfo:
            parse_placer_params(["time_limit_s=5"])
        message = str(excinfo.value)
        assert "PLACER:KEY=VALUE" in message
        assert "--param" in message  # redirects the common mix-up

    def test_parse_placer_params_canonicalises_aliases(self):
        parsed = parse_placer_params(
            ["choreo-optimal:time_limit_s=5", "choreo-greedy:cluster_threshold=64"]
        )
        assert parsed == {
            "ilp": {"time_limit_s": 5},
            "greedy": {"cluster_threshold": 64},
        }

    def test_service_rejects_unknown_session_param(self, capsys):
        code = service_main(["run", "--param", "n_vmz=4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "n_vmz" in err and "n_vms" in err and "--placer-param" in err

    def test_service_rejects_placer_params_for_other_placers(self, capsys):
        code = service_main(
            ["run", "--placer", "greedy", "--placer-param", "ilp:time_limit_s=5"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "ilp" in err and "greedy" in err

    def test_service_threads_placer_params_into_the_session(self, tmp_path, capsys):
        code = service_main(
            ["run", "--param", "n_vms=4", "--param", "hours=1",
             "--max-tasks", "3", "--no-oracle",
             "--placer-param", "choreo-greedy:cluster_threshold=2",
             "--output", str(tmp_path / "r.json")]
        )
        capsys.readouterr()
        assert code == 0


class TestPlacerFacade:
    def test_resolve_placer_canonicalises_aliases(self):
        assert resolve_placer("choreo-optimal").name == "ilp"
        assert resolve_placer("choreo-greedy").name == "greedy"
        assert resolve_placer("greedy").name == "greedy"

    def test_resolve_placer_unknown_name_lists_registry(self):
        with pytest.raises(ExperimentError) as excinfo:
            resolve_placer("nope")
        message = str(excinfo.value)
        assert "greedy" in message and "choreo-optimal" in message

    def test_list_placers_covers_registry_in_order(self):
        specs = list_placers()
        assert [spec.name for spec in specs] == placer_names()
        assert all(isinstance(spec, PlacerSpec) for spec in specs)

    def test_get_placer_remains_a_thin_wrapper(self):
        assert get_placer("choreo-greedy") is resolve_placer("greedy")

    def test_repro_package_reexports_facade_lazily(self):
        assert repro.resolve_placer is resolve_placer
        assert "resolve_placer" in repro.__all__
        assert "GreedyPlacer" in dir(repro)
        with pytest.raises(AttributeError):
            repro.no_such_symbol

    def test_curated_all_resolves_completely(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestServiceErrorType:
    def test_session_param_errors_are_service_errors(self):
        with pytest.raises(ServiceError):
            from repro.service.__main__ import _apply_session_overrides

            class Args:
                param = ["bogus=1"]

            _apply_session_overrides(Args())
