"""Run placed applications on a synthetic cloud (paper §6.1, §6.2).

``placement_to_flows`` converts a placement and a traffic matrix into
VM-level flows: every task-pair transfer whose endpoints landed on different
VMs becomes a network flow; transfers between tasks on the same VM never
touch the network (one of the main wins of network-aware placement).

``run_application`` / ``run_applications`` execute those flows on the
provider's fluid simulator and report per-application completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.provider import CloudProvider, VMFlow
from repro.core.placement.base import Placement
from repro.errors import PlacementError, SimulationError
from repro.workloads.application import Application


@dataclass
class ApplicationRun:
    """Outcome of running one placed application.

    Attributes:
        app_name: the application.
        start_time: when its transfers began.
        completion_time: absolute time the last of its flows finished; equal
            to ``start_time`` when the placement put every communicating
            task pair on the same VM (no network transfers at all).
        flow_completion_times: per-flow absolute completion times.
        colocated_bytes: bytes that never crossed the network because both
            endpoints shared a VM.
        network_bytes: bytes that did cross the network.
    """

    app_name: str
    start_time: float
    completion_time: float
    flow_completion_times: Dict[str, float] = field(default_factory=dict)
    colocated_bytes: float = 0.0
    network_bytes: float = 0.0

    @property
    def duration(self) -> float:
        """The application's running time (network-transfer time)."""
        return self.completion_time - self.start_time


def placement_to_flows(
    placement: Placement,
    app: Application,
    start_time: float = 0.0,
    flow_prefix: Optional[str] = None,
) -> Tuple[List[VMFlow], float]:
    """Convert one placed application into VM-level flows.

    Returns:
        ``(flows, colocated_bytes)`` — transfers whose endpoints share a VM
        produce no flow and are accounted in ``colocated_bytes``.
    """
    prefix = flow_prefix if flow_prefix is not None else app.name
    flows: List[VMFlow] = []
    colocated = 0.0
    for index, (src_task, dst_task, volume) in enumerate(app.transfers()):
        src_vm = placement.machine_of(src_task)
        dst_vm = placement.machine_of(dst_task)
        if src_vm == dst_vm:
            colocated += volume
            continue
        flows.append(
            VMFlow(
                flow_id=f"{prefix}:{index}:{src_task}->{dst_task}",
                src_vm=src_vm,
                dst_vm=dst_vm,
                size_bytes=volume,
                start_time=start_time,
                tag=app.name,
            )
        )
    return flows, colocated


def run_application(
    provider: CloudProvider,
    placement: Placement,
    app: Application,
    start_time: float = 0.0,
    background: Sequence[VMFlow] = (),
) -> ApplicationRun:
    """Run one placed application (optionally with background flows)."""
    runs = run_applications(
        provider,
        placements={app.name: placement},
        apps=[app],
        start_times={app.name: start_time},
        background=background,
    )
    return runs[app.name]


def run_applications(
    provider: CloudProvider,
    placements: Mapping[str, Placement],
    apps: Sequence[Application],
    start_times: Optional[Mapping[str, float]] = None,
    background: Sequence[VMFlow] = (),
) -> Dict[str, ApplicationRun]:
    """Run several placed applications together on one provider network.

    Args:
        placements: one placement per application name.
        apps: the applications (must all appear in ``placements``).
        start_times: per-application start times; defaults to each
            application's own ``start_time`` attribute.
        background: extra flows sharing the network (e.g. another tenant).

    Returns:
        Mapping of application name to its :class:`ApplicationRun`.
    """
    if not apps:
        raise SimulationError("run_applications needs at least one application")
    all_flows: List[VMFlow] = list(background)
    per_app_flows: Dict[str, List[str]] = {}
    per_app_colocated: Dict[str, float] = {}
    per_app_network_bytes: Dict[str, float] = {}
    starts: Dict[str, float] = {}

    for app in apps:
        if app.name not in placements:
            raise PlacementError(f"no placement supplied for application {app.name!r}")
        start = (
            start_times[app.name]
            if start_times is not None and app.name in start_times
            else app.start_time
        )
        starts[app.name] = start
        flows, colocated = placement_to_flows(
            placements[app.name], app, start_time=start
        )
        per_app_flows[app.name] = [flow.flow_id for flow in flows]
        per_app_colocated[app.name] = colocated
        per_app_network_bytes[app.name] = sum(flow.size_bytes or 0.0 for flow in flows)
        all_flows.extend(flows)

    result = provider.simulate(all_flows) if all_flows else None

    runs: Dict[str, ApplicationRun] = {}
    for app in apps:
        flow_ids = per_app_flows[app.name]
        completions = {}
        if result is not None:
            completions = {fid: result.completion_time(fid) for fid in flow_ids}
        completion_time = max(completions.values(), default=starts[app.name])
        runs[app.name] = ApplicationRun(
            app_name=app.name,
            start_time=starts[app.name],
            completion_time=completion_time,
            flow_completion_times=completions,
            colocated_bytes=per_app_colocated[app.name],
            network_bytes=per_app_network_bytes[app.name],
        )
    return runs
