"""Indexed, incremental max-min fair allocation engine.

:func:`repro.net.fairness.max_min_allocation` is the reference
progressive-filling implementation: it receives plain string-keyed mappings,
rebuilds its ``link -> members`` index on every call, and intersects member
sets against the unfrozen set at every water-filling step.  That is fine for
a one-off allocation, but the fluid simulator re-solves after *every* event
(a flow starting, finishing, or being switched off), so almost all of that
work is repeated with a nearly identical flow set.

:class:`IncrementalAllocator` keeps the state the solver needs *between*
solves:

* link ids and flow ids are interned to dense integer slots once;
* per-link member sets, member counts, and capacities live in flat lists
  indexed by those slots;
* :meth:`add_flow` / :meth:`remove_flow` apply deltas in O(path length);
* :meth:`solve` runs progressive filling over integer indices (counters
  instead of set intersections, a lazy heap for flow caps) and caches its
  result until the flow set changes again.

The solver performs the *same* floating-point operations in the same
per-flow order as the reference implementation, so its rates are
bit-identical on any instance where the reference's own (set-iteration-
order-dependent) tie-breaks do not matter — ``tests/test_hotpath.py``
checks agreement within 1e-9 on randomized instances, and
``python -m repro.bench`` re-checks it on every benchmark run.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.net.fairness import FlowDemand

__all__ = ["IncrementalAllocator"]


class IncrementalAllocator:
    """Max-min fair allocator with O(path) flow add/remove deltas.

    Args:
        capacities: mapping of link id to capacity in bits/second.  The link
            universe is fixed at construction; flows may only reference these
            links.
    """

    def __init__(self, capacities: Mapping[str, float]) -> None:
        self._link_ids: List[str] = []
        self._link_index: Dict[str, int] = {}
        self._capacity: List[float] = []
        for link_id, cap in capacities.items():
            self._link_index[link_id] = len(self._link_ids)
            self._link_ids.append(link_id)
            self._capacity.append(float(cap))
        # Flow slots: a free-list keeps slot indices dense under churn.
        self._flow_slot: Dict[str, int] = {}
        self._slot_name: List[str] = []
        self._slot_links: List[Tuple[int, ...]] = []  # with duplicates, if any
        self._slot_unique_links: List[Tuple[int, ...]] = []
        self._slot_cap: List[Optional[float]] = []
        self._free_slots: List[int] = []
        # Per-link membership (flow slots currently crossing the link) and a
        # refcount of links in use, so solves touch only occupied links.
        self._members: List[Set[int]] = [set() for _ in self._link_ids]
        self._link_use: Dict[int, int] = {}
        # Flows whose path repeats a link break the share-heap monotonicity
        # (freezing subtracts the level once per occurrence, so a share can
        # shrink); while any such flow is registered, solve() selects
        # bottlenecks by linear scan instead.
        self._dup_link_flows = 0
        self._solution: Optional[Dict[str, float]] = None

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._flow_slot)

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._flow_slot

    def flow_ids(self) -> List[str]:
        """Ids of the flows currently registered."""
        return list(self._flow_slot)

    # ------------------------------------------------------------- mutation
    def add_flow(
        self,
        flow_id: str,
        links: Sequence[str],
        max_rate: Optional[float] = None,
    ) -> None:
        """Register a flow crossing ``links`` with an optional rate cap.

        Raises:
            SimulationError: on duplicate flow ids or unknown links.
        """
        if flow_id in self._flow_slot:
            raise SimulationError(f"duplicate flow id {flow_id!r}")
        indexed: List[int] = []
        for link_id in links:
            index = self._link_index.get(link_id)
            if index is None:
                raise SimulationError(
                    f"flow {flow_id!r} references unknown link {link_id!r}"
                )
            indexed.append(index)
        link_tuple = tuple(indexed)
        # The reference subtracts the frozen level once per *occurrence* but
        # counts each flow once per link, so keep both views when a path
        # repeats a link (it normally never does).
        unique = (
            link_tuple
            if len(set(link_tuple)) == len(link_tuple)
            else tuple(dict.fromkeys(link_tuple))
        )
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_name[slot] = flow_id
            self._slot_links[slot] = link_tuple
            self._slot_unique_links[slot] = unique
            self._slot_cap[slot] = max_rate
        else:
            slot = len(self._slot_name)
            self._slot_name.append(flow_id)
            self._slot_links.append(link_tuple)
            self._slot_unique_links.append(unique)
            self._slot_cap.append(max_rate)
        self._flow_slot[flow_id] = slot
        if unique is not link_tuple:
            self._dup_link_flows += 1
        for index in unique:
            self._members[index].add(slot)
            self._link_use[index] = self._link_use.get(index, 0) + 1
        self._solution = None

    def add_demand(self, flow_id: str, demand: FlowDemand) -> None:
        """Register a flow from a :class:`~repro.net.fairness.FlowDemand`."""
        self.add_flow(flow_id, demand.links, demand.max_rate)

    def remove_flow(self, flow_id: str) -> None:
        """Forget a flow previously registered with :meth:`add_flow`."""
        slot = self._flow_slot.pop(flow_id, None)
        if slot is None:
            raise SimulationError(f"unknown flow {flow_id!r}")
        if self._slot_unique_links[slot] is not self._slot_links[slot]:
            self._dup_link_flows -= 1
        for index in self._slot_unique_links[slot]:
            self._members[index].discard(slot)
            left = self._link_use[index] - 1
            if left:
                self._link_use[index] = left
            else:
                del self._link_use[index]
        self._slot_name[slot] = ""
        self._slot_links[slot] = ()
        self._slot_unique_links[slot] = ()
        self._slot_cap[slot] = None
        self._free_slots.append(slot)
        self._solution = None

    def clear(self) -> None:
        """Remove every flow (capacities are kept)."""
        self._flow_slot.clear()
        self._slot_name.clear()
        self._slot_links.clear()
        self._slot_unique_links.clear()
        self._slot_cap.clear()
        self._free_slots.clear()
        for members in self._members:
            members.clear()
        self._link_use.clear()
        self._dup_link_flows = 0
        self._solution = None

    # --------------------------------------------------------------- solve
    def solve(self) -> Dict[str, float]:
        """Max-min fair rates for the registered flows (cached between edits).

        Returns the same mapping a reference
        :func:`~repro.net.fairness.max_min_allocation` call over the current
        flow set would; callers must treat it as read-only.
        """
        if self._solution is not None:
            return self._solution

        rates: Dict[str, float] = {}
        unfrozen: List[int] = []
        for flow_id, slot in self._flow_slot.items():
            if self._slot_links[slot]:
                unfrozen.append(slot)
            else:
                # Flows that traverse no links are only limited by their cap.
                cap = self._slot_cap[slot]
                rates[flow_id] = math.inf if cap is None else cap

        # Working copies for only the links currently in use.
        counts: Dict[int, int] = dict(self._link_use)
        capacity = self._capacity
        remaining: Dict[int, float] = {
            index: capacity[index] for index in counts
        }

        frozen = bytearray(len(self._slot_name))
        cap_heap: List[Tuple[float, int]] = [
            (self._slot_cap[slot], slot)
            for slot in unfrozen
            if self._slot_cap[slot] is not None
        ]
        heapq.heapify(cap_heap)
        # Lazy heap of per-link equal shares.  During progressive filling a
        # link's share never decreases (each frozen flow removes at most one
        # share's worth of capacity and one member), so stale entries are
        # safe: they pop early, get corrected in place, and re-sift.  A flow
        # that crosses the same link twice voids that invariant (freezing it
        # drains two shares from one member), so fall back to scanning.
        use_share_heap = self._dup_link_flows == 0
        share_heap: List[Tuple[float, int]] = []
        if use_share_heap:
            share_heap = [
                (remaining[index] / count, index)
                for index, count in counts.items()
            ]
            heapq.heapify(share_heap)

        slot_name = self._slot_name
        slot_links = self._slot_links
        slot_unique = self._slot_unique_links
        n_left = len(unfrozen)
        while n_left:
            # The next "water level" is the smallest of: the equal share on
            # any link carrying unfrozen flows, and the smallest unfrozen cap.
            bottleneck_share = math.inf
            bottleneck_link = -1
            if use_share_heap:
                while share_heap:
                    share, index = share_heap[0]
                    count = counts[index]
                    if count <= 0:
                        heapq.heappop(share_heap)
                        continue
                    current = remaining[index] / count
                    if current > share:  # stale entry: correct and re-sift
                        heapq.heapreplace(share_heap, (current, index))
                        continue
                    bottleneck_share = current
                    bottleneck_link = index
                    break
            else:
                for index, count in counts.items():
                    if count <= 0:
                        continue
                    share = remaining[index] / count
                    if share < bottleneck_share:
                        bottleneck_share = share
                        bottleneck_link = index

            while cap_heap and frozen[cap_heap[0][1]]:
                heapq.heappop(cap_heap)

            if cap_heap and cap_heap[0][0] <= bottleneck_share:
                # A flow hits its own cap before any link saturates.
                level, capped_slot = heapq.heappop(cap_heap)
                to_freeze = [capped_slot]
            elif bottleneck_link >= 0:
                if use_share_heap:
                    # Freezing drains the bottleneck link, so drop its entry.
                    heapq.heappop(share_heap)
                level = bottleneck_share
                to_freeze = [
                    slot
                    for slot in self._members[bottleneck_link]
                    if not frozen[slot]
                ]
            else:
                # Unfrozen flows remain but nothing constrains them.
                for slot in unfrozen:
                    if not frozen[slot]:
                        rates[slot_name[slot]] = math.inf
                break

            for slot in to_freeze:
                frozen[slot] = 1
                n_left -= 1
                rates[slot_name[slot]] = level
                for index in slot_links[slot]:
                    left = remaining[index] - level
                    remaining[index] = left if left > 0.0 else 0.0
                for index in slot_unique[slot]:
                    counts[index] -= 1

        self._solution = rates
        return rates
