"""Completion-time estimation for a candidate placement (Appendix).

The paper's objective is the time taken by the longest-running flow: for
every set of flows sharing a bottleneck link with rate ``R`` transferring
``b_1..b_k`` bytes, the set takes ``sum(b_i) / R``; the application's
completion time is the maximum over all bottlenecks, and Choreo minimises
that over placements.

Under the hose model (what §4.4 finds on EC2 and Rackspace), the bottleneck
shared by flows is the source VM's egress cap; under the pipe model every
machine pair is its own bottleneck.  Both are implemented so the ILP, the
greedy placer, and the ablation benches can use the same estimator.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from repro.core.network_profile import NetworkProfile
from repro.errors import PlacementError
from repro.units import BITS_PER_BYTE
from repro.workloads.application import Application


def machine_pair_bytes(
    assignments: Mapping[str, str], app: Application
) -> Dict[Tuple[str, str], float]:
    """Aggregate task-to-task bytes into machine-to-machine bytes (``D = X^T B X``).

    Args:
        assignments: mapping of task name to machine name.
        app: the application whose traffic matrix is aggregated.

    Returns:
        Mapping of ordered machine pair to bytes, including intra-machine
        pairs (``(m, m)``).
    """
    data: Dict[Tuple[str, str], float] = {}
    for src_task, dst_task, volume in app.transfers():
        try:
            src_machine = assignments[src_task]
            dst_machine = assignments[dst_task]
        except KeyError as exc:
            raise PlacementError(
                f"task {exc.args[0]!r} has no machine assignment"
            ) from exc
        key = (src_machine, dst_machine)
        data[key] = data.get(key, 0.0) + volume
    return data


def estimate_completion_time(
    assignments: Mapping[str, str],
    app: Application,
    profile: NetworkProfile,
    model: str = "hose",
) -> float:
    """Estimated completion time (seconds) of ``app`` under a placement.

    Args:
        assignments: mapping of task name to machine (VM) name.
        app: the application being placed.
        profile: measured network profile.
        model: ``"hose"`` — flows out of the same machine share its egress
            cap; ``"pipe"`` — flows on the same ordered machine pair share
            that pair's measured rate; independent pairs never interfere.

    Returns:
        The estimated completion time of the slowest bottleneck, in seconds.
        Zero when the application transfers no data across machines.
    """
    if model not in ("hose", "pipe"):
        raise PlacementError(f"unknown completion-time model {model!r}")
    data = machine_pair_bytes(assignments, app)
    if not data:
        return 0.0

    worst = 0.0
    if model == "pipe":
        for (src, dst), volume in data.items():
            rate = profile.rate(src, dst)
            if math.isinf(rate):
                continue
            worst = max(worst, volume * BITS_PER_BYTE / rate)
        return worst

    # Hose model: all egress of one machine shares that machine's cap, and
    # intra-machine transfers use the (fast) intra-VM path.
    egress: Dict[str, float] = {}
    for (src, dst), volume in data.items():
        if src == dst:
            if not math.isinf(profile.intra_vm_rate_bps):
                worst = max(
                    worst, volume * BITS_PER_BYTE / profile.intra_vm_rate_bps
                )
            continue
        egress[src] = egress.get(src, 0.0) + volume
    for machine, volume in egress.items():
        rate = profile.hose_rate(machine)
        if math.isinf(rate):
            continue
        worst = max(worst, volume * BITS_PER_BYTE / rate)
    return worst
