"""Round-trip time model.

Only the Mathis-formula half of the paper's throughput estimator needs an
RTT (§3.1: ``MSS * C / (RTT * sqrt(loss))``), and datacenter RTTs are
dominated by per-switch forwarding delay.  The model is therefore a simple
affine function of hop count with optional lognormal noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MeasurementError


@dataclass
class LatencyModel:
    """Affine hop-count RTT model.

    Attributes:
        base_rtt_s: fixed component (NIC, hypervisor, kernel).
        per_hop_s: additional one-way delay per switch hop.
        noise_fraction: relative standard deviation of multiplicative noise.
    """

    base_rtt_s: float = 100e-6
    per_hop_s: float = 25e-6
    noise_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rtt_s <= 0 or self.per_hop_s < 0:
            raise MeasurementError("latency parameters must be positive")
        if self.noise_fraction < 0:
            raise MeasurementError("noise_fraction must be >= 0")

    def rtt(self, hop_count: int, rng: Optional[np.random.Generator] = None) -> float:
        """Round-trip time in seconds for a path of ``hop_count`` hops."""
        if hop_count < 1:
            raise MeasurementError("hop_count must be >= 1")
        value = self.base_rtt_s + 2.0 * self.per_hop_s * hop_count
        if self.noise_fraction > 0:
            rng = rng if rng is not None else np.random.default_rng()
            value *= float(rng.lognormal(mean=0.0, sigma=self.noise_fraction))
        return value
