"""Tests for the online placement service (repro.service) and its parts."""

import json
import math

import pytest

from repro.cloud.registry import make_provider
from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.placement.base import ClusterState
from repro.core.placement.ilp import OptimalPlacer, auto_candidate_k
from repro.errors import MeasurementError, PlacementError, ServiceError
from repro.experiments.placers import get_placer
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.service.cache import MeasurementCache
from repro.service.forecast import RateForecaster
from repro.service.session import build_churn_session, run_churn_session
from repro.service.timeline import (
    DRIFT_NAMES,
    NetworkTimeline,
    attach_timeline,
    generate_timeline,
)
from repro.workloads.trace import (
    FlowRecord,
    load_trace,
    read_trace_jsonl,
    write_trace_jsonl,
)


def _fresh_provider(n_vms=4, seed=0):
    provider = make_provider("ec2", seed=seed, colocation_probability=0.0)
    provider.request_vms(n_vms)
    return provider


# ---------------------------------------------------------------------------
# NetworkTimeline
# ---------------------------------------------------------------------------
class TestNetworkTimeline:
    def test_every_drift_generates_and_validates(self):
        base = {"vm1": 1e9, "vm2": 8e8, "vm3": 9e8}
        for drift in DRIFT_NAMES:
            timeline = generate_timeline(base, n_epochs=30, drift=drift, seed=1)
            assert timeline.n_epochs == 30
            assert set(timeline.hose_epochs[0]) == set(base)
            for epoch in timeline.hose_epochs:
                for vm, rate in epoch.items():
                    assert 0.1 * base[vm] <= rate <= 2.0 * base[vm]

    def test_generation_is_deterministic(self):
        base = {"vm1": 1e9, "vm2": 8e8}
        a = generate_timeline(base, 10, drift="random-walk", seed=5)
        b = generate_timeline(base, 10, drift="random-walk", seed=5)
        assert a.hose_epochs == b.hose_epochs

    def test_epoch_lookup_clamps_past_the_end(self):
        timeline = generate_timeline({"vm1": 1e9}, 3, drift="none", epoch_s=60.0)
        assert timeline.epoch_of(0.0) == 0
        assert timeline.epoch_of(119.9) == 1
        assert timeline.epoch_of(1e9) == 2

    def test_hotspot_flap_collapses_a_subset(self):
        base = {f"vm{i}": 1e9 for i in range(10)}
        timeline = generate_timeline(
            base, 8, drift="hotspot-flap", seed=2, strength=0.4
        )
        collapsed = {
            vm
            for epoch in timeline.hose_epochs
            for vm, rate in epoch.items()
            if rate < 0.5 * base[vm]
        }
        assert collapsed  # someone flapped
        assert len(collapsed) < len(base)  # but not everyone

    def test_save_load_roundtrip(self, tmp_path):
        timeline = generate_timeline(
            {"vm1": 1e9, "vm2": 8e8}, 5, drift="diurnal", seed=3, epoch_s=120.0
        )
        timeline.pair_epochs = [
            {("vm1", "vm2"): 5e8} for _ in range(timeline.n_epochs)
        ]
        path = tmp_path / "timeline.json"
        timeline.save(path)
        loaded = NetworkTimeline.load(path)
        assert loaded.epoch_s == timeline.epoch_s
        assert loaded.drift == "diurnal"
        assert loaded.hose_epochs == timeline.hose_epochs
        assert loaded.pair_epochs == timeline.pair_epochs
        assert loaded.pair_rate_at("vm1", "vm2", 130.0) == 5e8

    def test_load_rejects_non_timeline_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ServiceError):
            NetworkTimeline.load(path)

    def test_validation_rejects_mismatched_epochs(self):
        with pytest.raises(ServiceError):
            NetworkTimeline(
                epoch_s=60.0,
                hose_epochs=[{"vm1": 1e9}, {"vm2": 1e9}],
            )
        with pytest.raises(ServiceError):
            generate_timeline({"vm1": 1e9}, 3, drift="no-such-drift")

    def test_attached_timeline_drives_provider_ground_truth(self):
        provider = _fresh_provider(n_vms=2)
        names = [vm.name for vm in provider.vms()]
        timeline = NetworkTimeline(
            epoch_s=60.0,
            hose_epochs=[
                {names[0]: 4e8, names[1]: 5e8},
                {names[0]: 1e8, names[1]: 5e8},
            ],
            drift="recorded",
        )
        attach_timeline(provider, timeline)
        assert provider.hose_rate(names[0]) == 4e8
        provider.advance_time(60.0)
        assert provider.hose_rate(names[0]) == 1e8
        assert provider.hose_rate(names[1]) == 5e8
        # true path rates flow through the hose.
        assert provider.true_path_rate(names[0], names[1]) <= 1e8

    def test_attach_rejects_unknown_vms(self):
        provider = _fresh_provider(n_vms=2)
        timeline = generate_timeline({"ghost": 1e9}, 2)
        with pytest.raises(ServiceError):
            attach_timeline(provider, timeline)


# ---------------------------------------------------------------------------
# Per-pair measurement staleness
# ---------------------------------------------------------------------------
class TestPairwiseMeasurementStaleness:
    def test_measure_subset_of_pairs(self):
        provider = _fresh_provider(n_vms=4)
        names = [vm.name for vm in provider.vms()]
        measurer = NetworkMeasurer(provider, MeasurementPlan(advance_clock=False))
        subset = [(names[0], names[1]), (names[2], names[3])]
        profile = measurer.measure(names, pairs=subset)
        assert sorted(profile.rates_bps) == sorted(subset)
        assert set(profile.pair_measured_at) == set(subset)

    def test_full_mesh_pairs_carry_round_timestamps(self):
        provider = _fresh_provider(n_vms=3)
        names = [vm.name for vm in provider.vms()]
        measurer = NetworkMeasurer(provider, MeasurementPlan(advance_clock=False))
        profile = measurer.measure(names)
        times = [profile.measured_at_pair(s, d) for s, d in profile.pairs()]
        # Serial mesh: strictly increasing per-pair timestamps.
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        assert times[0] == profile.measured_at

    def test_schedule_rejects_foreign_pairs(self):
        provider = _fresh_provider(n_vms=2)
        names = [vm.name for vm in provider.vms()]
        measurer = NetworkMeasurer(provider, MeasurementPlan(advance_clock=False))
        with pytest.raises(MeasurementError):
            measurer.schedule_rounds(names, pairs=[(names[0], "ghost")])

    def test_profile_rejects_timestamps_for_unmeasured_pairs(self):
        from repro.core.network_profile import NetworkProfile

        with pytest.raises(MeasurementError):
            NetworkProfile(
                vms=["a", "b"],
                rates_bps={("a", "b"): 1e9},
                pair_measured_at={("b", "a"): 1.0},
            )

    def test_ttl_cache_reprobes_only_stale_pairs(self):
        provider = _fresh_provider(n_vms=4)
        names = [vm.name for vm in provider.vms()]
        measurer = NetworkMeasurer(provider, MeasurementPlan(advance_clock=False))
        cache = MeasurementCache(measurer, names, ttl_s=100.0)

        cache.refresh(0.0)
        assert cache.stats.campaigns == 1
        assert cache.stats.pairs_measured == 12  # the full 4x3 mesh

        # Within the TTL nothing is re-probed.
        profile = cache.refresh(50.0)
        assert cache.stats.campaigns == 1
        assert len(profile.rates_bps) == 12

        # Past the TTL the mesh is stale again.
        cache.refresh(200.0)
        assert cache.stats.campaigns == 2
        assert cache.stats.pairs_measured == 24

    def test_ttl_cache_partial_staleness(self):
        provider = _fresh_provider(n_vms=3)
        names = [vm.name for vm in provider.vms()]
        measurer = NetworkMeasurer(provider, MeasurementPlan(advance_clock=False))
        cache = MeasurementCache(measurer, names, ttl_s=10.0)
        cache.refresh(0.0)
        # The serial mesh spreads pair timestamps ~2s apart, so at a time
        # chosen inside the campaign's span only the earliest pairs expired.
        stale = cache.stale_pairs(11.0)
        assert 0 < len(stale) < 6
        cache.refresh(11.0)
        assert cache.stats.pairs_measured == 6 + len(stale)


# ---------------------------------------------------------------------------
# Forecaster
# ---------------------------------------------------------------------------
def _profile_with(rates):
    from repro.core.network_profile import NetworkProfile

    vms = sorted({vm for pair in rates for vm in pair})
    return NetworkProfile(vms=vms, rates_bps=dict(rates))


class TestRateForecaster:
    def test_previous_hour_tracks_the_last_epoch(self):
        fc = RateForecaster("previous-hour")
        fc.record_epoch(0, _profile_with({("a", "b"): 1e9}))
        fc.record_epoch(1, _profile_with({("a", "b"): 2e8}))
        assert fc.forecast_pair(("a", "b"), 2) == 2e8

    def test_stale_freezes_hour_zero(self):
        fc = RateForecaster("stale")
        fc.record_epoch(0, _profile_with({("a", "b"): 1e9}))
        fc.record_epoch(1, _profile_with({("a", "b"): 2e8}))
        assert fc.forecast_pair(("a", "b"), 2) == 1e9

    def test_no_history_returns_none_and_profile_keeps_measured(self):
        fc = RateForecaster("combined")
        assert fc.forecast_pair(("a", "b"), 0) is None
        current = _profile_with({("a", "b"): 7e8, ("b", "a"): 6e8})
        forecast = fc.forecast_profile(current, 0)
        assert forecast.rates_bps == current.rates_bps

    def test_epochs_must_be_recorded_in_order(self):
        fc = RateForecaster("combined")
        fc.record_epoch(0, _profile_with({("a", "b"): 1e9}))
        with pytest.raises(ServiceError):
            fc.record_epoch(2, _profile_with({("a", "b"): 1e9}))

    def test_oracle_is_not_a_history_predictor(self):
        with pytest.raises(ServiceError):
            RateForecaster("oracle")


# ---------------------------------------------------------------------------
# Churn sessions (engine + session builder)
# ---------------------------------------------------------------------------
_FAST = dict(n_vms=5, hours=3, epoch_s=60.0, apps_per_hour=1.5)


class TestChurnSession:
    def test_builder_is_deterministic(self):
        p1, c1, apps1, t1 = build_churn_session(4, **_FAST)
        p2, c2, apps2, t2 = build_churn_session(4, **_FAST)
        assert t1.hose_epochs == t2.hose_epochs
        assert [a.name for a in apps1] == [a.name for a in apps2]
        assert [a.start_time for a in apps1] == [a.start_time for a in apps2]
        assert c1.machine_names() == c2.machine_names()

    def test_arrivals_fit_the_horizon(self):
        _, _, apps, timeline = build_churn_session(0, **_FAST)
        horizon = _FAST["hours"] * timeline.epoch_s
        assert apps
        assert all(a.start_time < horizon for a in apps)

    def test_session_reports_are_deterministic(self):
        a = run_churn_session(0, predictor="combined", **_FAST)
        b = run_churn_session(0, predictor="combined", **_FAST)
        assert a.canonical_json_dict() == b.canonical_json_dict()

    def test_session_accounts_every_app(self):
        report = run_churn_session(1, predictor="previous-hour", **_FAST)
        _, _, apps, _ = build_churn_session(1, **_FAST)
        assert [a.name for a in report.apps] == [a.name for a in apps]
        for outcome in report.apps:
            assert outcome.status in ("completed", "rejected")
            if outcome.status == "completed":
                assert outcome.duration >= 0.0
                assert math.isfinite(outcome.duration)

    def test_stale_predictor_measures_only_the_bootstrap(self):
        report = run_churn_session(0, predictor="stale", **_FAST)
        assert report.measurement["campaigns"] == 1
        assert report.measurement["pairs_measured"] == 20  # 5x4 mesh once

    def test_oracle_predictor_never_measures(self):
        report = run_churn_session(0, predictor="oracle", **_FAST)
        assert report.measurement["campaigns"] == 0
        assert report.measurement["pairs_measured"] == 0

    def test_ttl_cache_saves_mesh_work_for_history_predictors(self):
        report = run_churn_session(0, predictor="combined", **_FAST)
        assert report.measurement["campaigns"] >= 2
        assert report.measurement["pairs_reused"] > 0

    def test_unknown_predictor_is_rejected(self):
        with pytest.raises(ServiceError):
            run_churn_session(0, predictor="clairvoyant", **_FAST)

    def test_report_json_shape(self):
        report = run_churn_session(0, predictor="combined", **_FAST)
        payload = report.to_json_dict()
        assert payload["schema"] == "repro.service/report/v1"
        assert payload["predictor"] == "combined"
        assert payload["n_completed"] + payload["n_rejected"] == len(
            payload["apps"]
        )
        json.dumps(payload)  # must be serialisable as-is


class TestPredictorComparison:
    """The acceptance claim: under drift, combined-predictor placement beats
    a frozen hour-0 profile, and the oracle bounds both (means across >= 3
    seeds)."""

    @pytest.fixture(scope="class")
    def means(self):
        config = dict(
            n_vms=8, hours=4, drift="hotspot-flap", epoch_s=120.0,
            apps_per_hour=1.5,
        )
        sums = {"stale": 0.0, "combined": 0.0, "oracle": 0.0}
        seeds = (0, 1, 2)
        for seed in seeds:
            for predictor in sums:
                report = run_churn_session(
                    seed, predictor=predictor, placer="greedy", **config
                )
                sums[predictor] += report.mean_completion_time_s
        return {name: total / len(seeds) for name, total in sums.items()}

    def test_combined_strictly_beats_stale(self, means):
        assert means["combined"] < means["stale"]

    def test_oracle_bounds_both(self, means):
        assert means["oracle"] <= means["combined"]
        assert means["oracle"] <= means["stale"]


# ---------------------------------------------------------------------------
# Migration under drift
# ---------------------------------------------------------------------------
class TestServiceMigration:
    def test_flap_triggers_predictor_driven_migration(self):
        """A long transfer placed before a hose collapse must migrate off
        the collapsed VM once the forecast sees the collapse."""
        from repro.service.engine import PlacementService
        from repro.units import GBYTE
        from repro.workloads.application import Application, Task, TrafficMatrix

        provider = _fresh_provider(n_vms=3, seed=11)
        names = [vm.name for vm in provider.vms()]
        # vm0 is clearly fastest while healthy, then collapses from epoch 2.
        healthy = {names[0]: 1.2e9, names[1]: 8e8, names[2]: 7e8}
        collapsed = dict(healthy)
        collapsed[names[0]] = 1e8
        timeline = NetworkTimeline(
            epoch_s=60.0,
            hose_epochs=[healthy, healthy] + [collapsed] * 10,
            drift="recorded",
        )
        attach_timeline(provider, timeline)
        cluster = ClusterState.from_vms(provider.vms())

        # One big two-task transfer that drains over many epochs (4-core
        # tasks cannot colocate, so it must cross the network).
        traffic = TrafficMatrix()
        traffic.add("src", "dst", 40 * GBYTE)
        app = Application(
            name="longhaul",
            tasks=[Task("src", 4.0), Task("dst", 4.0)],
            traffic=traffic,
        )
        service = PlacementService(
            provider,
            cluster,
            get_placer("greedy").create(0, None),
            predictor="previous-hour",
            improvement_threshold=0.2,
        )
        report = service.run_session([app], hours=10)
        outcome = report.apps[0]
        assert outcome.status == "completed"
        # Greedy admits onto the (then) fastest vm0; once the forecast sees
        # the collapse, the remaining bytes must migrate off it.
        assert report.migrations
        assert outcome.migrations >= 1
        final_src = service.last_placements["longhaul"].machine_of("src")
        assert final_src != names[0]


# ---------------------------------------------------------------------------
# service-churn in the experiment grid
# ---------------------------------------------------------------------------
class TestServiceChurnScenario:
    def test_runs_through_the_experiment_runner(self):
        config = ExperimentConfig(
            scenarios=("service-churn",),
            placers=("greedy",),
            trials=1,
            baseline="random",
            scenario_params={
                "service-churn": {
                    "n_vms": 5, "hours": 2, "epoch_s": 60.0,
                    "apps_per_hour": 1.0,
                }
            },
        )
        result = ExperimentRunner(config).run()
        assert all(rec.ok for rec in result.records), [
            rec.error for rec in result.records if not rec.ok
        ]
        greedy = result.ok_records("service-churn", "greedy")[0]
        assert greedy.total_running_time_s >= 0.0
        assert greedy.measurement_overhead_s > 0.0

    def test_predictor_is_a_scenario_parameter(self):
        from repro.experiments.scenarios import get_scenario

        spec = get_scenario("service-churn")
        instance = spec.build(
            seed=0, predictor="oracle", n_vms=4, hours=2, epoch_s=60.0,
            apps_per_hour=1.0,
        )
        assert instance.service.predictor == "oracle"
        with pytest.raises(ServiceError):
            spec.build(seed=0, predictor="nope")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServiceCLI:
    def test_run_writes_report_and_exits_zero(self, tmp_path, capsys):
        from repro.service.__main__ import main

        out = tmp_path / "report.json"
        timeline_out = tmp_path / "timeline.json"
        code = main([
            "run", "--hours", "2", "--n-vms", "4", "--epoch-s", "60",
            "--seed", "0", "--drift", "random-walk",
            "--predictor", "combined",
            "--output", str(out), "--save-timeline", str(timeline_out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["report"]["predictor"] == "combined"
        assert "oracle_report" in payload
        assert "mean_regret_vs_oracle" in payload
        NetworkTimeline.load(timeline_out)  # must be a valid timeline
        assert "mean completion time" in capsys.readouterr().out

    def test_list_names_drifts_and_predictors(self, capsys):
        from repro.service.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hotspot-flap" in out and "combined" in out

    def test_replay_saved_timeline(self, tmp_path):
        from repro.service.__main__ import main

        timeline_out = tmp_path / "timeline.json"
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        base = [
            "run", "--hours", "2", "--n-vms", "4", "--epoch-s", "60",
            "--seed", "3", "--no-oracle",
        ]
        assert main(base + ["--save-timeline", str(timeline_out),
                            "--output", str(a)]) == 0
        assert main(base + ["--timeline", str(timeline_out),
                            "--output", str(b)]) == 0
        canon_a = json.loads(a.read_text())["report"]
        canon_b = json.loads(b.read_text())["report"]
        for payload in (canon_a, canon_b):
            payload["session_wall_s"] = payload["placement_wall_s"] = 0.0
        assert canon_a == canon_b


# ---------------------------------------------------------------------------
# Trace JSONL + recorded replay (satellite)
# ---------------------------------------------------------------------------
class TestTraceJsonl:
    def test_roundtrip(self, tmp_path):
        records = [
            FlowRecord(1.5, "app", "t1", "t2", 1000.0),
            FlowRecord(2.0, "app", "t2", "t3", 500.0),
        ]
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(records, path) == 2
        assert read_trace_jsonl(path) == records
        assert load_trace(path) == records

    def test_malformed_line_reports_location(self, tmp_path):
        from repro.errors import WorkloadError

        path = tmp_path / "bad.jsonl"
        path.write_text('{"timestamp": 1.0}\n')
        with pytest.raises(WorkloadError, match="bad.jsonl:1"):
            read_trace_jsonl(path)

    def test_trace_replay_scenario_from_disk(self, tmp_path):
        from repro.experiments.scenarios import get_scenario

        records = [
            FlowRecord(0.0, "alpha", "a1", "a2", 5e8),
            FlowRecord(30.0, "beta", "b1", "b2", 2e8),
            FlowRecord(31.0, "beta", "b2", "b3", 1e8),
        ]
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(records, path)
        instance = get_scenario("ec2-trace-replay").build(
            seed=0, n_vms=4, trace_path=str(path)
        )
        assert [a.name for a in instance.apps] == ["alpha", "beta"]
        assert instance.apps[0].start_time == 0.0
        assert instance.apps[1].start_time == 30.0
        assert instance.apps[1].total_bytes == pytest.approx(3e8)


# ---------------------------------------------------------------------------
# ILP candidate_k auto-tuner (satellite)
# ---------------------------------------------------------------------------
class TestAutoCandidateK:
    def test_small_instances_stay_exact(self):
        assert auto_candidate_k(5, 10) is None
        assert auto_candidate_k(20, 20) is None

    def test_large_instances_are_restricted(self):
        k = auto_candidate_k(32, 28)
        assert k is not None and 3 <= k < 28
        # Denser pairs -> tighter k.
        assert auto_candidate_k(40, 32) <= auto_candidate_k(32, 32)

    def test_sparse_apps_escape_restriction(self):
        # A chain of 26 tasks has only 25 communicating pairs: the product
        # budget is never threatened, so every machine is kept.
        assert auto_candidate_k(26, 14, n_pairs=25) is None

    def test_floor_and_validation(self):
        assert auto_candidate_k(200, 100) == 3
        with pytest.raises(PlacementError):
            auto_candidate_k(0, 5)

    def test_placer_accepts_auto_and_records_choice(self):
        provider = _fresh_provider(n_vms=4, seed=2)
        names = [vm.name for vm in provider.vms()]
        cluster = ClusterState.from_vms(provider.vms())
        measurer = NetworkMeasurer(provider, MeasurementPlan(advance_clock=False))
        profile = measurer.measure(names)

        from repro.workloads.patterns import mapreduce
        from repro.units import MBYTE

        app = mapreduce("mr", 2, 2, 100 * MBYTE)
        placer = OptimalPlacer(candidate_k="auto", time_limit_s=5.0)
        exact = OptimalPlacer(candidate_k=None, time_limit_s=5.0)
        placement = placer.place(app, cluster, profile)
        reference = exact.place(app, cluster, profile)
        # Small instance: auto resolves to "keep all" and matches exact.
        assert placer.last_solve_stats["candidate_k"] is None
        assert placer.last_solve_stats["objective_s"] == pytest.approx(
            exact.last_solve_stats["objective_s"]
        )
        assert placement.assignments == reference.assignments

    def test_factory_accepts_auto(self):
        placer = get_placer("ilp").create(0, {"candidate_k": "auto"})
        assert placer.candidate_k == "auto"
        with pytest.raises(Exception):
            OptimalPlacer(candidate_k="sometimes")
