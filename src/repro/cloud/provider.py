"""Base class for synthetic cloud providers.

A :class:`CloudProvider` owns:

* a physical multi-rooted-tree topology (§3.3.1) on which VMs are scheduled;
* a per-VM hose-model egress cap (§4.3/§4.4) whose base value is drawn from
  a provider-specific distribution and which drifts slowly over time (the
  temporal stability of §4.1);
* the measurement interface a tenant has on a public cloud: bulk TCP
  transfers (netperf), UDP packet trains, traceroute, and fine-grained probe
  throughput time series;
* an execution interface (:meth:`simulate`) used to "transfer data as
  specified by the placement algorithm and the traffic matrix" (§6.1) on the
  fluid simulator.

Concrete providers (:mod:`repro.cloud.ec2`, :mod:`repro.cloud.ec2_legacy`,
:mod:`repro.cloud.rackspace`) only supply a :class:`ProviderParams`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CloudError, MeasurementError, SimulationError
from repro.cloud.instances import InstanceType, VirtualMachine, EC2_MEDIUM
from repro.net.fluid import FluidResult, FluidSimulation, RateTimeline
from repro.net.flows import Flow
from repro.net.latency import LatencyModel
from repro.net.links import hose_link_id
from repro.net.packets import (
    PacketTrainSpec,
    PathTransmissionModel,
    TokenBucket,
    TrainObservation,
    send_packet_train,
)
from repro.net.topology import Topology, TreeSpec, build_multi_rooted_tree
from repro.net.traceroute import traceroute_hop_count
from repro.units import GBITPS

HoseSampler = Callable[[np.random.Generator], float]


@dataclass(frozen=True)
class VMFlow:
    """A tenant-level transfer between two VMs.

    Attributes:
        flow_id: unique identifier.
        src_vm, dst_vm: VM names (must exist on the provider).
        size_bytes: bytes to transfer, or ``None`` for a backlogged flow.
        start_time: absolute start time in seconds.
        end_time: stop time for backlogged flows.
        tag: free-form label (application name, "cross-traffic", ...).
    """

    flow_id: str
    src_vm: str
    dst_vm: str
    size_bytes: Optional[float] = None
    start_time: float = 0.0
    end_time: Optional[float] = None
    tag: str = ""


@dataclass(frozen=True)
class ProviderParams:
    """Everything that distinguishes one synthetic provider from another.

    Attributes:
        name: provider name ("ec2", "rackspace", ...).
        instance_type: instance type handed out by :meth:`request_vms`.
        hose_sampler: draws a VM's base egress cap (bits/s).
        colocation_probability: probability that a newly requested VM is
            placed on the same host as one of the tenant's existing VMs
            (produces the near-4 Gbit/s paths of Figure 2a).
        intra_host_rate_bps: rate between two VMs sharing a host.
        temporal_sigma: stationary relative standard deviation of the
            Ornstein-Uhlenbeck drift applied to each VM's hose rate.
        temporal_tau_s: OU time constant in seconds.
        measurement_noise: relative noise of a single netperf measurement.
        train_jitter_std_s: receiver timestamp jitter for packet trains.
        train_limiter_depth_bytes: token-bucket depth of the provider's rate
            limiter as seen by bursts; ``None`` disables the bucket (the
            burst then drains at the current hose rate directly).
        train_rate_noise: per-train multiplicative rate error floor (models
            conditions changing between the ground-truth and train runs).
        loss_rate: per-packet loss probability for packet trains.
        traceroute_visible_hops: optional hop-count obscuring map (Rackspace
            reports only 1- and 4-hop paths).
        tree_spec: physical topology specification.
    """

    name: str
    instance_type: InstanceType = EC2_MEDIUM
    hose_sampler: HoseSampler = lambda rng: 1 * GBITPS
    colocation_probability: float = 0.0
    intra_host_rate_bps: float = 4 * GBITPS
    temporal_sigma: float = 0.01
    temporal_tau_s: float = 600.0
    measurement_noise: float = 0.003
    train_jitter_std_s: float = 150e-6
    train_limiter_depth_bytes: Optional[float] = None
    train_rate_noise: float = 0.03
    loss_rate: float = 0.0
    traceroute_visible_hops: Optional[Mapping[int, int]] = None
    tree_spec: TreeSpec = field(default_factory=TreeSpec)

    def __post_init__(self) -> None:
        if not 0.0 <= self.colocation_probability <= 1.0:
            raise CloudError("colocation_probability must be in [0, 1]")
        if self.temporal_sigma < 0 or self.temporal_tau_s <= 0:
            raise CloudError("temporal drift parameters are invalid")
        if self.measurement_noise < 0 or self.train_rate_noise < 0:
            raise CloudError("noise parameters must be >= 0")


class CloudProvider:
    """A synthetic public cloud a tenant can measure and run traffic on."""

    def __init__(self, params: ProviderParams, seed: int = 0):
        self.params = params
        self._rng = np.random.default_rng(seed)
        spec = replace(params.tree_spec, intra_host_bps=params.intra_host_rate_bps)
        self.topology: Topology = build_multi_rooted_tree(spec, name=params.name)
        self.latency = LatencyModel()
        self._clock = 0.0
        self._vms: Dict[str, VirtualMachine] = {}
        self._base_hose: Dict[str, float] = {}
        self._hose_deviation: Dict[str, float] = {}
        self._vm_counter = 0
        #: When set (see :func:`repro.service.timeline.attach_timeline`), VMs
        #: covered by the timeline take their egress cap from it at the
        #: current clock instead of the OU-drifted base — the ground-truth
        #: network then varies epoch by epoch, and everything downstream
        #: (fluid simulation, packet trains, netperf) sees the epoch-correct
        #: rates because they all flow through :meth:`hose_rate`.
        self.hose_timeline = None
        #: When set (see :func:`repro.faults.attach_faults`), discrete fault
        #: events overlay the (possibly timeline-driven) ground truth:
        #: preempted VMs go dark through :meth:`hose_rate`, degraded links
        #: lose a multiplicative factor, and probes of pairs under an active
        #: :class:`~repro.faults.ProbeLoss` window fail or return wild
        #: estimates.  ``None`` (the default) is a guaranteed no-op: no hook
        #: consumes randomness or perturbs a rate, so fault-free runs are
        #: bit-identical to builds that predate fault injection.
        self.fault_timeline = None

    # ------------------------------------------------------------------ VMs
    def request_vms(self, n: int, name_prefix: str = "vm") -> List[VirtualMachine]:
        """Allocate ``n`` VMs, as a tenant would request instances.

        Hosts are chosen uniformly at random among physical machines not yet
        used by this tenant, except that with ``colocation_probability`` a VM
        lands on a host already holding one of the tenant's VMs.
        """
        if n < 1:
            raise CloudError("must request at least one VM")
        all_hosts = self.topology.hosts()
        new_vms: List[VirtualMachine] = []
        for _ in range(n):
            self._vm_counter += 1
            name = f"{name_prefix}{self._vm_counter}"
            used_hosts = [vm.host for vm in self._vms.values()]
            free_hosts = [h for h in all_hosts if h not in used_hosts]
            colocate = (
                used_hosts
                and self._rng.random() < self.params.colocation_probability
            )
            if colocate or not free_hosts:
                host = str(self._rng.choice(sorted(set(used_hosts))))
            else:
                host = str(self._rng.choice(free_hosts))
            vm = VirtualMachine(name=name, host=host, instance_type=self.params.instance_type)
            self._vms[name] = vm
            self._base_hose[name] = float(self.params.hose_sampler(self._rng))
            self._hose_deviation[name] = 0.0
            new_vms.append(vm)
        return new_vms

    def vm(self, name: str) -> VirtualMachine:
        """Look up a VM handle by name."""
        try:
            return self._vms[name]
        except KeyError as exc:
            raise CloudError(f"unknown VM {name!r}") from exc

    def vms(self) -> List[VirtualMachine]:
        """All VMs allocated so far, in allocation order."""
        return list(self._vms.values())

    def release_vm(self, name: str) -> None:
        """Return a VM to the provider."""
        if name not in self._vms:
            raise CloudError(f"unknown VM {name!r}")
        del self._vms[name]
        del self._base_hose[name]
        del self._hose_deviation[name]

    # ---------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current provider time in seconds."""
        return self._clock

    def advance_time(self, seconds: float) -> None:
        """Advance the clock, letting per-VM hose rates drift (OU process)."""
        if seconds < 0:
            raise CloudError("cannot advance time backwards")
        if seconds == 0:
            return
        self._clock += seconds
        sigma = self.params.temporal_sigma
        tau = self.params.temporal_tau_s
        decay = math.exp(-seconds / tau)
        innovation_std = sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
        for name in self._hose_deviation:
            self._hose_deviation[name] = (
                self._hose_deviation[name] * decay
                + float(self._rng.normal(0.0, innovation_std))
            )

    # --------------------------------------------------------- ground truth
    def hose_rate(self, vm_name: str) -> float:
        """Current (drifted) egress cap of a VM, in bits/second."""
        self.vm(vm_name)
        rate = None
        if self.hose_timeline is not None:
            rate = self.hose_timeline.hose_rate_at(vm_name, self._clock)
        if rate is None:
            base = self._base_hose[vm_name]
            deviation = self._hose_deviation[vm_name]
            rate = max(base * (1.0 + deviation), 0.05 * base)
        if self.fault_timeline is not None:
            rate = self.fault_timeline.effective_hose_rate(
                vm_name, self._clock, rate
            )
        return rate

    def base_hose_rates(self) -> Dict[str, float]:
        """Each VM's undrifted base egress cap (timeline generators seed
        their epoch-0 matrices from these)."""
        return dict(self._base_hose)

    def true_path_rate(self, src_vm: str, dst_vm: str) -> float:
        """Single-connection throughput absent any other tenant traffic."""
        src, dst = self.vm(src_vm), self.vm(dst_vm)
        if src.host == dst.host:
            return self.params.intra_host_rate_bps
        physical = min(
            link.capacity_bps for link in self.topology.path_links(src.host, dst.host)
        )
        return min(self.hose_rate(src_vm), physical)

    def path_hop_count(self, src_vm: str, dst_vm: str) -> int:
        """True hop count between two VMs (same host counts as one hop)."""
        src, dst = self.vm(src_vm), self.vm(dst_vm)
        if src.host == dst.host:
            return 1
        return self.topology.hop_count(src.host, dst.host)

    # ---------------------------------------------------------- simulation
    def _hose_capacities(self) -> Dict[str, float]:
        return {hose_link_id(name): self.hose_rate(name) for name in self._vms}

    def _to_net_flow(self, vm_flow: VMFlow) -> Tuple[Flow, List[str]]:
        src, dst = self.vm(vm_flow.src_vm), self.vm(vm_flow.dst_vm)
        flow = Flow(
            flow_id=vm_flow.flow_id,
            src=src.host,
            dst=dst.host,
            size_bytes=vm_flow.size_bytes,
            start_time=vm_flow.start_time,
            end_time=vm_flow.end_time,
            tag=vm_flow.tag,
        )
        # The hose applies to the VM's egress onto the physical network, so
        # intra-host (colocated VM) traffic bypasses it.
        extra = [] if src.host == dst.host else [hose_link_id(vm_flow.src_vm)]
        return flow, extra

    def build_simulation(
        self, vm_flows: Sequence[VMFlow] = ()
    ) -> FluidSimulation:
        """A fluid simulation of this provider's network with the given flows."""
        sim = FluidSimulation(
            self.topology,
            extra_capacities=self._hose_capacities(),
        )
        for vm_flow in vm_flows:
            flow, extra = self._to_net_flow(vm_flow)
            sim.add_flow(flow, extra_links=extra)
        return sim

    def simulate(
        self,
        vm_flows: Sequence[VMFlow],
        until: Optional[float] = None,
    ) -> FluidResult:
        """Run the given VM-level flows to completion on the provider network."""
        return self.build_simulation(vm_flows).run(until=until)

    # ----------------------------------------------------- measurement API
    def _probe_fault_factor(self, src_vm: str, dst_vm: str, what: str) -> float:
        """Fault adjustment for one probe: raises on loss, scales on "wild".

        Checked before any probe randomness is consumed, so a lost probe is
        replayable: the same (seed, clock, pair) always fails the same way.
        Returns 1.0 when no fault timeline is attached or no window is
        active — the zero-fault fast path.
        """
        if self.fault_timeline is None:
            return 1.0
        fault = self.fault_timeline.probe_fault(src_vm, dst_vm, self._clock)
        if fault is None:
            return 1.0
        mode, factor = fault
        if mode == "fail":
            raise MeasurementError(
                f"{what} {src_vm}->{dst_vm} lost at t={self._clock:.0f}s "
                f"(injected fault)"
            )
        return factor

    def run_netperf(
        self,
        src_vm: str,
        dst_vm: str,
        duration: float = 10.0,
        background: Sequence[VMFlow] = (),
    ) -> float:
        """Bulk TCP throughput of one connection, netperf-style (bits/s).

        ``background`` flows (e.g. the tenant's running applications) share
        the network with the probe for the duration of the measurement.
        """
        if duration <= 0:
            raise CloudError("duration must be positive")
        wild_factor = self._probe_fault_factor(src_vm, dst_vm, "netperf probe")
        probe = VMFlow(
            flow_id="__netperf__",
            src_vm=src_vm,
            dst_vm=dst_vm,
            size_bytes=None,
            start_time=0.0,
            end_time=duration,
            tag="netperf",
        )
        shifted = [
            replace_background_window(flow, duration) for flow in background
        ]
        result = self.simulate([probe] + shifted, until=duration)
        rate = result.timelines["__netperf__"].average_rate(0.0, duration)
        noise = 1.0 + float(self._rng.normal(0.0, self.params.measurement_noise))
        return max(rate * noise * wild_factor, 0.0)

    def concurrent_netperf(
        self,
        pairs: Sequence[Tuple[str, str]],
        duration: float = 10.0,
    ) -> Dict[Tuple[str, str], float]:
        """Throughput of bulk connections run concurrently on several pairs.

        This is the primitive the bottleneck-location experiment of §3.3.2
        uses: run netperf on both paths at the same time and see whether
        either slows down.
        """
        if duration <= 0:
            raise CloudError("duration must be positive")
        if len(set(pairs)) != len(pairs):
            raise CloudError("concurrent_netperf pairs must be unique")
        flows = [
            VMFlow(
                flow_id=f"__concurrent_{i}__",
                src_vm=src,
                dst_vm=dst,
                size_bytes=None,
                start_time=0.0,
                end_time=duration,
                tag="netperf",
            )
            for i, (src, dst) in enumerate(pairs)
        ]
        result = self.simulate(flows, until=duration)
        rates: Dict[Tuple[str, str], float] = {}
        for i, (src, dst) in enumerate(pairs):
            rate = result.timelines[f"__concurrent_{i}__"].average_rate(0.0, duration)
            noise = 1.0 + float(self._rng.normal(0.0, self.params.measurement_noise))
            rates[(src, dst)] = max(rate * noise, 0.0)
        return rates

    def probe_throughput_series(
        self,
        src_vm: str,
        dst_vm: str,
        duration: float = 10.0,
        sample_interval: float = 0.01,
        background: Sequence[VMFlow] = (),
    ) -> List[Tuple[float, float]]:
        """Per-``sample_interval`` throughput of one bulk probe connection.

        This reproduces the §3.2 measurement: run one bulk transfer for ten
        seconds, log packet timestamps at the receiver, and derive the
        throughput every 10 ms.
        """
        if duration <= 0 or sample_interval <= 0:
            raise CloudError("duration and sample_interval must be positive")
        probe = VMFlow(
            flow_id="__probe__",
            src_vm=src_vm,
            dst_vm=dst_vm,
            size_bytes=None,
            start_time=0.0,
            end_time=duration,
            tag="probe",
        )
        result = self.simulate([probe] + list(background), until=duration)
        timeline = result.timelines["__probe__"]
        return timeline.sample(sample_interval, start=0.0, end=duration)

    def snapshot_rate(
        self,
        src_vm: str,
        dst_vm: str,
        background: Sequence[VMFlow] = (),
        window_s: float = 0.1,
    ) -> float:
        """Instantaneous rate a new bulk connection would get on this path.

        The probe shares the network with ``background`` flows (treated as
        backlogged for the short snapshot window).  Used to model how probes
        and packet trains see the network while the tenant's other
        applications are running.
        """
        probe = VMFlow(
            flow_id="__snapshot__",
            src_vm=src_vm,
            dst_vm=dst_vm,
            size_bytes=None,
            start_time=0.0,
            end_time=window_s,
            tag="snapshot",
        )
        shifted = [replace_background_window(flow, window_s) for flow in background]
        result = self.simulate([probe] + shifted, until=window_s)
        return result.timelines["__snapshot__"].average_rate(0.0, window_s)

    def packet_train_model(
        self,
        src_vm: str,
        dst_vm: str,
        background: Sequence[VMFlow] = (),
    ) -> PathTransmissionModel:
        """The burst transmission model a packet train sees on this path."""
        src, dst = self.vm(src_vm), self.vm(dst_vm)
        wild_factor = self._probe_fault_factor(src_vm, dst_vm, "packet train")
        rate_noise = 1.0 + float(self._rng.normal(0.0, self.params.train_rate_noise))
        rate_noise = max(rate_noise, 0.2) * wild_factor
        if src.host == dst.host:
            return PathTransmissionModel(
                line_rate_bps=10 * GBITPS,
                unlimited_rate_bps=self.params.intra_host_rate_bps * rate_noise,
                limiter=None,
                base_delay_s=20e-6,
                jitter_std_s=self.params.train_jitter_std_s,
                loss_rate=self.params.loss_rate,
            )
        physical = min(
            link.capacity_bps for link in self.topology.path_links(src.host, dst.host)
        )
        if background:
            available = self.snapshot_rate(src_vm, dst_vm, background=background)
        else:
            available = self.hose_rate(src_vm)
        available *= rate_noise
        if self.params.train_limiter_depth_bytes is None:
            # Hose enforcement is smooth: the burst drains at the available rate.
            return PathTransmissionModel(
                line_rate_bps=10 * GBITPS,
                unlimited_rate_bps=min(available, physical),
                limiter=None,
                base_delay_s=100e-6,
                jitter_std_s=self.params.train_jitter_std_s,
                loss_rate=self.params.loss_rate,
            )
        limiter = TokenBucket(
            rate_bps=available,
            depth_bytes=self.params.train_limiter_depth_bytes,
        )
        return PathTransmissionModel(
            line_rate_bps=10 * GBITPS,
            unlimited_rate_bps=physical,
            limiter=limiter,
            base_delay_s=100e-6,
            jitter_std_s=self.params.train_jitter_std_s,
            loss_rate=self.params.loss_rate,
        )

    def send_packet_train(
        self,
        src_vm: str,
        dst_vm: str,
        spec: PacketTrainSpec = PacketTrainSpec(),
        background: Sequence[VMFlow] = (),
    ) -> TrainObservation:
        """Send one packet train between two VMs and return the observations."""
        model = self.packet_train_model(src_vm, dst_vm, background=background)
        rtt = self.rtt(src_vm, dst_vm)
        return send_packet_train(model, spec, rng=self._rng, rtt_s=rtt)

    def traceroute(self, src_vm: str, dst_vm: str) -> int:
        """Hop count reported by traceroute (possibly obscured by the provider)."""
        src, dst = self.vm(src_vm), self.vm(dst_vm)
        if src.host == dst.host:
            return 1
        return traceroute_hop_count(
            self.topology,
            src.host,
            dst.host,
            visible_hops=self.params.traceroute_visible_hops,
        )

    def rtt(self, src_vm: str, dst_vm: str) -> float:
        """Round-trip time between two VMs in seconds."""
        return self.latency.rtt(self.path_hop_count(src_vm, dst_vm), rng=self._rng)


def replace_background_window(flow: VMFlow, duration: float) -> VMFlow:
    """Clamp a background flow into the measurement window ``[0, duration]``.

    Measurement helpers simulate only the probe window, so background flows
    are treated as backlogged for the (short) duration of the measurement —
    the same approximation the paper makes when it measures while other
    applications run.
    """
    return VMFlow(
        flow_id=flow.flow_id,
        src_vm=flow.src_vm,
        dst_vm=flow.dst_vm,
        size_bytes=None,
        start_time=0.0,
        end_time=duration,
        tag=flow.tag or "background",
    )
