"""The online placement service (the system §2 describes, run for real).

:class:`PlacementService` admits a *stream* of applications onto a cloud
whose ground truth drifts epoch by epoch (see
:mod:`repro.service.timeline`).  Per epoch it:

1. records the completed epoch's measured rates into the forecaster's
   per-pair history;
2. refreshes the measurement cache — only pairs whose TTL expired are
   re-probed (:mod:`repro.service.cache`);
3. builds the epoch's placement profile by running the selected §6.1
   predictor over the history (:mod:`repro.service.forecast`);
4. re-evaluates every running application against the forecast and
   migrates it when the predicted gain clears a threshold
   (:func:`repro.runtime.migration.propose_migration`).

Arrivals are admitted against the same forecast as they land; an
application that cannot be placed (CPU exhausted) is *rejected* and the
stream continues — the service is long-running, one infeasible arrival must
not sink the session.

Two special predictors bound the comparison: ``stale`` places every
application against the frozen hour-0 profile (what an offline evaluator
implicitly does — and measures nothing after bootstrap), and ``oracle``
reads the true current rates straight off the provider, the regret
reference.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cloud.provider import CloudProvider, VMFlow
from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placer
from repro.errors import ReproError, ServiceError
from repro.faults import FaultEvent, LinkDegradation, ProbeLoss, VmPreemption
from repro.runtime.migration import (
    LiveApp,
    MigrationEvent,
    advance_live_apps,
    cluster_with_live_usage,
    live_background_flows,
    propose_migration,
)
from repro.service.cache import MeasurementCache
from repro.service.forecast import RateForecaster, validate_predictor
from repro.service.timeline import DEFAULT_EPOCH_S
from repro.workloads.application import Application

logger = logging.getLogger("repro.service.engine")

#: Service counters (``obs.metrics.snapshot()`` under ``repro.service.*``).
_ADMISSIONS = obs.Counter("repro.service.admissions")
_REJECTIONS = obs.Counter("repro.service.rejections")
_MIGRATIONS = obs.Counter("repro.service.migrations")
_RECOVERIES = obs.Counter("repro.service.recoveries")
_EPOCH_TICKS = obs.Counter("repro.service.epoch_ticks")


@dataclass
class AppOutcome:
    """What happened to one application that hit the admission stream."""

    name: str
    status: str  # "completed" or "rejected"
    arrived_at: float
    completed_at: Optional[float] = None
    migrations: int = 0
    #: Forced re-placements the self-healing loop applied (VM preemptions).
    recoveries: int = 0
    error: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        """Admission-to-completion time (``None`` for rejected apps)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrived_at

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "arrived_at": round(self.arrived_at, 6),
            "completed_at": (
                round(self.completed_at, 6) if self.completed_at is not None else None
            ),
            "duration_s": (
                round(self.duration, 6) if self.duration is not None else None
            ),
            "migrations": self.migrations,
            "recoveries": self.recoveries,
            "error": self.error,
        }


@dataclass(frozen=True)
class RecoveryAction:
    """One healing step the service took in response to a fault event.

    ``latency_s`` — the time between the fault taking effect and the
    service acting on it — is the recovery-latency metric the ``faults``
    bench tracks; the service only observes faults at epoch boundaries, so
    it is bounded by the epoch length.
    """

    time_s: float  # when the service acted (an epoch boundary)
    event_time_s: float  # when the fault took effect
    epoch: int
    kind: str  # "vm-preemption" | "link-degradation" | "probe-loss"
    target: str  # VM name, or "src->dst" for probe loss
    action: str  # "re-placed" | "re-measured" | "degraded-coast" | "rejected"
    apps: Tuple[str, ...] = ()

    @property
    def latency_s(self) -> float:
        return self.time_s - self.event_time_s

    def to_json_dict(self) -> dict:
        return {
            "time_s": round(self.time_s, 6),
            "event_time_s": round(self.event_time_s, 6),
            "latency_s": round(self.latency_s, 6),
            "epoch": self.epoch,
            "kind": self.kind,
            "target": self.target,
            "action": self.action,
            "apps": list(self.apps),
        }


@dataclass
class ServiceReport:
    """Outcome of one churn session."""

    predictor: str
    placer: str
    hours: float
    epoch_s: float
    ttl_s: float
    drift: str
    apps: List[AppOutcome] = field(default_factory=list)
    migrations: List[MigrationEvent] = field(default_factory=list)
    recovery: List[RecoveryAction] = field(default_factory=list)
    measurement: Dict[str, object] = field(default_factory=dict)
    #: Host wall clock of the whole session / of measurement+placement only.
    session_wall_s: float = 0.0
    placement_wall_s: float = 0.0
    #: Optional observability block (``run_session(..., telemetry=True)``):
    #: a metrics snapshot plus wall clocks.  Host-specific and therefore
    #: excluded from :meth:`canonical_json_dict`, so bit-identity checks
    #: and caching never see it.
    telemetry: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------ aggregates
    def completed(self) -> List[AppOutcome]:
        return [a for a in self.apps if a.status == "completed"]

    def rejected(self) -> List[AppOutcome]:
        return [a for a in self.apps if a.status == "rejected"]

    @property
    def mean_completion_time_s(self) -> float:
        """Mean admission-to-completion time over completed applications."""
        done = self.completed()
        if not done:
            raise ServiceError("no application completed in this session")
        return sum(a.duration for a in done) / len(done)

    @property
    def total_completion_time_s(self) -> float:
        return sum(a.duration for a in self.completed())

    def duration_of(self, app_name: str) -> float:
        for outcome in self.apps:
            if outcome.name == app_name and outcome.duration is not None:
                return outcome.duration
        raise ServiceError(f"no completed application {app_name!r} in report")

    # ------------------------------------------------------------------ JSON
    def to_json_dict(self) -> dict:
        done = self.completed()
        return {
            "schema": "repro.service/report/v1",
            "predictor": self.predictor,
            "placer": self.placer,
            "hours": self.hours,
            "epoch_s": self.epoch_s,
            "ttl_s": self.ttl_s,
            "drift": self.drift,
            "apps": [a.to_json_dict() for a in self.apps],
            "n_admitted": len(self.apps) - len(self.rejected()),
            "n_completed": len(done),
            "n_rejected": len(self.rejected()),
            "mean_completion_time_s": (
                round(self.mean_completion_time_s, 6) if done else None
            ),
            "total_completion_time_s": round(self.total_completion_time_s, 6),
            "migrations": [
                {
                    "time_s": round(event.time_s, 6),
                    "app": event.app_name,
                    "moved_tasks": list(event.moved_tasks),
                    "estimated_gain_fraction": round(
                        event.estimated_gain_fraction, 6
                    ),
                }
                for event in self.migrations
            ],
            "recovery": [action.to_json_dict() for action in self.recovery],
            "measurement": dict(self.measurement),
            "session_wall_s": round(self.session_wall_s, 6),
            "placement_wall_s": round(self.placement_wall_s, 6),
            **(
                {"telemetry": dict(self.telemetry)}
                if self.telemetry is not None
                else {}
            ),
        }

    def canonical_json_dict(self) -> dict:
        """:meth:`to_json_dict` with host wall clock zeroed.

        Everything else is a deterministic function of (provider seed,
        timeline, arrival stream, predictor, placer) — the determinism the
        CI service smoke job asserts.  The optional ``telemetry`` block
        carries host timings and process-wide counters, so it is dropped
        entirely.
        """
        payload = self.to_json_dict()
        payload["session_wall_s"] = 0.0
        payload["placement_wall_s"] = 0.0
        payload.pop("telemetry", None)
        return payload


class PlacementService:
    """Streaming admission + predictor-driven placement over a drifting net.

    Args:
        provider: the cloud (usually with a timeline attached via
            :func:`repro.service.timeline.attach_timeline`).
        cluster: the tenant's machines.
        placer: the placement algorithm for admissions and migrations.
        predictor: one of :data:`repro.service.forecast.PREDICTOR_NAMES`.
        epoch_s: forecast/measurement epoch; defaults to the attached
            timeline's epoch (an hour without one).
        ttl_s: measurement-cache TTL; the default of half an epoch makes
            the epoch tick re-probe the mesh while admissions shortly after
            a tick reuse it.
        migrate: re-evaluate running applications at epoch ticks (§2.4).
        improvement_threshold: minimum predicted completion-time gain for a
            migration to be worth its disruption.
        measurement: campaign plan; the default packet-train plan does not
            advance the provider clock (the service accounts measurement
            time itself, in the report).
        rate_model: completion-time model for migration decisions.
    """

    def __init__(
        self,
        provider: CloudProvider,
        cluster: ClusterState,
        placer: Placer,
        predictor: str = "combined",
        epoch_s: Optional[float] = None,
        ttl_s: Optional[float] = None,
        migrate: bool = True,
        improvement_threshold: float = 0.1,
        measurement: Optional[MeasurementPlan] = None,
        rate_model: str = "hose",
    ):
        self.provider = provider
        self.cluster = cluster
        self.placer = placer
        self.predictor = validate_predictor(predictor)
        timeline = provider.hose_timeline
        if epoch_s is None:
            epoch_s = timeline.epoch_s if timeline is not None else DEFAULT_EPOCH_S
        if epoch_s <= 0:
            raise ServiceError("epoch_s must be positive")
        self.epoch_s = float(epoch_s)
        self.ttl_s = float(ttl_s) if ttl_s is not None else self.epoch_s / 2.0
        if self.ttl_s <= 0:
            raise ServiceError("ttl_s must be positive")
        self.migrate = migrate
        if not 0.0 <= improvement_threshold < 1.0:
            raise ServiceError("improvement_threshold must be in [0, 1)")
        self.improvement_threshold = improvement_threshold
        if measurement is None:
            measurement = MeasurementPlan(advance_clock=False)
        self.rate_model = rate_model
        measurer = NetworkMeasurer(provider, plan=measurement)
        self.cache = MeasurementCache(
            measurer, cluster.machine_names(), ttl_s=self.ttl_s
        )
        self.forecaster = (
            RateForecaster(predictor) if predictor != "oracle" else None
        )
        #: Fault schedule, if one is attached (see repro.faults); the
        #: service consumes fault events at epoch boundaries and heals.
        self.faults = getattr(provider, "fault_timeline", None)
        self._migrations: List[MigrationEvent] = []
        self._recovery: List[RecoveryAction] = []
        #: Final placement of every admitted application after the last
        #: session (post-migration), keyed by application name.
        self.last_placements: Dict[str, object] = {}

    # -------------------------------------------------------------- session
    def run_session(
        self, apps: Sequence[Application], hours: float,
        telemetry: bool = False,
    ) -> ServiceReport:
        """Admit ``apps`` as they arrive over ``hours`` epochs of service.

        Arrivals must land within the session (``start_time < hours *
        epoch_s``); transfers still in flight at the horizon drain to
        completion (the network keeps drifting, the service just stops
        measuring and migrating).

        With ``telemetry=True`` the report carries a ``telemetry`` block
        (a process-wide :func:`repro.obs.metrics.snapshot` plus wall
        clocks).  It is opt-in because it is host-specific; canonical
        forms drop it either way.
        """
        if not apps:
            raise ServiceError("a session needs at least one application")
        if hours <= 0:
            raise ServiceError("hours must be positive")
        if self.provider.now != 0.0:
            raise ServiceError(
                "run_session expects a fresh provider (clock at zero)"
            )
        ordered = sorted(apps, key=lambda a: (a.start_time, a.name))
        names = {app.name for app in ordered}
        if len(names) != len(ordered):
            raise ServiceError("applications in a session must have unique names")
        horizon = hours * self.epoch_s
        if ordered and ordered[-1].start_time >= horizon:
            raise ServiceError(
                f"arrival at {ordered[-1].start_time:.0f}s is past the "
                f"session horizon of {horizon:.0f}s"
            )

        logger.info(
            "session: %d app(s) over %.1f epoch(s) of %.0fs, predictor=%s",
            len(ordered), hours, self.epoch_s, self.predictor,
        )
        with obs.span(
            "service.session",
            apps=len(ordered), hours=hours, predictor=self.predictor,
        ):
            report = self._session_loop(ordered, hours, horizon)
        if telemetry:
            report.telemetry = {
                "metrics": obs.metrics.snapshot(),
                "session_wall_s": round(report.session_wall_s, 6),
                "placement_wall_s": round(report.placement_wall_s, 6),
                "trace_path": obs.trace_path(),
            }
        logger.info(
            "session: %d completed, %d rejected, %d migration(s), "
            "%d recovery action(s) in %.2fs",
            len(report.completed()), len(report.rejected()),
            len(report.migrations), len(report.recovery),
            report.session_wall_s,
        )
        return report

    def _session_loop(
        self, ordered: List[Application], hours: float, horizon: float
    ) -> ServiceReport:
        """The session body (see :meth:`run_session`, which spans it)."""
        timeline = self.provider.hose_timeline
        session_started = time.perf_counter()
        report = ServiceReport(
            predictor=self.predictor,
            placer=getattr(self.placer, "name", type(self.placer).__name__),
            hours=hours,
            epoch_s=self.epoch_s,
            ttl_s=self.ttl_s,
            drift=timeline.drift if timeline is not None else "provider-ou",
        )

        running: Dict[str, LiveApp] = {}
        outcomes: Dict[str, AppOutcome] = {}
        self._migrations: List[MigrationEvent] = []
        self._recovery: List[RecoveryAction] = []
        pending = list(ordered)
        now = 0.0
        epoch = 0
        placement_wall = 0.0
        #: Fault events with effect times <= this have been handled.
        fault_watermark = 0.0
        have_faults = self.faults is not None and not self.faults.is_empty

        # Epoch-0 bootstrap: the classic measure-then-place full mesh.
        if self.predictor != "oracle":
            place_started = time.perf_counter()
            self.cache.refresh(
                now, background=[], force=True,
                fallback=self._forecast_fallback(epoch),
            )
            placement_wall += time.perf_counter() - place_started

        pending = self._admit_due(pending, running, outcomes, now, epoch)

        safety = 0
        while pending or any(not s.done for s in running.values()):
            safety += 1
            if safety > 100_000:
                raise ServiceError("service session did not converge")
            next_arrival = pending[0].start_time if pending else math.inf
            next_boundary = (epoch + 1) * self.epoch_s
            rates_frozen = (
                timeline is None or epoch >= timeline.n_epochs - 1
            ) and now >= horizon
            faults_pending = have_faults and self.faults.pending_after(
                fault_watermark
            )
            if rates_frozen and math.isinf(next_arrival) and not faults_pending:
                # No more drift, arrivals, or faults: drain in one pass.
                advance_live_apps(self.provider, running, now, until=None)
                break
            target = min(next_arrival, next_boundary)
            advance_live_apps(self.provider, running, now, until=target)
            self.provider.advance_time(target - now)
            now = target

            if now >= next_boundary - 1e-9:
                epoch += 1
                if have_faults:
                    # Heal at *every* boundary — including past the horizon,
                    # where a late preemption would otherwise stall the drain.
                    events = self.faults.events_between(fault_watermark, now)
                    fault_watermark = now
                    if events:
                        place_started = time.perf_counter()
                        self._handle_fault_events(
                            events, running, outcomes, now, epoch
                        )
                        placement_wall += time.perf_counter() - place_started
                if now < horizon - 1e-9:
                    place_started = time.perf_counter()
                    self._epoch_tick(running, outcomes, now, epoch)
                    placement_wall += time.perf_counter() - place_started
            pending = self._admit_due(pending, running, outcomes, now, epoch)

        for name, state in running.items():
            completed = (
                state.completed_at if state.completed_at is not None else state.started
            )
            outcomes[name].completed_at = completed
        self.last_placements = {
            name: state.placement for name, state in running.items()
        }
        report.apps = [outcomes[app.name] for app in ordered]
        report.migrations = list(self._migrations)
        report.recovery = list(self._recovery)
        report.measurement = self.cache.stats.to_json_dict()
        report.placement_wall_s = placement_wall
        report.session_wall_s = time.perf_counter() - session_started
        return report

    # ------------------------------------------------------------ internals
    def _forecast_fallback(self, epoch: int):
        """Predicted-rate fallback for pairs a campaign could not measure.

        ``None`` for the stale/oracle controls (they never refresh); for the
        history predictors, a callable the :class:`MeasurementCache` invokes
        with a degraded pair — the forecaster's prediction stands in for the
        unobtainable measurement (flagged via ``pairs_degraded`` in stats).
        """
        if self.forecaster is None or self.predictor == "stale":
            return None
        forecaster = self.forecaster
        return lambda pair: forecaster.forecast_pair(pair, epoch)

    def _recovery_profile(self) -> NetworkProfile:
        """The profile forced re-placements are made against.

        The oracle reads true rates; everyone else uses the cache's
        last-known view *without probing* — recovery must work even past
        the measurement horizon, and the affected VM's pairs are already
        gone from the mesh by the time this is called.
        """
        if self.predictor == "oracle":
            return NetworkProfile.from_rate_function(
                self.cluster.machine_names(), self.provider.true_path_rate
            )
        return self.cache.profile(self.provider.now)

    def _cluster_sans_dead(
        self, running: Dict[str, LiveApp], exclude: Optional[str] = None
    ) -> ClusterState:
        """Like :func:`cluster_with_live_usage`, dropping usage on machines
        no longer in the cluster (placements pointing at a just-preempted VM
        must not poison the rebuilt cluster while their apps queue for
        re-placement)."""
        known = set(self.cluster.machine_names())
        usage: Dict[str, float] = {}
        for name, state in running.items():
            if name == exclude or state.done:
                continue
            for machine, cores in state.placement.cpu_usage(state.app).items():
                if machine in known:
                    usage[machine] = usage.get(machine, 0.0) + cores
        return self.cluster.with_usage(usage)

    def _handle_fault_events(
        self,
        events: Sequence[FaultEvent],
        running: Dict[str, LiveApp],
        outcomes: Dict[str, AppOutcome],
        now: float,
        epoch: int,
    ) -> None:
        """React to the fault events that took effect since the last check."""
        with obs.span("service.recover", epoch=epoch, events=len(events)):
            self._handle_fault_events_inner(
                events, running, outcomes, now, epoch
            )

    def _handle_fault_events_inner(
        self,
        events: Sequence[FaultEvent],
        running: Dict[str, LiveApp],
        outcomes: Dict[str, AppOutcome],
        now: float,
        epoch: int,
    ) -> None:
        for event in events:
            if isinstance(event, VmPreemption):
                self._recover_preemption(event, running, outcomes, now, epoch)
            elif isinstance(event, LinkDegradation):
                self._recover_degradation(event, running, now, epoch)
            elif isinstance(event, ProbeLoss):
                # The measurement layer already absorbed this (retry, then
                # forecast fallback); record that the service coasted.
                self._record_recovery(
                    RecoveryAction(
                        time_s=now,
                        event_time_s=event.effect_time_s,
                        epoch=epoch,
                        kind="probe-loss",
                        target=f"{event.src}->{event.dst}",
                        action="degraded-coast",
                    )
                )

    def _record_recovery(self, action: RecoveryAction) -> None:
        """Append a healing step, counting and logging it."""
        self._recovery.append(action)
        _RECOVERIES.inc()
        logger.info(
            "epoch %d: %s on %s -> %s (latency %.0fs%s)",
            action.epoch, action.kind, action.target, action.action,
            action.latency_s,
            f", apps: {', '.join(action.apps)}" if action.apps else "",
        )
        obs.point(
            "service.recovery", kind=action.kind, target=action.target,
            action=action.action, epoch=action.epoch,
        )

    def _apps_on_vm(self, running: Dict[str, LiveApp], vm: str) -> List[str]:
        """Running (not-done) applications with at least one task on ``vm``."""
        return sorted(
            name
            for name, state in running.items()
            if not state.done and vm in state.placement.assignments.values()
        )

    def _recover_preemption(
        self,
        event: VmPreemption,
        running: Dict[str, LiveApp],
        outcomes: Dict[str, AppOutcome],
        now: float,
        epoch: int,
    ) -> None:
        """Remove a preempted VM and force-re-place the apps it carried."""
        vm = event.vm
        if vm not in self.cluster.machine_names():
            return  # already removed (duplicate event)
        affected = self._apps_on_vm(running, vm)
        survivors = [m for m in self.cluster.machines if m.name != vm]
        if len(survivors) < 2:
            # Too few VMs left to re-place or even measure: coast and hope.
            self._record_recovery(
                RecoveryAction(
                    time_s=now, event_time_s=event.time_s, epoch=epoch,
                    kind="vm-preemption", target=vm,
                    action="degraded-coast", apps=tuple(affected),
                )
            )
            return
        self.cluster = ClusterState(
            machines=survivors,
            cpu_used={
                k: v for k, v in self.cluster.cpu_used.items() if k != vm
            },
        )
        if vm in self.cache.vms:
            self.cache.remove_vm(vm)
        replaced: List[str] = []
        rejected: List[str] = []
        for name in affected:
            state = running[name]
            remaining_app = state.remaining_application()
            try:
                placement = self.placer.place(
                    remaining_app,
                    self._cluster_sans_dead(running, exclude=name),
                    self._recovery_profile(),
                )
            except ReproError as exc:
                # Cannot re-place the survivor tasks: the app fails
                # gracefully instead of stalling the session forever.
                del running[name]
                outcomes[name].status = "rejected"
                outcomes[name].completed_at = None
                outcomes[name].error = (
                    f"VM {vm} preempted at t={event.time_s:.0f}s and the "
                    f"remainder could not be re-placed: "
                    f"{type(exc).__name__}: {exc}"
                )
                rejected.append(name)
                continue
            state.placement = placement
            outcomes[name].recoveries += 1
            replaced.append(name)
        self._record_recovery(
            RecoveryAction(
                time_s=now, event_time_s=event.time_s, epoch=epoch,
                kind="vm-preemption", target=vm,
                # A preempted VM with nothing re-placeable on it still
                # records the removal, just not as a re-placement.
                action="re-placed" if replaced else "removed",
                apps=tuple(replaced),
            )
        )
        if rejected:
            self._record_recovery(
                RecoveryAction(
                    time_s=now, event_time_s=event.time_s, epoch=epoch,
                    kind="vm-preemption", target=vm,
                    action="rejected", apps=tuple(rejected),
                )
            )

    def _recover_degradation(
        self,
        event: LinkDegradation,
        running: Dict[str, LiveApp],
        now: float,
        epoch: int,
    ) -> None:
        """Invalidate cached pairs touching a degraded VM (targeted
        re-measurement at the next refresh); controls without a live cache
        coast on what they have."""
        vm = event.vm
        affected = self._apps_on_vm(running, vm)
        uses_cache = self.predictor not in ("oracle", "stale")
        if uses_cache and vm in self.cache.vms:
            self.cache.invalidate_pairs(
                [p for p in self.cache.mesh_pairs() if vm in p]
            )
            action = "re-measured"
        else:
            action = "degraded-coast"
        self._record_recovery(
            RecoveryAction(
                time_s=now, event_time_s=event.start_s, epoch=epoch,
                kind="link-degradation", target=vm,
                action=action, apps=tuple(affected),
            )
        )

    def _placement_profile(
        self, running: Dict[str, LiveApp], now: float, epoch: int
    ) -> NetworkProfile:
        """The profile placements during ``epoch`` should be made against.

        One profile serves every decision made at an instant: the TTL cache
        means a second refresh within the TTL returns the same rates anyway,
        so per-decision re-probing (with, say, per-app background exclusion)
        would only make the *first* decision of a tick special — the running
        apps' own traffic is part of what the campaign sees, for every app
        alike, exactly as the paper's measure-under-load admission does.
        Both sides of every migration comparison are priced on this same
        profile, so the self-interference bias cancels in the gain.
        """
        if self.predictor == "oracle":
            return NetworkProfile.from_rate_function(
                self.cluster.machine_names(), self.provider.true_path_rate
            )
        if self.predictor == "stale":
            # Frozen hour-0 view: bootstrap mesh only, never refreshed.
            return self.cache.profile(now)
        background = live_background_flows(running, now)
        current = self.cache.refresh(
            now, background=background,
            fallback=self._forecast_fallback(epoch),
        )
        return self.forecaster.forecast_profile(current, epoch)

    def _epoch_tick(
        self,
        running: Dict[str, LiveApp],
        outcomes: Dict[str, AppOutcome],
        now: float,
        epoch: int,
    ) -> None:
        """Record history, refresh the mesh, and re-evaluate placements."""
        _EPOCH_TICKS.inc()
        with obs.span(
            "service.epoch", epoch=epoch, running=len(running)
        ):
            self._epoch_tick_inner(running, outcomes, now, epoch)

    def _epoch_tick_inner(
        self,
        running: Dict[str, LiveApp],
        outcomes: Dict[str, AppOutcome],
        now: float,
        epoch: int,
    ) -> None:
        if self.forecaster is not None:
            # The cache's state at the boundary is what the service observed
            # during the epoch that just completed.
            self.forecaster.record_epoch(epoch - 1, self.cache.profile(now))
        if not self.migrate:
            # Still refresh the cache so history keeps accumulating.
            if self.predictor not in ("oracle", "stale"):
                self.cache.refresh(
                    now, background=live_background_flows(running, now),
                    fallback=self._forecast_fallback(epoch),
                )
            return
        # One refresh + forecast per tick, shared by every migration
        # decision below (see _placement_profile for why).
        profile = self._placement_profile(running, now, epoch)
        for name in sorted(running):
            state = running[name]
            if state.done:
                continue
            remaining_app = state.remaining_application()
            if remaining_app.total_bytes <= 0:
                continue
            try:
                proposal = propose_migration(
                    self.placer,
                    remaining_app,
                    state.placement,
                    cluster_with_live_usage(self.cluster, running, exclude=name),
                    profile,
                    now=now,
                    improvement_threshold=self.improvement_threshold,
                    rate_model=self.rate_model,
                )
            except ReproError:
                # A placer that cannot re-place the remainder (e.g. CPU
                # packing dead-end) simply keeps the current placement.
                continue
            if proposal is None:
                continue
            state.placement, event = proposal
            outcomes[name].migrations += 1
            self._migrations.append(event)
            _MIGRATIONS.inc()
            logger.info(
                "epoch %d: migrated %s (%d task(s), predicted gain %.1f%%)",
                epoch, name, len(event.moved_tasks),
                100.0 * event.estimated_gain_fraction,
            )

    def _admit_due(
        self,
        pending: List[Application],
        running: Dict[str, LiveApp],
        outcomes: Dict[str, AppOutcome],
        now: float,
        epoch: int,
    ) -> List[Application]:
        """Place every pending application whose arrival time has come."""
        remaining_pending = list(pending)
        while remaining_pending and remaining_pending[0].start_time <= now + 1e-9:
            app = remaining_pending.pop(0)
            profile = self._placement_profile(running, now, epoch)
            cluster_now = cluster_with_live_usage(self.cluster, running)
            try:
                placement = self.placer.place(app, cluster_now, profile)
            except ReproError as exc:
                outcomes[app.name] = AppOutcome(
                    name=app.name,
                    status="rejected",
                    arrived_at=now,
                    error=f"{type(exc).__name__}: {exc}",
                )
                _REJECTIONS.inc()
                logger.info(
                    "t=%.0fs: rejected %s (%s)", now, app.name,
                    type(exc).__name__,
                )
                continue
            _ADMISSIONS.inc()
            logger.debug(
                "t=%.0fs: admitted %s (%d task(s))",
                now, app.name, len(app.task_names),
            )
            running[app.name] = LiveApp(
                app=app,
                placement=placement,
                remaining={(s, d): v for s, d, v in app.transfers()},
                started=now,
            )
            outcomes[app.name] = AppOutcome(
                name=app.name, status="completed", arrived_at=now
            )
        return remaining_pending
