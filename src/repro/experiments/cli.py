"""Command-line entry point: ``python -m repro.experiments``.

A thin alias for ``python -m repro experiments`` (see :mod:`repro.cli`,
which owns the shared ``--seed``/``--jobs``/``--output``/``--param``
flags).  Three commands:

* ``list`` — show the registered scenarios (and placers);
* ``run`` — sweep scenarios x placers, write structured JSON results, and
  print the per-scenario speedup-over-baseline summary;
* ``bench`` — a fixed small grid timed end to end, emitting a compact
  machine-readable perf summary suitable for ``BENCH_*.json`` trajectory
  tracking.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.cli import common_parser, parse_params, parse_placer_params, parse_value
from repro.errors import ExperimentError, ReproError
from repro.experiments.backends import backend_names
from repro.experiments.placers import placer_names
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_PLACERS,
    ExperimentConfig,
    ExperimentRunner,
)
from repro.experiments.scenarios import get_scenario, list_scenarios, scenario_names

BENCH_SCENARIOS = ("smoke", "all-to-all", "partition-aggregate")

#: Historical spellings, kept for importers of the pre-dispatcher helpers.
_parse_value = parse_value
_parse_params = parse_params
_parse_placer_params = parse_placer_params


def _resolve_scenarios(requested: Sequence[str]) -> List[str]:
    if not requested:
        raise ExperimentError("no scenario given; try --scenario smoke or 'all'")
    if list(requested) == ["all"]:
        return scenario_names()
    for name in requested:
        get_scenario(name)
    return list(dict.fromkeys(requested))  # dedupe, keep order


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``list``/``run``/``bench`` commands to ``parser``.

    Called both by :func:`repro.cli.build_parser` (for ``python -m repro
    experiments``) and by this module's own :func:`main` (for the
    ``python -m repro.experiments`` alias), so the two spellings cannot
    diverge.  Shared flags come from :func:`repro.cli.common_parser`.
    """
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered scenarios and placers")
    list_cmd.add_argument("--tag", help="only scenarios carrying this tag")
    list_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    list_cmd.set_defaults(handler=_cmd_list)

    run_cmd = sub.add_parser(
        "run",
        help="sweep scenarios x placers and save JSON",
        parents=[
            common_parser(
                seed=0, jobs=1, output="experiment_results.json",
                params=True, placer_params=True,
            )
        ],
    )
    run_cmd.add_argument(
        "--scenario", action="append", default=[], metavar="NAME",
        help="scenario to run (repeatable; 'all' runs every registered one)",
    )
    run_cmd.add_argument(
        "--placers", default=",".join(DEFAULT_PLACERS),
        help=f"comma-separated placer names (default: {','.join(DEFAULT_PLACERS)})",
    )
    run_cmd.add_argument("--trials", type=int, default=3)
    run_cmd.add_argument(
        "--backend", default=None, choices=backend_names(), metavar="NAME",
        help=(
            "execution backend "
            f"({', '.join(backend_names())}; default: inline for --jobs 1, "
            "process otherwise)"
        ),
    )
    run_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "persistent result store: trials already computed there (by this "
            "exact code version) are not re-executed"
        ),
    )
    run_cmd.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir and execute every trial",
    )
    run_cmd.add_argument("--baseline", default="random")
    run_cmd.add_argument(
        "--fail-fast", action="store_true",
        help=(
            "abort the sweep on the first raising trial (default: capture "
            "it as a dropped trial and keep going)"
        ),
    )
    run_cmd.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help=(
            "subprocess-pool only: retry waves for trials whose worker "
            "died (default: 2)"
        ),
    )
    run_cmd.add_argument(
        "--chunk-timeout-s", type=float, default=None, metavar="SECONDS",
        help=(
            "subprocess-pool only: kill workers that outlive this budget "
            "and salvage their finished trials (default: wait forever)"
        ),
    )
    run_cmd.add_argument(
        "--endpoint", action="append", default=[], metavar="URL",
        help=(
            "remote backend only (repeatable): worker endpoint — "
            "http://host:port for a running worker, ssh://[user@]host:port "
            "to launch one there first; none given, the backend spawns a "
            "localhost pool of --jobs workers"
        ),
    )
    run_cmd.add_argument(
        "--heartbeat-timeout-s", type=float, default=None, metavar="SECONDS",
        help=(
            "remote backend only: a leased worker that streams no record "
            "for this long loses the lease — its finished trials are "
            "salvaged, the rest re-enqueued (default: 30)"
        ),
    )
    run_cmd.add_argument(
        "--stats", action="store_true",
        help="print the full telemetry snapshot (obs.metrics: store, "
        "allocator, fluid, measurement, fabric counters) after the run",
    )
    run_cmd.add_argument(
        "--cache-stats", action="store_true",
        help="deprecated alias for --stats",
    )
    run_cmd.set_defaults(handler=_cmd_run)

    bench_cmd = sub.add_parser(
        "bench",
        help="timed small grid; emits a BENCH_*.json perf summary",
        parents=[
            common_parser(seed=0, jobs=1, output="BENCH_experiments.json")
        ],
    )
    bench_cmd.add_argument(
        "--scenarios", default=",".join(BENCH_SCENARIOS),
        help=f"comma-separated scenarios (default: {','.join(BENCH_SCENARIOS)})",
    )
    bench_cmd.add_argument("--placers", default="greedy,random")
    bench_cmd.add_argument("--trials", type=int, default=2)
    bench_cmd.set_defaults(handler=_cmd_bench)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Choreo evaluation: scenario registry and experiment sweeps (§6).",
    )
    configure_parser(parser)
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_scenarios(tag=args.tag)
    if args.json:
        payload = {
            "scenarios": [
                {
                    "name": spec.name,
                    "description": spec.description,
                    "tags": list(spec.tags),
                    "params": dict(spec.defaults),
                }
                for spec in specs
            ],
            "placers": placer_names(),
            "backends": backend_names(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{len(specs)} scenario(s):")
    for spec in specs:
        tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        print(f"  {spec.name:<20}{tags}")
        print(f"      {spec.description}")
        if spec.defaults:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(spec.defaults.items()))
            print(f"      params: {rendered}")
    print(f"placers: {', '.join(placer_names())}")
    print(f"backends: {', '.join(backend_names())}")
    return 0


def _make_config(
    scenarios: Sequence[str],
    placers_csv: str,
    trials: int,
    seed: int,
    workers: int,
    baseline: str,
    param_items: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    cache_dir: Optional[str] = None,
    placer_param_items: Optional[Sequence[str]] = None,
    fail_fast: bool = False,
    max_retries: int = 2,
    chunk_timeout_s: Optional[float] = None,
    endpoints: Sequence[str] = (),
    heartbeat_timeout_s: Optional[float] = None,
) -> ExperimentConfig:
    placers = tuple(name.strip() for name in placers_csv.split(",") if name.strip())
    overrides = _parse_params(param_items)
    scenario_params = {
        name: {
            key: value
            for key, value in overrides.items()
            if key in get_scenario(name).defaults
        }
        for name in scenarios
    }
    unused = set(overrides) - {
        key for params in scenario_params.values() for key in params
    }
    if unused:
        raise ExperimentError(
            f"--param key(s) {sorted(unused)} match no parameter of the "
            f"selected scenario(s) {list(scenarios)}"
        )
    return ExperimentConfig(
        scenarios=tuple(scenarios),
        placers=placers,
        trials=trials,
        base_seed=seed,
        baseline=baseline,
        workers=None if workers == 0 else workers,
        backend=backend,
        cache_dir=cache_dir,
        scenario_params=scenario_params,
        placer_params=_parse_placer_params(placer_param_items),
        fail_fast=fail_fast,
        max_retries=max_retries,
        chunk_timeout_s=chunk_timeout_s,
        endpoints=tuple(endpoints),
        heartbeat_timeout_s=heartbeat_timeout_s,
    )


def _print_run_summary(result: ExperimentResult) -> None:
    summary = result.summary()
    for scenario in result.scenarios:
        print(f"scenario {scenario}:")
        for placer in result.placers:
            cell = summary[scenario][placer]
            if not cell.get("trials_ok"):
                print(f"  {placer:<12} all {cell['trials_failed']} trial(s) failed")
                continue
            line = (
                f"  {placer:<12} mean total running time "
                f"{cell['mean_total_running_time_s']:.1f}s"
            )
            speedup = cell.get(f"speedup_vs_{result.baseline}")
            if speedup:
                line += f", median speedup vs {result.baseline} {speedup['median_%']:.1f}%"
            if cell.get("mean_measurement_overhead_s"):
                line += f", measurement {cell['mean_measurement_overhead_s']:.0f}s"
            print(line)


def _cmd_run(args: argparse.Namespace) -> int:
    scenarios = _resolve_scenarios(args.scenario)
    show_stats = args.stats or args.cache_stats
    if args.cache_stats:
        print(
            "note: --cache-stats is deprecated; use --stats", file=sys.stderr
        )
    config = _make_config(
        scenarios, args.placers, args.trials, args.seed, args.jobs,
        args.baseline, args.param,
        backend=args.backend,
        cache_dir=None if args.no_cache else args.cache_dir,
        placer_param_items=args.placer_param,
        fail_fast=args.fail_fast,
        max_retries=args.max_retries,
        chunk_timeout_s=args.chunk_timeout_s,
        endpoints=args.endpoint,
        heartbeat_timeout_s=args.heartbeat_timeout_s,
    )
    runner = ExperimentRunner(config)
    result = runner.run()
    path = result.save(args.output)
    _print_run_summary(result)
    stats = runner.last_stats
    # Printed even on fully-warm runs ("executed 0 trial(s)"), so cache
    # behaviour is observable without opening the JSON.
    line = f"backend {stats.backend}: executed {stats.executed} trial(s)"
    if config.cache_dir:
        line += f", {stats.cache_hits} cache hit(s) from {config.cache_dir}"
    print(line)
    if show_stats:
        if runner.store is not None:
            counters = runner.store.stats
            print(
                "store stats: "
                f"hits={counters['hits']} misses={counters['misses']} "
                f"stored={counters['stored']} invalidated={counters['invalidated']}"
            )
        from repro import obs

        print("telemetry snapshot:")
        for name, value in sorted(obs.metrics.snapshot().items()):
            print(f"  {name} = {value}")
    failed = [rec for rec in result.records if not rec.ok]
    print(f"wrote {len(result.records)} trial record(s) to {path}")
    if failed:
        print(
            f"ERROR: {len(failed)} trial(s) failed; see 'error' fields in {path}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    scenarios = _resolve_scenarios(
        [name.strip() for name in args.scenarios.split(",") if name.strip()]
    )
    config = _make_config(
        scenarios, args.placers, args.trials, args.seed, args.jobs, "random"
    )
    started = time.perf_counter()
    result = ExperimentRunner(config).run()
    wall_s = time.perf_counter() - started

    ok = [rec for rec in result.records if rec.ok]
    summary = result.summary()
    per_scenario = {}
    for scenario in result.scenarios:
        cell_records = [rec for rec in ok if rec.scenario == scenario]
        entry: Dict[str, object] = {
            "mean_trial_wall_s": (
                sum(rec.trial_wall_s for rec in cell_records) / len(cell_records)
                if cell_records
                else None
            ),
        }
        for placer in result.placers:
            speedup = summary[scenario][placer].get("speedup_vs_random")
            if speedup:
                entry[f"median_speedup_{placer}_vs_random_%"] = speedup["median_%"]
        per_scenario[scenario] = entry

    payload = {
        "schema": "repro.experiments/bench/v1",
        "scenarios": list(result.scenarios),
        "placers": list(result.placers),
        "trials": config.trials,
        "workers": config.workers,
        "total_wall_s": round(wall_s, 3),
        "trials_total": len(result.records),
        "trials_ok": len(ok),
        "trials_per_second": round(len(result.records) / wall_s, 3) if wall_s else None,
        "per_scenario": per_scenario,
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.experiments``); exit code."""
    from repro import obs

    args = _build_parser().parse_args(argv)
    obs.apply_observability_args(args)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
