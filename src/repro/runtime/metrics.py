"""Speed-up metrics used in the evaluation (paper §6.2, §6.3).

The paper reports the *relative speed-up* of Choreo over an alternative
placement: if an application took five hours with the random placement and
four hours with Choreo, the relative speed-up is ``(5 - 4) / 5 = 20%``.
:class:`SpeedupSummary` aggregates a set of such speed-ups the same way the
paper does: mean/median over all applications, the fraction improved, the
statistics restricted to the improved applications, and the median slow-down
among the degraded ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import SimulationError


def relative_speedup(baseline_duration: float, choreo_duration: float) -> float:
    """Relative speed-up of Choreo over a baseline placement.

    Positive values mean Choreo was faster.  A zero-duration baseline with a
    zero-duration Choreo run counts as no change.
    """
    if baseline_duration < 0 or choreo_duration < 0:
        raise SimulationError("durations must be >= 0")
    if baseline_duration == 0:
        return 0.0 if choreo_duration == 0 else -float("inf")
    return (baseline_duration - choreo_duration) / baseline_duration


@dataclass(frozen=True)
class SpeedupSummary:
    """Aggregate statistics of a collection of relative speed-ups."""

    n: int
    mean: float
    median: float
    max: float
    min: float
    fraction_improved: float
    mean_improvement_when_improved: float
    median_improvement_when_improved: float
    median_slowdown_when_degraded: float

    def as_percentages(self) -> dict:
        """The summary with every ratio expressed in percent (for reports)."""
        return {
            "n": self.n,
            "mean_%": 100.0 * self.mean,
            "median_%": 100.0 * self.median,
            "max_%": 100.0 * self.max,
            "min_%": 100.0 * self.min,
            "fraction_improved_%": 100.0 * self.fraction_improved,
            "mean_improvement_when_improved_%": 100.0 * self.mean_improvement_when_improved,
            "median_improvement_when_improved_%": 100.0 * self.median_improvement_when_improved,
            "median_slowdown_when_degraded_%": 100.0 * self.median_slowdown_when_degraded,
        }


def speedup_summary(speedups: Sequence[float]) -> SpeedupSummary:
    """Summarise relative speed-ups the way §6.2/§6.3 report them."""
    values = np.asarray(list(speedups), dtype=float)
    if values.size == 0:
        raise SimulationError("cannot summarise an empty list of speed-ups")
    improved = values[values > 0]
    degraded = values[values < 0]
    return SpeedupSummary(
        n=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        max=float(values.max()),
        min=float(values.min()),
        fraction_improved=float((values > 0).mean()),
        mean_improvement_when_improved=float(improved.mean()) if improved.size else 0.0,
        median_improvement_when_improved=float(np.median(improved)) if improved.size else 0.0,
        median_slowdown_when_degraded=float(np.median(-degraded)) if degraded.size else 0.0,
    )
