"""Reproduction of "Choreo: Network-Aware Task Placement for Cloud Applications".

Sub-packages:

* :mod:`repro.net` — topologies, max-min fluid simulator, packet trains;
* :mod:`repro.cloud` — synthetic EC2/Rackspace-like providers;
* :mod:`repro.workloads` — applications, patterns, the HP-Cloud generator;
* :mod:`repro.core` — Choreo itself: profiling, measurement, placement;
* :mod:`repro.runtime` — executing placed applications on a provider;
* :mod:`repro.experiments` — the §6 evaluation: scenarios, sweeps, CLI;
* :mod:`repro.service` — the online placement service over drifting networks;
* :mod:`repro.bench` — tracked A/B benchmarks (``python -m repro bench``).

``repro`` itself re-exports the stable API surface below lazily (PEP 562),
so ``import repro`` stays cheap and scripts can write::

    from repro import resolve_placer, ExperimentConfig, run_churn_session

``python -m repro`` is the unified CLI dispatcher over the
``experiments``/``bench``/``service`` subcommands.
"""

from typing import TYPE_CHECKING

__version__ = "0.1.0"

#: The stable public surface.  Names map to ``module_attribute`` pairs and
#: resolve on first attribute access, keeping ``import repro`` dependency-free.
_EXPORTS = {
    # Placement registry facade (alias canonicalisation lives behind it).
    "resolve_placer": ("repro.experiments.placers", "resolve_placer"),
    "list_placers": ("repro.experiments.placers", "list_placers"),
    "PlacerSpec": ("repro.experiments.placers", "PlacerSpec"),
    # Measured network view and placement algorithms.
    "NetworkProfile": ("repro.core.network_profile", "NetworkProfile"),
    "MatrixNetworkProfile": ("repro.core.network_profile", "MatrixNetworkProfile"),
    "GreedyPlacer": ("repro.core.placement.greedy", "GreedyPlacer"),
    "Placement": ("repro.core.placement.base", "Placement"),
    "ClusterState": ("repro.core.placement.base", "ClusterState"),
    # Network simulation.
    "FluidSimulation": ("repro.net.fluid", "FluidSimulation"),
    "IncrementalAllocator": ("repro.net.alloc", "IncrementalAllocator"),
    "Topology": ("repro.net.topology", "Topology"),
    # Evaluation sweeps.
    "ExperimentConfig": ("repro.experiments.runner", "ExperimentConfig"),
    "ExperimentRunner": ("repro.experiments.runner", "ExperimentRunner"),
    # Online placement service.
    "run_churn_session": ("repro.service.session", "run_churn_session"),
    "build_churn_session": ("repro.service.session", "build_churn_session"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover — static-analysis view of the lazy names
    from repro.core.network_profile import (  # noqa: F401
        MatrixNetworkProfile,
        NetworkProfile,
    )
    from repro.core.placement.base import ClusterState, Placement  # noqa: F401
    from repro.core.placement.greedy import GreedyPlacer  # noqa: F401
    from repro.experiments.placers import (  # noqa: F401
        PlacerSpec,
        list_placers,
        resolve_placer,
    )
    from repro.experiments.runner import (  # noqa: F401
        ExperimentConfig,
        ExperimentRunner,
    )
    from repro.net.alloc import IncrementalAllocator  # noqa: F401
    from repro.net.fluid import FluidSimulation  # noqa: F401
    from repro.net.topology import Topology  # noqa: F401
    from repro.service.session import (  # noqa: F401
        build_churn_session,
        run_churn_session,
    )
