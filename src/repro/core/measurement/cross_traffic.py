"""Cross-traffic estimation (paper §3.2, Figure 4).

Choreo estimates the "equivalent number of concurrent bulk TCP connections"
``c`` on a path by running one bulk probe connection and measuring its
throughput frequently (every 10 ms): if the path's maximum rate is ``c1``
and the probe sees ``c2``, then ``c = c1/c2 - 1``.

``c`` is a measure of *load*, not a count of discrete connections: a value
of one simply means load equivalent to one continuously backlogged TCP
sender.  When the path's maximum rate is unknown, it can be inferred by
running first one and then two probe connections on the path
(:func:`infer_capacity_from_two_probes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError


@dataclass(frozen=True)
class CrossTrafficEstimate:
    """Cross-traffic estimate at one sampling instant."""

    time_s: float
    probe_rate_bps: float
    equivalent_connections: float

    @property
    def rounded(self) -> int:
        """The integer number of equivalent background connections."""
        return int(round(self.equivalent_connections))


def estimate_cross_traffic(
    probe_rate_bps: float, path_capacity_bps: float
) -> float:
    """The instantaneous estimate ``c = c1/c2 - 1`` (floored at zero)."""
    if path_capacity_bps <= 0:
        raise MeasurementError("path capacity must be positive")
    if probe_rate_bps <= 0:
        raise MeasurementError("probe rate must be positive")
    return max(path_capacity_bps / probe_rate_bps - 1.0, 0.0)


def estimate_cross_traffic_series(
    samples: Sequence[Tuple[float, float]],
    path_capacity_bps: float,
    smoothing_window: int = 1,
) -> List[CrossTrafficEstimate]:
    """Convert a probe throughput time series into a cross-traffic series.

    Args:
        samples: ``(time, probe_rate)`` samples, e.g. from
            :meth:`repro.cloud.provider.CloudProvider.probe_throughput_series`.
        path_capacity_bps: the path's maximum rate ``c1`` (known from the
            provider's advertised rate or a prior quiet measurement).
        smoothing_window: optional moving-average window (in samples) applied
            to the probe rate before estimating, to suppress sampling noise.

    Returns:
        One :class:`CrossTrafficEstimate` per input sample (samples with a
        zero probe rate are skipped — the probe was not running).
    """
    if smoothing_window < 1:
        raise MeasurementError("smoothing_window must be >= 1")
    rates = np.array([rate for _, rate in samples], dtype=float)
    if smoothing_window > 1 and len(rates) >= smoothing_window:
        kernel = np.ones(smoothing_window) / smoothing_window
        rates = np.convolve(rates, kernel, mode="same")
    estimates: List[CrossTrafficEstimate] = []
    for (time_s, _), rate in zip(samples, rates):
        if rate <= 0:
            continue
        estimates.append(
            CrossTrafficEstimate(
                time_s=time_s,
                probe_rate_bps=float(rate),
                equivalent_connections=estimate_cross_traffic(
                    float(rate), path_capacity_bps
                ),
            )
        )
    return estimates


def infer_capacity_from_two_probes(
    rate_one_probe_bps: float, rate_two_probes_bps: float
) -> Tuple[float, float]:
    """Infer path capacity and cross traffic from one- and two-probe runs.

    With ``c`` background connections on a path of capacity ``C``, one probe
    sees ``C / (c + 1)`` and each of two probes sees ``C / (c + 2)``.
    Solving the two equations gives ``c`` and ``C`` (§3.2's fallback when
    the maximum rate is unknown).

    Args:
        rate_one_probe_bps: throughput of a single probe connection.
        rate_two_probes_bps: per-connection throughput with two probes.

    Returns:
        ``(capacity_bps, equivalent_connections)``.

    Raises:
        MeasurementError: if the inputs are inconsistent (the two-probe rate
            must be positive and strictly smaller than the one-probe rate).
    """
    r1, r2 = rate_one_probe_bps, rate_two_probes_bps
    if r1 <= 0 or r2 <= 0:
        raise MeasurementError("probe rates must be positive")
    if r2 >= r1:
        # No measurable sharing: the path is not saturated by the probes, so
        # there is effectively no backlogged cross traffic and the capacity
        # is at least twice the two-probe rate.
        return 2.0 * r2, 0.0
    cross = (2.0 * r2 - r1) / (r1 - r2)
    cross = max(cross, 0.0)
    capacity = r1 * (cross + 1.0)
    return capacity, cross
