"""Exception hierarchy for the Choreo reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class TopologyError(ReproError):
    """Raised for malformed topologies or unknown nodes/links."""


class RoutingError(ReproError):
    """Raised when no route exists between two endpoints."""


class SimulationError(ReproError):
    """Raised when the fluid or packet simulator is driven inconsistently."""


class MeasurementError(ReproError):
    """Raised when a measurement cannot be carried out or parsed."""


class PlacementError(ReproError):
    """Raised when an application cannot be placed (e.g. CPU infeasible)."""


class WorkloadError(ReproError):
    """Raised for malformed applications, traces, or traffic matrices."""


class CloudError(ReproError):
    """Raised by the synthetic cloud providers (bad VM handles, etc.)."""


class ExperimentError(ReproError):
    """Raised by the evaluation subsystem (unknown scenarios, bad grids)."""


class ServiceError(ReproError):
    """Raised by the online placement service (bad timelines, predictors)."""


class FaultError(ReproError):
    """Raised by the fault-injection subsystem (bad events, malformed files)."""
