"""Long-running HTTP sweep worker: one machine of the remote fabric.

``python -m repro.experiments.worker --serve --port N`` starts a thin HTTP
server that executes chunk *leases* for the ``remote`` execution backend.
It speaks the existing :data:`~repro.experiments.backends.WORKER_SCHEMA`
JSONL wire format — the same lines a subprocess-pool worker writes to its
output file, streamed over the lease connection instead:

* ``POST /lease`` — body ``{"schema": ..., "lease_id": ..., "items":
  [...]}``; the response streams JSON Lines: a schema header, then one
  ``{"index": local_index, "record": {...}}`` line per completed trial
  (flushed immediately, so a dead worker leaves a salvageable prefix on
  the scheduler's side of the socket), then a ``{"done": true}`` trailer.
* ``GET /health`` — the scheduler's heartbeat probe; answered from a
  fresh thread even while a lease executes (or hangs), so it
  distinguishes *machine dead* from *lease stuck*.
* ``POST /shutdown`` — stop serving (for scripted teardown).

With ``--cache-dir`` the worker also stores every completed record into a
:class:`~repro.experiments.cache.ResultStore` at that path — pointed at a
network mount shared by all machines, N workers populate one
content-addressed store (the store's unique-temp-name + atomic-rename
writes make that safe), and flush observed per-cell costs the scheduler's
cost-aware chunker feeds on.

Endpoints come in two spellings.  ``http://host:port`` addresses a worker
that is already running; ``ssh://[user@]host:port`` is a thin launcher —
ssh starts the same ``--serve`` entry point on the remote host, then all
traffic flows over plain HTTP to ``host:port``.  Tests and CI spawn
several workers on localhost ports via :func:`spawn_local_workers`; no
ssh is required anywhere in the loop.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import select
import subprocess
import sys
import threading
import time
import urllib.parse
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ExperimentError
from repro.experiments.backends import (
    CHAOS_EXIT_STATUS,
    CHAOS_SLOW_S,
    WORKER_SCHEMA,
    _arm_chaos,
)
from repro.experiments.cache import ResultStore
from repro.experiments.trials import WorkItem, execute_work_item

#: Port an ``ssh://`` endpoint's worker listens on when the spelling names
#: none.  (HTTP endpoints on localhost pools always carry explicit ports.)
DEFAULT_WORKER_PORT = 7463


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """A parsed worker endpoint (see the module docstring for spellings)."""

    scheme: str
    host: str
    port: int
    user: Optional[str] = None


def parse_endpoint(spec: str) -> Endpoint:
    """Parse ``http://host:port`` / ``ssh://[user@]host[:port]`` / ``host:port``.

    A bare ``host:port`` is read as ``http://``.  Raises
    :class:`ExperimentError` on unknown schemes, missing hosts, bad ports,
    or decorations (paths, queries) the fabric has no meaning for.
    """
    text = str(spec).strip()
    if not text:
        raise ExperimentError("empty worker endpoint")
    if "://" not in text:
        text = "http://" + text
    parsed = urllib.parse.urlsplit(text)
    if parsed.scheme not in ("http", "ssh"):
        raise ExperimentError(
            f"unsupported endpoint scheme {parsed.scheme!r} in {spec!r}; "
            "use http://host:port or ssh://[user@]host[:port]"
        )
    if not parsed.hostname:
        raise ExperimentError(f"endpoint {spec!r} names no host")
    if parsed.path or parsed.query or parsed.fragment:
        raise ExperimentError(
            f"endpoint {spec!r} must be scheme://[user@]host[:port], "
            "nothing after the port"
        )
    if parsed.username and parsed.scheme != "ssh":
        raise ExperimentError(
            f"endpoint {spec!r}: user@ only makes sense with ssh://"
        )
    try:
        port = parsed.port
    except ValueError as exc:
        raise ExperimentError(f"bad port in endpoint {spec!r}: {exc}") from exc
    return Endpoint(
        scheme=parsed.scheme,
        host=parsed.hostname,
        port=port if port is not None else DEFAULT_WORKER_PORT,
        user=parsed.username,
    )


def ssh_launch_command(
    endpoint: Endpoint,
    python: str = "python3",
    cache_dir: Optional[str] = None,
) -> List[str]:
    """The ssh command line that launches a worker for ``endpoint``.

    Thin by design: ssh only starts ``python -m repro.experiments.worker
    --serve`` on the remote host (which must have ``repro`` importable and
    the shared store mounted at ``cache_dir``); every subsequent byte flows
    over plain HTTP to ``host:port``.
    """
    if endpoint.scheme != "ssh":
        raise ExperimentError(
            f"ssh launch asked for a {endpoint.scheme!r} endpoint"
        )
    target = f"{endpoint.user}@{endpoint.host}" if endpoint.user else endpoint.host
    remote = [
        python, "-m", "repro.experiments.worker",
        "--serve", "--host", "0.0.0.0", "--port", str(endpoint.port),
    ]
    if cache_dir:
        remote += ["--cache-dir", str(cache_dir)]
    return ["ssh", target, *remote]


def launch_ssh_worker(
    endpoint: Endpoint,
    python: str = "python3",
    cache_dir: Optional[str] = None,
) -> subprocess.Popen:
    """Launch a worker over ssh (see :func:`ssh_launch_command`)."""
    return subprocess.Popen(
        ssh_launch_command(endpoint, python=python, cache_dir=cache_dir)
    )


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------
class _WorkerState:
    """Thread-shared counters plus the optional shared result store."""

    def __init__(self, store: Optional[ResultStore] = None):
        self.store = store
        self.lock = threading.Lock()
        self.started_at = time.monotonic()
        self.active_leases = 0
        self.leases_done = 0
        self.trials_done = 0
        # Progress of the most recently started lease, for live /health:
        # the scheduler (or a human) can watch a chunk advance mid-lease.
        self.current_lease_id: Optional[str] = None
        self.current_lease_total = 0
        self.current_lease_done = 0

    def lease_started(self, lease_id: str, total: int) -> None:
        with self.lock:
            self.active_leases += 1
            self.current_lease_id = lease_id
            self.current_lease_total = total
            self.current_lease_done = 0

    def lease_done(self, lease_id: str) -> None:
        with self.lock:
            self.active_leases -= 1
            self.leases_done += 1
            if self.current_lease_id == lease_id:
                self.current_lease_id = None
                self.current_lease_total = 0
                self.current_lease_done = 0

    def record_done(self, item: WorkItem, record) -> None:
        with self.lock:
            self.trials_done += 1
            self.current_lease_done += 1
        if self.store is None:
            return
        key = self.store.key_for(
            item.scenario, item.placer, item.trial, item.seed,
            params=dict(item.params),
            placer_params=dict(item.placer_params),
        )
        self.store.put(key, record)
        # Flushed per record, not per lease: even a worker that dies
        # mid-lease leaves its observed costs for the next sweep's chunker.
        self.store.flush_costs()

    def snapshot(self) -> Dict[str, object]:
        with self.lock:
            return {
                "schema": WORKER_SCHEMA,
                "status": "ok",
                "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "busy": self.active_leases > 0,
                "active_leases": self.active_leases,
                "leases_done": self.leases_done,
                "trials_done": self.trials_done,
                "current_lease": (
                    {
                        "lease_id": self.current_lease_id,
                        "trials_done": self.current_lease_done,
                        "trials_total": self.current_lease_total,
                    }
                    if self.current_lease_id is not None
                    else None
                ),
            }


class _LeaseHandler(BaseHTTPRequestHandler):
    server_version = "repro-worker"
    protocol_version = "HTTP/1.0"  # connection-close delimits the stream

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the scheduler owns reporting; workers stay quiet

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._reply(200, self.server.worker_state.snapshot())
            return
        if self.path == "/metrics":
            # Prometheus text exposition of this worker process's live
            # obs registry; answered from a fresh thread even mid-lease,
            # like /health, so scrapes see trial counters advance.
            body = obs.metrics.prometheus_text().encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/shutdown":
            self._reply(200, {"status": "shutting down"})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        if self.path != "/lease":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length))
            if payload.get("schema") != WORKER_SCHEMA:
                raise ExperimentError(
                    f"unexpected lease schema {payload.get('schema')!r}"
                )
            lease_id = str(payload.get("lease_id", "lease"))
            items = [WorkItem.from_json_dict(d) for d in payload.get("items", [])]
        except (ValueError, TypeError, KeyError, ExperimentError) as exc:
            self._reply(400, {"error": f"bad lease request: {exc}"})
            return
        self._stream_lease(lease_id, items)

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_lease(self, lease_id: str, items: Sequence[WorkItem]) -> None:
        """Execute the leased chunk, streaming one flushed line per trial.

        The chaos hook (same env contract as the subprocess pool) fires
        here, per lease: ``crash`` exits the whole process after the first
        record (the scheduler sees the connection die mid-chunk), ``hang``
        stops streaming without dying (the scheduler's heartbeat deadline
        must catch it), ``slow`` drags every subsequent trial (straggler).
        """
        state = self.server.worker_state
        chaos_mode = _arm_chaos()
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.end_headers()
        state.lease_started(lease_id, len(items))
        try:
            self._send_line(
                {"schema": WORKER_SCHEMA, "lease_id": lease_id, "pid": os.getpid()}
            )
            completed = 0
            for local_index, item in enumerate(items):
                record = execute_work_item(item)
                state.record_done(item, record)
                self._send_line({"index": local_index, "record": asdict(record)})
                completed += 1
                if chaos_mode == "crash":
                    os._exit(CHAOS_EXIT_STATUS)
                elif chaos_mode == "hang":
                    time.sleep(3600)
                elif chaos_mode == "slow":
                    time.sleep(CHAOS_SLOW_S)
            self._send_line({"done": True, "lease_id": lease_id, "completed": completed})
        except (BrokenPipeError, ConnectionResetError):
            pass  # the scheduler revoked the lease; stop burning its trials
        finally:
            state.lease_done(lease_id)

    def _send_line(self, obj: Dict[str, object]) -> None:
        self.wfile.write((json.dumps(obj) + "\n").encode())
        self.wfile.flush()


class WorkerServer(ThreadingHTTPServer):
    """One worker: a threading HTTP server wrapping a :class:`_WorkerState`.

    Threading matters: ``/health`` must answer from a fresh thread while a
    lease executes (or hangs), or the scheduler could not tell a stuck
    lease from a dead machine.
    """

    daemon_threads = True  # a hung lease thread must not block exit
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], state: _WorkerState):
        super().__init__(address, _LeaseHandler)
        self.worker_state = state


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------
class LeaseStream:
    """Reader of one streaming ``/lease`` response.

    :meth:`poll` hands back whatever complete JSON lines arrived within a
    short timeout, so the scheduler's reader loop can keep checking its
    cancel flag without losing bytes: partial lines stay buffered across
    polls, and a garbled tail at connection end is skipped — exactly the
    subprocess pool's salvage rule for a file cut off mid-write.
    """

    def __init__(self, conn: http.client.HTTPConnection, resp, sock):
        self._conn = conn
        self._resp = resp
        # ``conn.sock`` is None once getresponse() hands an HTTP/1.0
        # connection to the response, so the socket is captured before
        # that.  All body reads go through ``select`` + ``recv`` on this
        # raw socket: reading ``resp.fp`` with timeouts is a trap — one
        # timeout poisons SocketIO (``cannot read from timed out object``)
        # and every read after it looks like EOF.
        self._sock = sock
        self._buf = b""
        self.eof = False
        # http.client reads headers through a buffered file and may have
        # over-read the start of the body into that buffer; steal it once
        # (non-blocking) before abandoning ``resp.fp`` for the raw socket.
        self._sock.settimeout(0)
        try:
            while True:
                head = resp.fp.read1(65536)
                if not head:
                    break
                self._buf += head
        except (BlockingIOError, InterruptedError, ValueError, OSError):
            pass

    def poll(self, timeout_s: float) -> List[dict]:
        """Parsed objects that arrived within ``timeout_s`` (maybe none)."""
        if self.eof:
            return []
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout_s)
        except (OSError, ValueError):
            ready = []  # socket already torn down: salvage the prefix
        if not ready and not self._buf:
            return []
        chunk = b""
        if ready:
            try:
                chunk = self._sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return []  # spurious wakeup
            except OSError:
                chunk = b""  # reset mid-stream: same as EOF
        if not chunk and not self._buf:
            self.eof = True
            return []
        if not chunk and ready:
            self.eof = True
        self._buf += chunk
        out: List[dict] = []
        while b"\n" in self._buf:
            line, self._buf = self._buf.split(b"\n", 1)
            try:
                data = json.loads(line)
            except ValueError:
                continue  # garbled line: everything around it stands
            if isinstance(data, dict):
                out.append(data)
        return out

    def close(self) -> None:
        for target in (self._resp, self._conn):
            try:
                target.close()
            except OSError:
                pass


class WorkerClient:
    """HTTP client for one worker endpoint (health probes, lease streams)."""

    def __init__(self, host: str, port: int, connect_timeout_s: float = 10.0):
        self.host = host
        self.port = int(port)
        self.connect_timeout_s = connect_timeout_s

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def open_lease(self, lease_id: str, items: Sequence[dict]) -> LeaseStream:
        """POST a chunk lease; returns the record stream.

        Raises :class:`ExperimentError` (worker refused) or ``OSError``
        (unreachable); the scheduler turns both into a failed lease.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout_s
        )
        body = json.dumps(
            {"schema": WORKER_SCHEMA, "lease_id": lease_id, "items": list(items)}
        ).encode()
        conn.request(
            "POST", "/lease", body=body,
            headers={"Content-Type": "application/json"},
        )
        sock = conn.sock  # getresponse() may null this out (HTTP/1.0 close)
        resp = conn.getresponse()
        if resp.status != 200:
            detail = resp.read(500)
            conn.close()
            raise ExperimentError(
                f"worker {self.address} refused lease {lease_id}: "
                f"HTTP {resp.status} {detail!r}"
            )
        return LeaseStream(conn, resp, sock)

    def health(self, timeout_s: float = 2.0) -> Optional[dict]:
        """The worker's ``/health`` snapshot, or ``None`` if unreachable."""
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s
            )
            try:
                conn.request("GET", "/health")
                resp = conn.getresponse()
                data = resp.read()
            finally:
                conn.close()
            if resp.status != 200:
                return None
            payload = json.loads(data)
            return payload if isinstance(payload, dict) else None
        except (OSError, ValueError):
            return None

    def shutdown(self, timeout_s: float = 2.0) -> bool:
        """Ask the worker to stop serving; True if it acknowledged."""
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s
            )
            try:
                conn.request("POST", "/shutdown")
                resp = conn.getresponse()
                resp.read()
            finally:
                conn.close()
            return resp.status == 200
        except OSError:
            return False


# ---------------------------------------------------------------------------
# Local pools (tests, benches, CI — and the backend's no-endpoint default)
# ---------------------------------------------------------------------------
class LocalWorkerPool:
    """A handful of localhost worker processes with their addresses."""

    def __init__(self, procs: List[subprocess.Popen], addresses: List[Tuple[str, int]]):
        self.procs = procs
        self.addresses = addresses

    @property
    def endpoints(self) -> List[str]:
        return [f"http://{host}:{port}" for host, port in self.addresses]

    def kill(self, index: int) -> None:
        """Hard-kill one worker — chaos shorthand for a machine dying."""
        proc = self.procs[index]
        if proc.poll() is None:
            proc.kill()
        proc.wait()

    def close(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def spawn_local_workers(
    n: int,
    cache_dir: Optional[str] = None,
    host: str = "127.0.0.1",
) -> LocalWorkerPool:
    """Spawn ``n`` workers on OS-assigned localhost ports.

    Each worker prints a one-line ``listening`` JSON event on stdout once
    bound; this blocks until all have (they cold-start concurrently).
    """
    procs: List[subprocess.Popen] = []
    try:
        from repro.experiments.backends import _worker_env

        env = _worker_env()
        for _ in range(max(1, n)):
            cmd = [
                sys.executable, "-m", "repro.experiments.worker",
                "--serve", "--host", host, "--port", "0",
            ]
            if cache_dir:
                cmd += ["--cache-dir", str(cache_dir)]
            procs.append(
                subprocess.Popen(
                    cmd, env=env, text=True,
                    stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                )
            )
        addresses = [_await_listening(proc) for proc in procs]
    except BaseException:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait()
        raise
    return LocalWorkerPool(procs, addresses)


def _await_listening(proc: subprocess.Popen) -> Tuple[str, int]:
    line = proc.stdout.readline()
    if not line:
        proc.wait()
        stderr = (proc.stderr.read() or "").strip()
        raise ExperimentError(
            f"worker exited with status {proc.returncode} before listening"
            + (f": {stderr[-500:]}" if stderr else "")
        )
    try:
        data = json.loads(line)
        if data.get("event") != "listening":
            raise ValueError(f"unexpected startup line {line!r}")
        return (str(data["host"]), int(data["port"]))
    except (ValueError, KeyError, TypeError) as exc:
        raise ExperimentError(f"garbled worker startup line: {exc}") from exc


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.experiments.worker --serve [--port N]``; exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.worker",
        description=(
            "Long-running sweep worker: serves chunk leases for the "
            "'remote' execution backend over HTTP (JSONL record stream)."
        ),
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="start serving (required; guards against bare invocation)",
    )
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    parser.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="listen port (0 = OS-assigned, reported on stdout)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "shared ResultStore to write every completed record (and "
            "observed per-cell costs) into — point every machine of a "
            "fabric at the same network mount"
        ),
    )
    args = parser.parse_args(argv)
    if not args.serve:
        parser.error("nothing to do: pass --serve")
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    server = WorkerServer((args.host, args.port), _WorkerState(store))
    host, port = server.server_address[:2]
    # Stamp every trace event this worker emits with its fabric identity
    # (the tracer itself is armed by an inherited REPRO_TRACE, if any).
    os.environ.setdefault(obs.WORKER_ID_ENV, f"{host}:{port}")
    print(
        json.dumps(
            {
                "schema": WORKER_SCHEMA,
                "event": "listening",
                "host": str(host),
                "port": int(port),
                "pid": os.getpid(),
            }
        ),
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
