"""EC2-like synthetic provider (May 2013 measurements, Figures 2a, 6a, 7a, 8).

The generative model encodes what the paper measured on Amazon EC2 medium
instances in May 2013:

* per-VM hose-model egress caps: roughly 80% of paths between 900 and
  1100 Mbit/s (two modes producing the knees near 950 and 1100 Mbit/s),
  a small slow tail down to ~300 Mbit/s, mean ≈ 957 Mbit/s;
* a few colocated VM pairs whose paths reach ~4 Gbit/s (18 of 1710 paths);
* strong temporal stability (median prediction error below 1%, §4.1);
* bottlenecks at the first hop (hose model), so physical fabric links are
  fast relative to the hose;
* multi-rooted-tree hop counts in {1, 2, 4, 6, 8} (the 8-hop paths come from
  topologies with an extra aggregation tier).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.cloud.instances import EC2_MEDIUM
from repro.cloud.provider import CloudProvider, ProviderParams
from repro.cloud.registry import register_provider
from repro.net.topology import TreeSpec
from repro.units import GBITPS, MBITPS


def ec2_hose_sampler(rng: np.random.Generator) -> float:
    """Draw one VM's egress cap from the EC2 May-2013 mixture."""
    roll = rng.random()
    if roll < 0.62:
        rate = rng.normal(935 * MBITPS, 25 * MBITPS)
    elif roll < 0.92:
        rate = rng.normal(1085 * MBITPS, 25 * MBITPS)
    else:
        rate = rng.uniform(300 * MBITPS, 900 * MBITPS)
    return float(np.clip(rate, 296 * MBITPS, 1200 * MBITPS))


def ec2_tree_spec(extra_agg_layer: bool = False) -> TreeSpec:
    """Physical topology used by the EC2-like provider.

    Fabric links are fast relative to the per-VM hose so that the bottleneck
    sits at the first hop, matching §4.3.
    """
    return TreeSpec(
        hosts_per_rack=4,
        racks_per_pod=2,
        pods=3,
        num_cores=2,
        host_link_bps=10 * GBITPS,
        tor_agg_link_bps=40 * GBITPS,
        agg_core_link_bps=40 * GBITPS,
        intra_host_bps=4 * GBITPS,
        extra_agg_layer=extra_agg_layer,
    )


def ec2_params(
    extra_agg_layer: bool = False,
    colocation_probability: float = 0.05,
) -> ProviderParams:
    """Parameters of the EC2-like provider."""
    return ProviderParams(
        name="ec2",
        instance_type=EC2_MEDIUM,
        hose_sampler=ec2_hose_sampler,
        colocation_probability=colocation_probability,
        intra_host_rate_bps=4 * GBITPS,
        temporal_sigma=0.015,
        temporal_tau_s=600.0,
        measurement_noise=0.004,
        train_jitter_std_s=200e-6,
        train_limiter_depth_bytes=None,
        train_rate_noise=0.06,
        loss_rate=0.0,
        traceroute_visible_hops=None,
        tree_spec=ec2_tree_spec(extra_agg_layer=extra_agg_layer),
    )


class EC2Provider(CloudProvider):
    """The EC2-like provider with the May-2013 network model."""

    def __init__(
        self,
        seed: int = 0,
        extra_agg_layer: bool = False,
        colocation_probability: float = 0.05,
        params: Optional[ProviderParams] = None,
    ):
        if params is None:
            params = ec2_params(
                extra_agg_layer=extra_agg_layer,
                colocation_probability=colocation_probability,
            )
        super().__init__(params, seed=seed)


register_provider("ec2", EC2Provider)
