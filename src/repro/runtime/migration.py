"""Periodic re-evaluation and migration (paper §2.4).

Every ``T`` minutes Choreo re-evaluates its placement of the applications
that are still running and migrates tasks if a better placement exists; a
smaller ``T`` makes sense when migration is cheap.  The paper does not
evaluate this mechanism (its §6.3 results are explicitly *without*
re-evaluation), so this runner exists to (a) implement the mechanism the
paper describes and (b) drive our ablation bench on the re-evaluation
interval.

The simulation proceeds epoch by epoch: epochs are delimited by application
arrivals and re-evaluation ticks.  Within an epoch the current placements'
remaining transfers run on the fluid simulator; at a tick, each running
application's *remaining* traffic matrix is re-placed and, if the placement
changed and the estimated completion time improves by more than a threshold,
the application migrates (its remaining bytes continue from the new
placement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.provider import CloudProvider, VMFlow
from repro.core.estimator import estimate_completion_time
from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer
from repro.errors import SimulationError
from repro.runtime.executor import ApplicationRun
from repro.runtime.sequence import SequenceResult
from repro.workloads.application import Application, Task, TrafficMatrix


@dataclass(frozen=True)
class MigrationEvent:
    """One migration decision taken at a re-evaluation tick."""

    time_s: float
    app_name: str
    moved_tasks: Tuple[str, ...]
    estimated_gain_fraction: float


def propose_migration(
    placer: Placer,
    remaining_app: Application,
    current: Placement,
    cluster: ClusterState,
    profile: NetworkProfile,
    now: float,
    improvement_threshold: float = 0.05,
    rate_model: str = "hose",
) -> Optional[Tuple[Placement, MigrationEvent]]:
    """The §2.4 re-evaluation decision for one running application.

    Re-places the application's *remaining* traffic on ``cluster`` (which
    must exclude the application's own CPU) under ``profile`` and accepts
    the candidate only when its estimated completion time beats the current
    placement's by more than ``improvement_threshold``.

    Returns ``(new_placement, event)`` when the application should migrate,
    ``None`` otherwise.  Shared by :class:`MigratingSequenceRunner` (clock
    ticks) and the online service's predictor-triggered re-evaluation
    (epoch boundaries, forecast profiles).
    """
    candidate = placer.place(remaining_app, cluster, profile)
    if candidate.assignments == current.assignments:
        return None
    current_estimate = estimate_completion_time(
        current.assignments, remaining_app, profile, model=rate_model
    )
    candidate_estimate = estimate_completion_time(
        candidate.assignments, remaining_app, profile, model=rate_model
    )
    if current_estimate <= 0:
        return None
    gain = (current_estimate - candidate_estimate) / current_estimate
    if gain <= improvement_threshold:
        return None
    moved = tuple(
        sorted(
            task
            for task, machine in candidate.assignments.items()
            if current.assignments.get(task) != machine
        )
    )
    event = MigrationEvent(
        time_s=now,
        app_name=remaining_app.name,
        moved_tasks=moved,
        estimated_gain_fraction=gain,
    )
    return candidate, event


@dataclass
class LiveApp:
    """Book-keeping for an application while it is running.

    Shared by the §2.4 :class:`MigratingSequenceRunner` and the online
    placement service: both track, per admitted application, its current
    placement and the bytes each task pair still has to move.
    """

    app: Application
    placement: Placement
    remaining: Dict[Tuple[str, str], float]
    started: float
    completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return all(volume <= 1e-6 for volume in self.remaining.values())

    def remaining_application(self) -> Application:
        """The application restricted to its remaining bytes."""
        traffic = TrafficMatrix()
        for (src, dst), volume in self.remaining.items():
            if volume > 1e-6:
                traffic.add(src, dst, volume)
        return Application(
            name=self.app.name,
            tasks=[Task(t.name, t.cpu_cores) for t in self.app.tasks],
            traffic=traffic,
            start_time=self.app.start_time,
        )

    def live_flows(self, start: float) -> List[VMFlow]:
        """The remaining transfers as VM flows starting at ``start``.

        Task pairs whose endpoints share a VM under the *current* placement
        move their bytes off-network immediately (their remaining volume is
        zeroed), exactly as :func:`~repro.runtime.executor.placement_to_flows`
        accounts colocated bytes.
        """
        flows: List[VMFlow] = []
        for index, ((src_task, dst_task), volume) in enumerate(
            sorted(self.remaining.items())
        ):
            if volume <= 1e-6:
                continue
            src_vm = self.placement.machine_of(src_task)
            dst_vm = self.placement.machine_of(dst_task)
            if src_vm == dst_vm:
                self.remaining[(src_task, dst_task)] = 0.0
                continue
            flows.append(
                VMFlow(
                    flow_id=f"{self.app.name}:{index}:{src_task}->{dst_task}",
                    src_vm=src_vm,
                    dst_vm=dst_vm,
                    size_bytes=volume,
                    start_time=start,
                    tag=self.app.name,
                )
            )
        return flows


def live_background_flows(
    running: Dict[str, LiveApp], now: float, exclude: Optional[str] = None
) -> List[VMFlow]:
    """Every active application's remaining flows (cross traffic for
    measurements and admissions), optionally excluding one application."""
    flows: List[VMFlow] = []
    for name, state in running.items():
        if name == exclude or state.done:
            continue
        flows.extend(state.live_flows(start=now))
    return flows


def cluster_with_live_usage(
    cluster: ClusterState,
    running: Dict[str, LiveApp],
    exclude: Optional[str] = None,
) -> ClusterState:
    """``cluster`` with the CPU of active applications applied, optionally
    excluding one application (re-placing it must free its own cores)."""
    usage: Dict[str, float] = {}
    for name, state in running.items():
        if name == exclude or state.done:
            continue
        for machine, cores in state.placement.cpu_usage(state.app).items():
            usage[machine] = usage.get(machine, 0.0) + cores
    return cluster.with_usage(usage)


def advance_live_apps(
    provider: CloudProvider,
    running: Dict[str, LiveApp],
    start: float,
    until: Optional[float],
) -> None:
    """Run every active application's remaining flows from ``start``.

    Simulates the flows on the provider's network (at the provider's
    *current* rates — callers segment time so rates are constant within a
    call), debits each pair's remaining bytes, and stamps ``completed_at``
    on applications whose last flow finished within the segment.
    """
    flow_owner: Dict[str, Tuple[str, Tuple[str, str]]] = {}
    all_flows: List[VMFlow] = []
    for name, state in running.items():
        if state.done:
            continue
        for flow in state.live_flows(start=start):
            task_pair = tuple(flow.flow_id.split(":", 2)[2].split("->"))
            flow_owner[flow.flow_id] = (name, (task_pair[0], task_pair[1]))
            all_flows.append(flow)
    if not all_flows:
        return
    result = provider.simulate(all_flows, until=until)
    for flow in all_flows:
        name, pair = flow_owner[flow.flow_id]
        state = running[name]
        if flow.flow_id in result.completion_times:
            state.remaining[pair] = 0.0
        else:
            state.remaining[pair] = result.remaining_bytes.get(
                flow.flow_id, state.remaining[pair]
            )
    for name, state in running.items():
        if state.completed_at is None and state.done and not state.app.num_tasks == 0:
            finish_times = [
                result.completion_times[flow.flow_id]
                for flow in all_flows
                if flow_owner[flow.flow_id][0] == name
                and flow.flow_id in result.completion_times
            ]
            state.completed_at = max(finish_times, default=start)


class MigratingSequenceRunner:
    """Sequential placement with periodic re-evaluation and migration."""

    def __init__(
        self,
        provider: CloudProvider,
        cluster: ClusterState,
        placer: Placer,
        reevaluation_interval_s: float = 600.0,
        improvement_threshold: float = 0.05,
        measurement: Optional[MeasurementPlan] = None,
        rate_model: str = "hose",
    ):
        if reevaluation_interval_s <= 0:
            raise SimulationError("reevaluation_interval_s must be positive")
        if not 0.0 <= improvement_threshold < 1.0:
            raise SimulationError("improvement_threshold must be in [0, 1)")
        self.provider = provider
        self.cluster = cluster
        self.placer = placer
        self.interval = reevaluation_interval_s
        self.improvement_threshold = improvement_threshold
        if measurement is None:
            measurement = MeasurementPlan(advance_clock=False)
        self.measurer = NetworkMeasurer(provider, plan=measurement)
        self.rate_model = rate_model
        self.migrations: List[MigrationEvent] = []

    # ------------------------------------------------------------------ run
    def run(self, apps: Sequence[Application]) -> SequenceResult:
        """Run the sequence with re-evaluation every ``interval`` seconds."""
        if not apps:
            raise SimulationError("run needs at least one application")
        ordered = sorted(apps, key=lambda a: (a.start_time, a.name))
        self.migrations = []

        running: Dict[str, LiveApp] = {}
        placements: Dict[str, Placement] = {}
        arrivals = {app.start_time for app in ordered}
        pending = list(ordered)
        now = min(arrivals)
        next_tick = now + self.interval

        # Admit applications arriving at the very first instant.
        pending = self._admit(pending, running, placements, now)

        safety = 0
        while pending or any(not state.done for state in running.values()):
            safety += 1
            if safety > 100_000:
                raise SimulationError("migration runner did not converge")
            next_arrival = pending[0].start_time if pending else math.inf
            active_exists = any(not state.done for state in running.values())
            tick = next_tick if active_exists else math.inf
            horizon = min(next_arrival, tick)

            if math.isinf(horizon):
                horizon = None  # run the remaining flows to completion
            advance_live_apps(self.provider, running, now, horizon)
            if horizon is None:
                break
            now = horizon

            if pending and now >= pending[0].start_time - 1e-9:
                pending = self._admit(pending, running, placements, now)
            if now >= next_tick - 1e-9:
                self._reevaluate(running, placements, now)
                next_tick = now + self.interval

        runs = {
            name: ApplicationRun(
                app_name=name,
                start_time=state.started,
                completion_time=(
                    state.completed_at if state.completed_at is not None else state.started
                ),
            )
            for name, state in running.items()
        }
        return SequenceResult(runs=runs, placements=placements)

    # ------------------------------------------------------------- internals
    def _admit(
        self,
        pending: List[Application],
        running: Dict[str, LiveApp],
        placements: Dict[str, Placement],
        now: float,
    ) -> List[Application]:
        """Place every pending application whose start time has arrived."""
        remaining_pending = list(pending)
        while remaining_pending and remaining_pending[0].start_time <= now + 1e-9:
            app = remaining_pending.pop(0)
            background = live_background_flows(running, now)
            cluster_now = cluster_with_live_usage(self.cluster, running)
            profile = self.measurer.measure(
                cluster_now.machine_names(), background=background
            )
            placement = self.placer.place(app, cluster_now, profile)
            placements[app.name] = placement
            running[app.name] = LiveApp(
                app=app,
                placement=placement,
                remaining={(s, d): v for s, d, v in app.transfers()},
                started=now,
            )
        return remaining_pending

    def _reevaluate(
        self,
        running: Dict[str, LiveApp],
        placements: Dict[str, Placement],
        now: float,
    ) -> None:
        """Re-place every running application's remaining traffic (§2.4)."""
        for name, state in running.items():
            if state.done:
                continue
            remaining_app = state.remaining_application()
            if remaining_app.total_bytes <= 0:
                continue
            background = live_background_flows(running, now, exclude=name)
            cluster_now = cluster_with_live_usage(
                self.cluster, running, exclude=name
            )
            profile = self.measurer.measure(
                cluster_now.machine_names(), background=background
            )
            proposal = propose_migration(
                self.placer,
                remaining_app,
                state.placement,
                cluster_now,
                profile,
                now=now,
                improvement_threshold=self.improvement_threshold,
                rate_model=self.rate_model,
            )
            if proposal is None:
                continue
            candidate, event = proposal
            self.migrations.append(event)
            state.placement = candidate
            placements[name] = candidate
