"""Synthetic cloud provider substrate.

The paper measures Amazon EC2 and Rackspace (May 2012 and May 2013) and runs
its evaluation by transferring real traffic on EC2.  We cannot use those
networks, so this package provides synthetic providers whose *generative*
models encode the paper's measurement findings: hose-model egress rate
limiting, ~1 Gbit/s EC2 paths with ~20% spatial variation and colocated
~4 Gbit/s outliers, uniform 300 Mbit/s Rackspace paths, strong temporal
stability, and multi-rooted-tree hop counts.

Every provider exposes the measurement API Choreo needs (netperf-style bulk
transfers, packet trains, traceroute, probe time series) plus an execution
API used by :mod:`repro.runtime` to "run" placed applications.
"""

from repro.cloud.instances import InstanceType, VirtualMachine
from repro.cloud.provider import CloudProvider, ProviderParams, VMFlow
from repro.cloud.registry import make_provider, provider_names, register_provider
from repro.cloud.ec2 import EC2Provider, ec2_params
from repro.cloud.ec2_legacy import EC2LegacyProvider, ec2_legacy_params, EC2_LEGACY_ZONES
from repro.cloud.rackspace import RackspaceProvider, rackspace_params
from repro.cloud.netperf import netperf_mesh, NetperfResult

__all__ = [
    "InstanceType",
    "VirtualMachine",
    "CloudProvider",
    "ProviderParams",
    "VMFlow",
    "EC2Provider",
    "ec2_params",
    "EC2LegacyProvider",
    "ec2_legacy_params",
    "EC2_LEGACY_ZONES",
    "RackspaceProvider",
    "rackspace_params",
    "netperf_mesh",
    "NetperfResult",
    "make_provider",
    "provider_names",
    "register_provider",
]
