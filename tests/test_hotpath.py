"""Tests for the hot-path performance work: the incremental allocator, the
routing/path caches, the greedy rate table, the batched measurement mesh,
the timeline bisection, and the runner's trial memoization.

The central property: every optimisation must be *exact* — same rates, same
placements, same profiles, same trial records as the reference code paths.
"""

import math
import random

import pytest

from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Machine
from repro.core.placement.greedy import GreedyPlacer
from repro.core.rate_model import ConnectionLoad, EffectiveRateTable, effective_rate
from repro.cloud.registry import make_provider
from repro.errors import MeasurementError, SimulationError
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.net.alloc import IncrementalAllocator
from repro.net.fairness import FlowDemand, max_min_allocation
from repro.net.flows import Flow
from repro.net.fluid import FluidSimulation, RateTimeline
from repro.net.topology import (
    build_two_rack_cloud,
    build_multi_rooted_tree,
    clear_route_cache,
    route_cache_info,
    set_route_cache_enabled,
    set_structured_routing_enabled,
)
from repro.units import GBITPS, MBYTE
from repro.workloads.generator import HPCloudWorkloadGenerator, WorkloadSpec
from repro.workloads.patterns import scatter_gather, uniform_mesh


def _assert_allocations_match(reference, got, context=""):
    assert set(reference) == set(got), context
    for fid, expected in reference.items():
        actual = got[fid]
        if math.isinf(expected) or math.isinf(actual):
            assert expected == actual, f"{context}: {fid}"
        else:
            scale = max(1.0, abs(expected))
            assert abs(expected - actual) <= 1e-9 * scale, (
                f"{context}: {fid}: {expected} != {actual}"
            )


def _random_instance(rng):
    """Capacities and demands covering caps, empty-link flows, and
    zero-capacity edges."""
    n_links = rng.randint(1, 14)
    caps = {}
    for i in range(n_links):
        roll = rng.random()
        if roll < 0.08:
            caps[f"l{i}"] = 0.0  # zero-capacity edge
        else:
            caps[f"l{i}"] = rng.uniform(0.05, 10.0)
    demands = {}
    for f in range(rng.randint(1, 40)):
        if rng.random() < 0.12:
            links = ()  # flow crossing no shared resource
        else:
            links = tuple(rng.sample(list(caps), rng.randint(1, min(5, n_links))))
        cap = rng.uniform(0.01, 4.0) if rng.random() < 0.45 else None
        demands[f"f{f}"] = FlowDemand(links=links, max_rate=cap)
    return caps, demands


class TestIncrementalAllocator:
    def test_matches_reference_on_randomized_instances(self):
        """~200 random instances: the incremental solve must agree with the
        reference progressive-filling allocator within 1e-9."""
        rng = random.Random(0xA110C)
        for trial in range(200):
            caps, demands = _random_instance(rng)
            allocator = IncrementalAllocator(caps)
            for fid, demand in demands.items():
                allocator.add_demand(fid, demand)
            _assert_allocations_match(
                max_min_allocation(demands, caps), allocator.solve(), f"trial {trial}"
            )

    def test_matches_reference_under_churn(self):
        """Interleaved add/remove deltas keep agreeing with from-scratch."""
        rng = random.Random(7)
        for trial in range(40):
            caps, demands = _random_instance(rng)
            allocator = IncrementalAllocator(caps)
            active = {}
            pool = list(demands)
            events = 0
            while events < 60 and (pool or active):
                if pool and (not active or rng.random() < 0.55):
                    fid = pool.pop(rng.randrange(len(pool)))
                    active[fid] = demands[fid]
                    allocator.add_demand(fid, active[fid])
                else:
                    fid = rng.choice(sorted(active))
                    del active[fid]
                    allocator.remove_flow(fid)
                events += 1
                _assert_allocations_match(
                    max_min_allocation(active, caps),
                    allocator.solve(),
                    f"trial {trial} event {events}",
                )

    def test_solution_cached_until_flow_set_changes(self):
        allocator = IncrementalAllocator({"l0": 1.0})
        allocator.add_flow("a", ["l0"])
        first = allocator.solve()
        assert allocator.solve() is first  # cached
        allocator.add_flow("b", ["l0"])
        second = allocator.solve()
        assert second is not first
        assert second["a"] == pytest.approx(0.5)

    def test_errors(self):
        allocator = IncrementalAllocator({"l0": 1.0})
        allocator.add_flow("a", ["l0"])
        with pytest.raises(SimulationError):
            allocator.add_flow("a", ["l0"])  # duplicate
        with pytest.raises(SimulationError):
            allocator.add_flow("b", ["nope"])  # unknown link
        with pytest.raises(SimulationError):
            allocator.remove_flow("ghost")  # unknown flow

    def test_duplicate_links_on_a_path(self):
        """A flow crossing the same link twice voids the share-heap
        monotonicity invariant; the solver must detect it and still match
        the reference (which subtracts the level once per occurrence)."""
        caps = {"L": 10.0, "M": 9.0}
        demands = {
            "A": FlowDemand(links=("L", "L"), max_rate=4.0),
            "C": FlowDemand(links=("M",)),
            "D": FlowDemand(links=("L", "M")),
        }
        allocator = IncrementalAllocator(caps)
        for fid, demand in demands.items():
            allocator.add_demand(fid, demand)
        _assert_allocations_match(
            max_min_allocation(demands, caps), allocator.solve(), "dup links"
        )
        # Removing the duplicate-link flow restores the fast path.
        allocator.remove_flow("A")
        del demands["A"]
        _assert_allocations_match(
            max_min_allocation(demands, caps), allocator.solve(), "dup removed"
        )

    def test_matches_reference_with_random_duplicate_links(self):
        rng = random.Random(0xD0B)
        for trial in range(60):
            caps, demands = _random_instance(rng)
            # Duplicate a random prefix of some flows' paths.
            mutated = {}
            for fid, demand in demands.items():
                links = demand.links
                if links and rng.random() < 0.4:
                    links = links + links[: rng.randint(1, len(links))]
                mutated[fid] = FlowDemand(links=links, max_rate=demand.max_rate)
            allocator = IncrementalAllocator(caps)
            for fid, demand in mutated.items():
                allocator.add_demand(fid, demand)
            _assert_allocations_match(
                max_min_allocation(mutated, caps),
                allocator.solve(),
                f"dup trial {trial}",
            )

    def test_clear_keeps_capacities(self):
        allocator = IncrementalAllocator({"l0": 2.0})
        allocator.add_flow("a", ["l0"])
        allocator.clear()
        assert len(allocator) == 0
        allocator.add_flow("b", ["l0"])
        assert allocator.solve()["b"] == pytest.approx(2.0)


class TestRateTimelineBisect:
    def _brute_rate_at(self, segments, t):
        for seg in segments:
            if seg.start <= t < seg.end:
                return seg.rate_bps
        return 0.0

    def _brute_average(self, segments, start, end):
        moved = 0.0
        for seg in segments:
            lo, hi = max(start, seg.start), min(end, seg.end)
            if hi > lo:
                moved += seg.rate_bps * (hi - lo)
        return moved / (end - start)

    def test_matches_linear_scan_with_gaps(self):
        rng = random.Random(3)
        for _ in range(50):
            timeline = RateTimeline()
            t = 0.0
            for _ in range(rng.randint(1, 30)):
                t += rng.uniform(0.0, 0.5)  # gaps allowed
                width = rng.uniform(0.01, 1.0)
                timeline.append(t, t + width, rng.choice([0.0, 1e9, rng.uniform(0, 2e9)]))
                t += width
            for _ in range(20):
                q = rng.uniform(-0.5, t + 0.5)
                assert timeline.rate_at(q) == self._brute_rate_at(timeline.segments, q)
                hi = q + rng.uniform(0.01, 2.0)
                assert timeline.average_rate(q, hi) == pytest.approx(
                    self._brute_average(timeline.segments, q, hi)
                )

    def test_boundaries_and_merging(self):
        timeline = RateTimeline()
        timeline.append(0.0, 1.0, 100.0)
        timeline.append(1.0, 2.0, 100.0)  # merges
        assert len(timeline.segments) == 1
        assert timeline.rate_at(0.0) == 100.0
        assert timeline.rate_at(2.0) == 0.0  # end-exclusive
        assert timeline.rate_at(-1.0) == 0.0

    def test_out_of_order_append_rejected(self):
        timeline = RateTimeline()
        timeline.append(1.0, 2.0, 5.0)
        with pytest.raises(SimulationError):
            timeline.append(0.0, 0.5, 5.0)


class TestFluidAllocatorEquivalence:
    def test_incremental_and_reference_runs_agree(self):
        topo = build_two_rack_cloud(n_pairs=6)
        rng = random.Random(21)
        flows = []
        for i in range(60):
            src = f"s{rng.randint(1, 6)}"
            dst = f"r{rng.randint(1, 6)}"
            start = rng.uniform(0.0, 2.0)
            if rng.random() < 0.2:
                flows.append(Flow(f"bg{i}", src, dst, size_bytes=None,
                                  start_time=start, end_time=start + rng.uniform(0.2, 2.0)))
            else:
                cap = 0.1 * GBITPS if rng.random() < 0.3 else None
                flows.append(Flow(f"x{i}", src, dst, size_bytes=rng.uniform(1, 40) * MBYTE,
                                  start_time=start, max_rate_bps=cap))

        def run(mode):
            sim = FluidSimulation(topo, allocator=mode)
            sim.add_flows(flows)
            return sim.run()

        ref, got = run("reference"), run("incremental")
        assert set(ref.completion_times) == set(got.completion_times)
        for fid, expected in ref.completion_times.items():
            assert got.completion_times[fid] == pytest.approx(expected, abs=1e-9)
        assert got.end_time == pytest.approx(ref.end_time, abs=1e-9)
        for fid in ref.timelines:
            assert got.timelines[fid].total_bytes() == pytest.approx(
                ref.timelines[fid].total_bytes(), rel=1e-9, abs=1e-6
            )

    def test_unknown_allocator_rejected(self):
        topo = build_two_rack_cloud(n_pairs=2)
        with pytest.raises(SimulationError):
            FluidSimulation(topo, allocator="wat")


class TestTopologyCaches:
    def test_path_links_memoized_and_invalidated(self):
        topo = build_two_rack_cloud(n_pairs=3)
        first = topo.path_links("s1", "r1")
        assert topo.path_links("s1", "r1") is first
        # Mutating the graph must clear the memo.
        from repro.net.topology import NodeKind
        topo.add_node("extra", NodeKind.HOST)
        topo.add_link("extra", "torS", 1 * GBITPS)
        assert topo.path_links("s1", "r1") is not first

    def test_route_cache_shared_across_identical_structures(self):
        # The structured router would answer tree routes arithmetically;
        # disable it so this exercises the generic shared cache.
        previous = set_structured_routing_enabled(False)
        try:
            clear_route_cache()
            a = build_multi_rooted_tree()
            b = build_multi_rooted_tree()
            assert a.structure_token() == b.structure_token()
            path = a.node_path("host0", "host5")
            misses_after_first = route_cache_info()["misses"]
            assert b.node_path("host0", "host5") == path
            info = route_cache_info()
            assert info["hits"] >= 1
            assert info["misses"] == misses_after_first  # no second computation
        finally:
            set_structured_routing_enabled(previous)
            clear_route_cache()

    def test_route_cache_can_be_disabled(self):
        clear_route_cache()
        previous = set_route_cache_enabled(False)
        try:
            topo = build_multi_rooted_tree()
            topo.node_path("host0", "host3")
            assert route_cache_info()["entries"] == 0
        finally:
            set_route_cache_enabled(previous)
            clear_route_cache()


class TestGreedyRateTable:
    def _profile(self, machines, seed):
        rng = random.Random(seed)
        return NetworkProfile(
            vms=list(machines),
            rates_bps={
                (a, b): rng.uniform(0.05 * GBITPS, 1 * GBITPS)
                for a in machines for b in machines if a != b
            },
        )

    @pytest.mark.parametrize("model", ["hose", "pipe"])
    def test_cached_placements_identical(self, model):
        machines = [f"m{i}" for i in range(8)]
        cluster = ClusterState(machines=[Machine(m, cores=4.0) for m in machines])
        profile = self._profile(machines, 13)
        gen = HPCloudWorkloadGenerator(
            WorkloadSpec(min_tasks=4, max_tasks=8, diurnal=False), seed=5
        )
        apps = [gen.generate_application() for _ in range(4)]
        apps.append(uniform_mesh("mesh", 8, bytes_per_pair=20 * MBYTE))
        apps.append(scatter_gather("svc", 7, response_bytes=100 * MBYTE))
        for app in apps:
            cached = GreedyPlacer(model=model, use_rate_cache=True).place(
                app, cluster, profile
            )
            reference = GreedyPlacer(model=model, use_rate_cache=False).place(
                app, cluster, profile
            )
            assert cached.assignments == reference.assignments, app.name

    @pytest.mark.parametrize("model", ["hose", "pipe"])
    def test_table_matches_direct_computation_under_load(self, model):
        machines = [f"m{i}" for i in range(6)]
        profile = self._profile(machines, 2)
        load = ConnectionLoad()
        table = EffectiveRateTable(profile, load, model=model)
        shadow = ConnectionLoad()
        rng = random.Random(4)
        for _ in range(300):
            src, dst = rng.choice(machines), rng.choice(machines)
            if rng.random() < 0.4:
                table.record(src, dst)
                shadow.add(src, dst)
            else:
                assert table.rate(src, dst) == effective_rate(
                    profile, src, dst, shadow, model=model
                )

    def test_rate_stats_exposed(self):
        machines = [f"m{i}" for i in range(6)]
        cluster = ClusterState(machines=[Machine(m, cores=4.0) for m in machines])
        placer = GreedyPlacer(use_rate_cache=True)
        placer.place(scatter_gather("svc", 5), cluster, self._profile(machines, 9))
        assert placer.last_rate_stats is not None
        assert placer.last_rate_stats["misses"] > 0


class TestBatchedMeasurementMesh:
    def _measurer(self, parallelism, seed=3, n_vms=6):
        provider = make_provider("ec2", seed=seed)
        provider.request_vms(n_vms)
        plan = MeasurementPlan(advance_clock=False, parallelism=parallelism)
        return NetworkMeasurer(provider, plan=plan)

    def test_schedule_covers_mesh_with_disjoint_rounds(self):
        measurer = self._measurer(parallelism=3)
        names = [vm.name for vm in measurer.provider.vms()]
        rounds = measurer.schedule_rounds(names)
        seen = []
        for batch in rounds:
            assert 1 <= len(batch) <= 3
            busy = set()
            for src, dst in batch:
                assert src not in busy and dst not in busy
                busy.update((src, dst))
            seen.extend(batch)
        expected = [(s, d) for s in names for d in names if s != d]
        assert sorted(seen) == sorted(expected)
        assert len(seen) == len(set(seen))

    def test_parallelism_one_is_the_serial_order(self):
        measurer = self._measurer(parallelism=1)
        names = [vm.name for vm in measurer.provider.vms()]
        rounds = measurer.schedule_rounds(names)
        assert [pair for batch in rounds for pair in batch] == [
            (s, d) for s in names for d in names if s != d
        ]
        assert all(len(batch) == 1 for batch in rounds)

    def test_batched_campaign_is_faster_on_the_modeled_clock(self):
        serial = self._measurer(parallelism=1)
        batched = self._measurer(parallelism=4)
        assert batched.campaign_time_s(8) < serial.campaign_time_s(8)

    def test_batched_measure_is_deterministic(self):
        profiles = [self._measurer(parallelism=4, seed=11).measure() for _ in range(2)]
        assert profiles[0].rates_bps == profiles[1].rates_bps
        assert profiles[0].measurement_duration_s == profiles[1].measurement_duration_s

    def test_batched_measure_covers_the_same_pairs_as_serial(self):
        serial = self._measurer(parallelism=1, seed=11).measure()
        batched = self._measurer(parallelism=4, seed=11).measure()
        assert set(serial.pairs()) == set(batched.pairs())
        assert batched.measurement_duration_s < serial.measurement_duration_s

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementPlan(parallelism=0)


class TestRunnerTrialMemoization:
    def test_duplicate_cells_simulated_once(self, monkeypatch):
        import repro.experiments.trials as trials_mod

        calls = []
        original = trials_mod.run_trial

        def counting(scenario, placer, trial, base_seed, *params, **kwargs):
            calls.append((scenario, placer, trial))
            return original(scenario, placer, trial, base_seed, *params, **kwargs)

        monkeypatch.setattr(trials_mod, "run_trial", counting)
        config = ExperimentConfig(
            scenarios=("smoke",),
            placers=("random", "random"),
            trials=2,
            baseline="random",
            workers=1,
        )
        result = ExperimentRunner(config).run()
        assert len(calls) == 2  # 2 trials, each simulated once despite 4 cells
        assert len(result.records) == 4
        by_trial = {}
        for record in result.records:
            by_trial.setdefault(record.trial, []).append(record)
        for trial, records in by_trial.items():
            assert len(records) == 2
            assert records[0].makespan_s == records[1].makespan_s
            assert records[0] is not records[1]

    def test_distinct_cells_not_merged(self, monkeypatch):
        import repro.experiments.trials as trials_mod

        calls = []
        original = trials_mod.run_trial

        def counting(scenario, placer, trial, base_seed, *params, **kwargs):
            calls.append((scenario, placer, trial))
            return original(scenario, placer, trial, base_seed, *params, **kwargs)

        monkeypatch.setattr(trials_mod, "run_trial", counting)
        config = ExperimentConfig(
            scenarios=("smoke",), placers=("random",), trials=2,
            baseline="random", workers=1,
        )
        ExperimentRunner(config).run()
        assert sorted(calls) == [("smoke", "random", 0), ("smoke", "random", 1)]


class TestBenchSuite:
    def test_quick_allocator_and_mesh_benches_match(self):
        from repro.bench.benchmarks import run_benchmarks

        payload = run_benchmarks(quick=True, only=["allocator", "mesh"])
        assert payload["all_matched"]
        assert payload["benches"]["allocator"]["max_relative_diff"] <= 1e-9

    def test_unknown_bench_rejected(self):
        from repro.bench.benchmarks import run_benchmarks

        with pytest.raises(ValueError):
            run_benchmarks(only=["nope"])

    def test_cli_exit_code(self):
        from repro.bench.__main__ import main

        assert main(["--quick", "--only", "greedy", "--output", ""]) == 0

    def test_quick_scale_bench_matches(self):
        from repro.bench.benchmarks import run_benchmarks

        payload = run_benchmarks(quick=True, only=["scale"])
        assert payload["all_matched"]
        entry = payload["benches"]["scale"]
        assert entry["equivalence_control"]["matched"]
        allocator = entry["per_size"]["256"]["allocator"]
        assert allocator["bit_identical"] and allocator["auto_picks_vector"]

    def test_scale_bench_is_in_the_default_suite(self):
        from repro.bench.benchmarks import DEFAULT_SUITE

        assert "scale" in DEFAULT_SUITE

    def test_quick_fluid_loop_and_routing_benches_match(self):
        from repro.bench.benchmarks import run_benchmarks

        payload = run_benchmarks(quick=True, only=["fluid_loop", "routing"])
        assert payload["all_matched"]
        assert payload["benches"]["routing"]["params"]["n_hosts"] > 0
        assert payload["params"]["numpy"]

    def test_million_flow_benches_are_in_the_default_suite(self):
        from repro.bench.benchmarks import DEFAULT_SUITE

        assert "fluid_loop" in DEFAULT_SUITE
        assert "routing" in DEFAULT_SUITE

    def test_speedup_floor_failure_sets_exit_code(self, monkeypatch, capsys):
        import repro.bench.benchmarks as benchmarks
        from repro.bench.__main__ import main

        # An impossible floor on a real (non-quick-exempt) run must fail.
        monkeypatch.setattr(
            benchmarks, "_TARGET_FLOORS",
            (("greedy", "greedy_speedup", 1e9, ("speedup",)),),
        )
        assert main(["--only", "greedy", "--output", ""]) == 1
        assert "below floor" in capsys.readouterr().err


class TestFluidZenoRegression:
    def test_coincident_finish_times_terminate(self):
        """Flows whose finish times collapse within a float ulp of ``now``
        must complete instead of livelocking (Zeno steps)."""
        topo = build_two_rack_cloud(n_pairs=4)
        sim = FluidSimulation(topo)
        rng = random.Random(99)
        # Many same-path flows with sizes differing by sub-byte amounts
        # produce finish events separated by less than the ulp of the clock.
        for i in range(30):
            sim.add_flow(
                Flow(
                    f"f{i}", "s1", "r1",
                    size_bytes=10 * MBYTE + rng.uniform(0.0, 1e-5),
                    start_time=1000.0,
                )
            )
        result = sim.run()
        assert len(result.completion_times) == 30
