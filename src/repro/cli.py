"""Unified command-line surface: ``python -m repro``.

One top-level dispatcher with three subcommands —

* ``python -m repro experiments`` — scenario sweeps (§6 evaluation);
* ``python -m repro bench``       — tracked hot-path A/B benchmarks;
* ``python -m repro service``     — online placement over a drifting network;

each also reachable as ``python -m repro.experiments`` / ``repro.bench`` /
``repro.service`` (thin aliases over the same handlers).  The shared flags
are declared once, in :func:`common_parser`, and inherited by every
subcommand that takes them, so they spell and behave identically
everywhere:

* ``--seed N``     — base RNG seed; identical seeds reproduce identical runs;
* ``--jobs N``     — worker processes (``--workers`` is an accepted alias);
* ``--output PATH``— where the JSON artifact goes (``''`` disables it);
* ``--param KEY=VALUE`` — *builder* parameter override (scenario parameters
  for experiments, session parameters for the service); repeatable;
* ``--trace PATH`` / ``--log-level`` / ``-v`` — the observability flags
  (:func:`repro.obs.add_observability_flags`), on every subcommand that
  takes the common parent.

Parameter conventions (the one documented home):

* ``--param KEY=VALUE`` addresses the thing being built (a scenario, a
  churn session).  There is no placer name in it.
* ``--placer-param PLACER:KEY=VALUE`` addresses a placement algorithm's
  constructor (``ilp:time_limit_s=5``, ``greedy:cluster_threshold=64``).
  The placer name prefix is mandatory and aliases are accepted.

Both are parsed and validated by the helpers below; malformed input fails
with the expected shape and an example, never a stack trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.errors import ExperimentError, ReproError

__all__ = [
    "build_parser",
    "common_parser",
    "main",
    "parse_params",
    "parse_placer_params",
    "parse_value",
]


def parse_value(text: str):
    """Parse a flag value as bool, then int, then float, then string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def parse_params(
    items: Optional[Sequence[str]], flag: str = "--param"
) -> Dict[str, object]:
    """Parse repeated ``KEY=VALUE`` flags into a mapping.

    Raises:
        ExperimentError: on malformed input, naming the offending item and
            showing the expected shape.
    """
    params: Dict[str, object] = {}
    for item in items or ():
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ExperimentError(
                f"{flag} expects KEY=VALUE, got {item!r} "
                f"(e.g. {flag} n_machines=8)"
            )
        params[key.strip()] = parse_value(value.strip())
    return params


def parse_placer_params(
    items: Optional[Sequence[str]], flag: str = "--placer-param"
) -> Dict[str, Dict[str, object]]:
    """Parse repeated ``PLACER:KEY=VALUE`` flags into per-placer mappings.

    Placer names (aliases included) resolve through
    :func:`repro.experiments.placers.resolve_placer`, so the returned
    mapping is keyed by canonical registry names and unknown placers fail
    here with the full registry listing.

    Raises:
        ExperimentError: on malformed input or unknown placer names.
    """
    from repro.experiments.placers import resolve_placer

    params: Dict[str, Dict[str, object]] = {}
    for item in items or ():
        head, sep, assignment = item.partition(":")
        key, eq, value = assignment.partition("=")
        if not sep or not eq or not head.strip() or not key.strip():
            raise ExperimentError(
                f"{flag} expects PLACER:KEY=VALUE, got {item!r} "
                f"(e.g. {flag} ilp:time_limit_s=5); for scenario/session "
                f"parameters use --param KEY=VALUE instead"
            )
        placer = resolve_placer(head.strip()).name
        params.setdefault(placer, {})[key.strip()] = parse_value(value.strip())
    return params


def common_parser(
    *,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    output: Optional[str] = None,
    params: bool = False,
    placer_params: bool = False,
) -> argparse.ArgumentParser:
    """The shared argparse parent: one definition of the common flags.

    Each keyword enables a flag and supplies its subcommand default
    (``None`` leaves the flag out for subcommands it cannot apply to).
    Subcommands consume it via ``parents=[common_parser(...)]``, so help
    strings, types, and spellings cannot drift apart.
    """
    parent = argparse.ArgumentParser(add_help=False)
    if seed is not None:
        parent.add_argument(
            "--seed", type=int, default=seed,
            help="base RNG seed; identical seeds reproduce identical runs "
            f"(default {seed})",
        )
    if jobs is not None:
        parent.add_argument(
            "--jobs", "--workers", dest="jobs", type=int, default=jobs,
            metavar="N",
            help="worker processes (0 = one per grid cell, capped at CPU "
            f"count; --workers is an alias; default {jobs})",
        )
    if output is not None:
        parent.add_argument(
            "--output", default=output, metavar="PATH",
            help=f"where to write the JSON artifact ('' disables; "
            f"default {output!r})",
        )
    if params:
        parent.add_argument(
            "--param", action="append", metavar="KEY=VALUE",
            help="builder parameter override (scenario parameters for "
            "experiments, session parameters for the service); repeatable",
        )
    if placer_params:
        parent.add_argument(
            "--placer-param", action="append", metavar="PLACER:KEY=VALUE",
            help="per-placer construction override, e.g. ilp:time_limit_s=5 "
            "or greedy:cluster_threshold=64 (repeatable; aliases accepted)",
        )
    from repro import obs

    obs.add_observability_flags(parent)
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` dispatcher over the three subsystems."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Choreo reproduction: network-aware task placement for cloud "
            "applications (IMC 2013)."
        ),
    )
    sub = parser.add_subparsers(dest="subsystem", required=True)

    from repro.bench.__main__ import configure_parser as configure_bench
    from repro.experiments.cli import configure_parser as configure_experiments
    from repro.service.__main__ import configure_parser as configure_service

    configure_experiments(
        sub.add_parser(
            "experiments",
            help="scenario sweeps and the §6 evaluation grid",
            description="Choreo evaluation: scenario registry and "
            "experiment sweeps (§6).",
        )
    )
    configure_bench(
        sub.add_parser(
            "bench",
            help="tracked hot-path A/B benchmarks (BENCH_*.json)",
            description="Hot-path benchmarks, each A/B'd against its "
            "reference implementation.",
        )
    )
    configure_service(
        sub.add_parser(
            "service",
            help="online placement service over a drifting network",
            description="Online placement service: admit a stream of "
            "applications onto a time-varying cloud.",
        )
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns a process exit code."""
    from repro import obs

    args = build_parser().parse_args(argv)
    obs.apply_observability_args(args)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
