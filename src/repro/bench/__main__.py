"""Command-line entry point: ``python -m repro.bench``.

A thin alias for ``python -m repro bench`` (see :mod:`repro.cli`, which
owns the shared ``--seed``/``--output`` flags).  Runs the hot-path
benchmark suite, prints the JSON report, and writes it to a
``BENCH_*.json`` file.  Exits with status 1 when any optimised path
disagrees with its reference implementation, or when a full (non
``--quick``) run records a tracked speedup below its floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.benchmarks import bench_names, run_benchmarks
from repro.cli import common_parser


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the bench flags (and handler) to ``parser``.

    Called both by :func:`repro.cli.build_parser` (``python -m repro
    bench``) and by this module's own :func:`main` (``python -m
    repro.bench``), so the two spellings cannot diverge.
    """
    # ``parents=`` only works at construction time; graft the shared parent
    # onto the existing parser the same way argparse itself does.
    parser._add_container_actions(common_parser(seed=0, output="BENCH_hotpath.json"))
    parser.add_argument(
        "--quick", action="store_true",
        help="small input sizes for CI smoke (correctness still verified)",
    )
    parser.add_argument(
        "--only", default=None, metavar="NAMES",
        help=f"comma-separated subset of benchmarks ({','.join(bench_names())})",
    )
    parser.set_defaults(handler=_cmd_bench)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description=(
            "Hot-path benchmarks: incremental allocator, fluid event loop, "
            "greedy rate table, batched measurement mesh, and the "
            "experiments sweep end to end, each A/B'd against its "
            "reference implementation."
        ),
    )
    configure_parser(parser)
    return parser


def _cmd_bench(args: argparse.Namespace) -> int:
    only = (
        [name.strip() for name in args.only.split(",") if name.strip()]
        if args.only
        else None
    )
    try:
        payload = run_benchmarks(quick=args.quick, seed=args.seed, only=only)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)

    if not payload["all_matched"]:
        mismatched = [
            name
            for name, entry in payload["benches"].items()
            if not entry["matched"]
        ]
        print(
            f"ERROR: optimised path(s) disagree with reference: {mismatched}",
            file=sys.stderr,
        )
        return 1
    targets = payload["targets"]
    if not targets.get("met", True):
        below = [
            f"{key}={targets[key]} < {floor}"
            for key, floor in (
                (k[: -len("_min")], v)
                for k, v in targets.items()
                if k.endswith("_min")
            )
            if (targets.get(key) or 0) < floor
        ]
        print(
            f"ERROR: tracked speedup(s) below floor: {below}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench``); exit code."""
    from repro import obs

    args = _build_parser().parse_args(argv)
    obs.apply_observability_args(args)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
