"""Evaluation subsystem: scenario registry and experiment runner (paper §6).

The paper's evaluation compares network-aware placement against baselines
across many applications and cloud conditions.  This package makes that
comparison a first-class, runnable artifact:

* :mod:`repro.experiments.scenarios` — named, parameterised end-to-end
  scenarios composing the workload generator, synthetic providers, and the
  placement stack;
* :mod:`repro.experiments.placers` — the placement-algorithm grid;
* :mod:`repro.experiments.runner` — parallel sweeps over
  scenario x placer x trial with per-trial seeding;
* :mod:`repro.experiments.results` — structured JSON results with
  speedup-over-baseline summaries (the Figure-9-style comparison);
* :mod:`repro.experiments.cli` — ``python -m repro.experiments``.
"""

from repro.experiments.placers import PlacerSpec, get_placer, placer_names
from repro.experiments.results import ExperimentResult, TrialRecord
from repro.experiments.runner import (
    DEFAULT_PLACERS,
    ExperimentConfig,
    ExperimentRunner,
    run_trial,
    trial_seed,
)
from repro.experiments.scenarios import (
    MODE_BATCH,
    MODE_SEQUENCE,
    ScenarioInstance,
    ScenarioSpec,
    fresh_provider,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)

__all__ = [
    "PlacerSpec",
    "get_placer",
    "placer_names",
    "ExperimentResult",
    "TrialRecord",
    "DEFAULT_PLACERS",
    "ExperimentConfig",
    "ExperimentRunner",
    "run_trial",
    "trial_seed",
    "MODE_BATCH",
    "MODE_SEQUENCE",
    "ScenarioInstance",
    "ScenarioSpec",
    "fresh_provider",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario",
    "scenario_names",
]
