"""Provider registry tests: ec2 and ec2_legacy must coexist without
duplicate registration, and the error contract must hold."""

import pytest

# Importing both modules side by side must not raise (idempotent registry).
import repro.cloud.ec2  # noqa: F401
import repro.cloud.ec2_legacy  # noqa: F401
from repro.cloud.ec2 import EC2Provider
from repro.cloud.ec2_legacy import EC2LegacyProvider
from repro.cloud.registry import make_provider, provider_names, register_provider
from repro.errors import CloudError, ReproError, TopologyError
from repro.net.links import Link


def test_all_builtin_providers_are_registered():
    names = provider_names()
    assert {"ec2", "ec2-legacy", "rackspace"} <= set(names)
    assert names == sorted(names)


def test_make_provider_builds_ec2_and_legacy_side_by_side():
    modern = make_provider("ec2", seed=1)
    legacy = make_provider("ec2-legacy", seed=1, zone="us-east-1c")
    assert isinstance(modern, EC2Provider)
    assert isinstance(legacy, EC2LegacyProvider)
    assert legacy.zone == "us-east-1c"
    assert modern.params.name != legacy.params.name


def test_reregistering_same_factory_is_idempotent():
    register_provider("ec2", EC2Provider)  # same factory: no-op
    assert provider_names().count("ec2") == 1


def test_conflicting_registration_raises_cloud_error():
    with pytest.raises(CloudError):
        register_provider("ec2", EC2LegacyProvider)


def test_unknown_provider_raises_cloud_error():
    with pytest.raises(CloudError):
        make_provider("no-such-cloud")


def test_link_capacity_violation_raises_library_error():
    # Regression: this used to raise a bare ValueError; the library contract
    # is that every failure derives from ReproError.
    with pytest.raises(TopologyError):
        Link(link_id="bad", src="a", dst="b", capacity_bps=0.0)
    assert issubclass(TopologyError, ReproError)
