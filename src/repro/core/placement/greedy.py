"""Greedy network-aware placement — Algorithm 1 of the paper (§5).

The algorithm walks the application's transfers in descending order of
volume and places each pair of tasks on the machine pair whose path offers
the highest rate, given what has already been placed:

* if one endpoint is already placed, only paths touching its machine are
  candidates;
* intra-machine paths have essentially infinite rate, so the heuristic
  naturally colocates heavily communicating tasks when CPU allows;
* the candidate rate accounts for connections already placed in this round,
  under either the hose model (connections share the source's egress) or the
  pipe model (connections share the specific path) — see
  :func:`repro.core.rate_model.effective_rate`.

Tasks that never communicate are placed last on the machines with the most
free CPU.  The result is not guaranteed optimal (Figure 9 shows a
counter-example), but §5 reports it within 13% (median) of the optimum
while scaling far better.

At datacenter scale the flat candidate enumeration is quadratic in the
machine count, so above a size threshold (see
:func:`set_default_cluster_threshold`) the placer goes **hierarchical**:
machines are clustered once per placement by the similarity of their
measured rate profiles (deterministic farthest-point k-center over the
rows of :meth:`~repro.core.network_profile.NetworkProfile.rate_matrix`),
each transfer first ranks *cluster representative* pairs by the flat
selection key, then enumerates machine pairs only within the best
representative pair's clusters, falling through ranked representative
pairs until one yields a CPU-feasible candidate.  The union of those
per-representative candidate sets is exactly the flat candidate set, so
the hierarchical path fails only when the flat path would; with one
machine per cluster it reduces to the flat selection bit for bit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Placement, Placer, validate_placement
from repro.core.rate_model import ConnectionLoad, EffectiveRateTable, effective_rate
from repro.errors import PlacementError
from repro.workloads.application import Application

_EPS = 1e-9

_default_rate_cache = True

# Machine counts below this stay on the flat quadratic enumeration, whose
# exhaustive candidate scan is both fast and exactly Algorithm 1 at small
# sizes; at or above it GreedyPlacer(cluster_threshold=None) clusters.
_default_cluster_threshold = 96


def set_default_cluster_threshold(n_machines: int) -> int:
    """Default for ``GreedyPlacer(cluster_threshold=None)``; returns the old one.

    Placements over clusters with at least this many machines use the
    hierarchical candidate search; smaller ones keep the flat Algorithm 1
    enumeration.  Benchmarks and tests move it to force either path.
    """
    global _default_cluster_threshold
    if n_machines < 1:
        raise PlacementError("cluster threshold must be >= 1")
    previous = _default_cluster_threshold
    _default_cluster_threshold = int(n_machines)
    return previous


def cluster_vms_by_rate_profile(
    profile: NetworkProfile,
    machines: Sequence[str],
    n_clusters: int,
) -> Tuple[List[str], List[List[str]]]:
    """Group machines by measured rate-profile similarity (k-center).

    Each machine's feature vector is its row of the profile's rate matrix
    (out-rates to every other machine in ``machines``; unmeasured and
    infinite entries contribute 0, the diagonal is zeroed), so two machines
    land in one cluster when the network looks alike *from* them — e.g.
    rack mates behind the same oversubscribed uplink.  Leaders are picked
    by deterministic farthest-point traversal (first machine first, ties
    to the lowest index) and every machine joins its nearest leader.

    Returns ``(leaders, clusters)`` where ``clusters[i]`` lists the
    machines led by ``leaders[i]``.  Fewer than ``n_clusters`` clusters
    come back when machines have identical profiles (a uniform mesh
    yields a single cluster).  Distances use squared Euclidean norms via
    dot products, so the whole clustering is O(k·n²) vector work.
    """
    n = len(machines)
    if n == 0:
        raise PlacementError("cannot cluster an empty machine list")
    k = max(1, min(int(n_clusters), n))
    matrix = profile.rate_matrix(order=machines)
    features = np.where(np.isfinite(matrix), matrix, 0.0)
    np.fill_diagonal(features, 0.0)
    norms = np.einsum("ij,ij->i", features, features)

    def distance_row(index: int) -> np.ndarray:
        row = norms + norms[index] - 2.0 * (features @ features[index])
        np.maximum(row, 0.0, out=row)
        return row

    leader_indices = [0]
    rows = [distance_row(0)]
    nearest = rows[0].copy()
    while len(leader_indices) < k:
        candidate = int(np.argmax(nearest))
        if nearest[candidate] <= 0.0:
            break  # every remaining machine matches an existing leader
        leader_indices.append(candidate)
        row = distance_row(candidate)
        rows.append(row)
        np.minimum(nearest, row, out=nearest)

    owner = np.argmin(np.vstack(rows), axis=0)
    clusters: List[List[str]] = [[] for _ in leader_indices]
    for index, lead in enumerate(owner):
        clusters[int(lead)].append(machines[index])
    leaders = [machines[i] for i in leader_indices]
    return leaders, clusters


def set_default_rate_cache(enabled: bool) -> bool:
    """Default for ``GreedyPlacer(use_rate_cache=None)``; returns the old value.

    Disabling it restores the pre-optimisation behaviour (every candidate's
    :func:`~repro.core.rate_model.effective_rate` recomputed on every
    transfer); the switch exists for A/B benchmarking and debugging.
    """
    global _default_rate_cache
    previous = _default_rate_cache
    _default_rate_cache = bool(enabled)
    return previous


def greedy_incumbent(
    app: Application,
    cluster: ClusterState,
    profile: NetworkProfile,
    model: str = "hose",
) -> Optional[Placement]:
    """A greedy placement for use as a MILP warm start, or ``None``.

    Greedy can dead-end on CPU packing (it commits machines transfer by
    transfer and never backtracks) on instances where a feasible assignment
    exists, so failure here must not be fatal: callers treat ``None`` as
    "proceed cold".
    """
    try:
        return GreedyPlacer(model=model).place(app, cluster, profile)
    except PlacementError:
        return None


def machine_rate_scores(
    profile: NetworkProfile,
    machines: List[str],
    model: str = "hose",
) -> Dict[str, float]:
    """Each machine's best greedy effective rate to any peer, nothing placed.

    This is the score Algorithm 1 would use for the machine's first
    connection; the ILP's ``candidate_k`` restriction ranks machines by it.
    """
    load = ConnectionLoad()
    scores: Dict[str, float] = {}
    for machine in machines:
        best = 0.0
        for other in machines:
            if other == machine:
                continue
            best = max(
                best, effective_rate(profile, machine, other, load, model=model)
            )
        scores[machine] = best
    return scores


class GreedyPlacer(Placer):
    """Algorithm 1: greedy network-aware placement.

    Args:
        model: ``"hose"`` or ``"pipe"`` — how already-placed connections
            affect a candidate path's rate (the paper's clouds are hose).
        prefer_colocation: break rate ties in favour of placing both tasks
            on the same machine (intra-machine rates are typically infinite,
            so this only matters when the profile's intra-VM rate is finite).
        use_rate_cache: keep candidate rates in an incrementally invalidated
            :class:`~repro.core.rate_model.EffectiveRateTable` instead of
            recomputing every candidate on every transfer.  ``None`` uses
            the module default (see :func:`set_default_rate_cache`); the
            placement is identical either way.
        cluster_threshold: machine count at which placement switches to the
            hierarchical (cluster-representatives-first) candidate search;
            ``None`` uses the module default (see
            :func:`set_default_cluster_threshold`).  ``1`` always clusters.
        n_clusters: how many rate-similarity clusters to form when the
            hierarchical path engages; ``None`` uses ``ceil(sqrt(n))``.
            Setting it to the machine count makes every cluster a
            singleton, which reproduces the flat selection exactly.
    """

    name = "choreo-greedy"

    def __init__(
        self,
        model: str = "hose",
        prefer_colocation: bool = True,
        use_rate_cache: Optional[bool] = None,
        cluster_threshold: Optional[int] = None,
        n_clusters: Optional[int] = None,
    ):
        if model not in ("hose", "pipe"):
            raise PlacementError(f"unknown rate model {model!r}")
        if cluster_threshold is not None and cluster_threshold < 1:
            raise PlacementError("cluster_threshold must be >= 1")
        if n_clusters is not None and n_clusters < 1:
            raise PlacementError("n_clusters must be >= 1")
        self.model = model
        self.prefer_colocation = prefer_colocation
        self.use_rate_cache = use_rate_cache
        self.cluster_threshold = cluster_threshold
        self.n_clusters = n_clusters
        #: Hit/miss counters of the rate table used by the last
        #: :meth:`place` call (None when the cache was disabled).
        self.last_rate_stats: Optional[Dict[str, int]] = None
        #: Clustering used by the last :meth:`place` call (None when the
        #: flat path ran): {"n_clusters": ..., "largest": ...}.
        self.last_cluster_stats: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ API
    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        with obs.span(
            "place.greedy",
            app=app.name,
            tasks=len(app.task_names),
            machines=len(cluster.machine_names()),
        ):
            return self._place(app, cluster, profile)

    def _place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        if profile is None:
            raise PlacementError("the greedy placer needs a network profile")
        self.check_feasible(app, cluster)

        machines = cluster.machine_names()
        for machine in machines:
            if machine not in profile.vms:
                raise PlacementError(
                    f"machine {machine!r} is not covered by the network profile"
                )

        assignments: Dict[str, str] = {}
        free_cpu = {m: cluster.available_cpu(m) for m in machines}
        load = ConnectionLoad()
        use_cache = (
            _default_rate_cache if self.use_rate_cache is None else self.use_rate_cache
        )
        table = (
            EffectiveRateTable(profile, load, model=self.model) if use_cache else None
        )

        def rate_of(src_machine: str, dst_machine: str) -> float:
            if table is not None:
                return table.rate(src_machine, dst_machine)
            return effective_rate(
                profile, src_machine, dst_machine, load, model=self.model
            )

        def record_connection(src_machine: str, dst_machine: str) -> None:
            if table is not None:
                table.record(src_machine, dst_machine)
            else:
                load.add(src_machine, dst_machine)

        def cpu_fits(task_name: str, machine: str, pending_same: float = 0.0) -> bool:
            return app.cpu_demand(task_name) + pending_same <= free_cpu[machine] + _EPS

        def assign(task_name: str, machine: str) -> None:
            assignments[task_name] = machine
            free_cpu[machine] -= app.cpu_demand(task_name)

        threshold = (
            _default_cluster_threshold
            if self.cluster_threshold is None
            else self.cluster_threshold
        )
        hierarchy: Optional[Tuple[List[str], List[List[str]]]] = None
        if len(machines) >= threshold:
            k = (
                int(math.ceil(math.sqrt(len(machines))))
                if self.n_clusters is None
                else self.n_clusters
            )
            hierarchy = cluster_vms_by_rate_profile(profile, machines, k)
            self.last_cluster_stats = {
                "n_clusters": len(hierarchy[0]),
                "largest": max(len(members) for members in hierarchy[1]),
            }
        else:
            self.last_cluster_stats = None

        # Line 2: walk transfers in descending order of volume.
        for src_task, dst_task, _volume in app.transfers():
            src_placed = assignments.get(src_task)
            dst_placed = assignments.get(dst_task)

            if src_placed is not None and dst_placed is not None:
                # Both endpoints already pinned; just account for the
                # connection so later rate estimates see it.
                record_connection(src_placed, dst_placed)
                continue

            if hierarchy is not None:
                best = self._pick_hierarchical(
                    hierarchy, app, src_task, dst_task,
                    src_placed, dst_placed, cpu_fits, rate_of,
                )
            else:
                candidates = self._candidate_paths(
                    app, src_task, dst_task, src_placed, dst_placed,
                    machines, cpu_fits,
                )
                best = (
                    self._pick_best(candidates, rate_of) if candidates else None
                )
            if best is None:
                raise PlacementError(
                    f"no CPU-feasible machine pair for transfer "
                    f"{src_task!r} -> {dst_task!r} of application {app.name!r}"
                )
            src_machine, dst_machine = best
            if src_placed is None:
                assign(src_task, src_machine)
            if dst_placed is None and dst_task not in assignments:
                assign(dst_task, dst_machine)
            record_connection(src_machine, dst_machine)

        # Tasks with no transfers at all: spread over the freest machines.
        for task in app.task_names:
            if task in assignments:
                continue
            feasible = [m for m in machines if cpu_fits(task, m)]
            if not feasible:
                raise PlacementError(
                    f"no machine has CPU for task {task!r} of application {app.name!r}"
                )
            choice = max(feasible, key=lambda m: (free_cpu[m], m))
            assign(task, choice)

        self.last_rate_stats = (
            {"hits": table.hits, "misses": table.misses} if table is not None else None
        )
        placement = Placement(app_name=app.name, assignments=assignments)
        validate_placement(placement, app, cluster)
        return placement

    # ------------------------------------------------------------ internals
    def _candidate_paths(
        self,
        app: Application,
        src_task: str,
        dst_task: str,
        src_placed: Optional[str],
        dst_placed: Optional[str],
        machines: List[str],
        cpu_fits,
    ) -> List[Tuple[str, str]]:
        """Lines 3-11: enumerate CPU-feasible candidate machine pairs."""
        candidates: List[Tuple[str, str]] = []
        if src_placed is not None:
            # Source pinned: paths k -> N for all machines N (line 4); only
            # the unplaced destination task consumes CPU, whether or not it
            # colocates with the source.
            for dst_machine in machines:
                if cpu_fits(dst_task, dst_machine):
                    candidates.append((src_placed, dst_machine))
        elif dst_placed is not None:
            # Destination pinned: paths M -> l for all machines M (line 6).
            for src_machine in machines:
                if cpu_fits(src_task, src_machine):
                    candidates.append((src_machine, dst_placed))
        else:
            # Neither pinned: all machine pairs, including same-machine
            # placements (lines 7-8).  Colocation must fit *both* tasks'
            # CPU demand on the one machine.
            for src_machine in machines:
                for dst_machine in machines:
                    if src_machine == dst_machine:
                        both_fit = cpu_fits(
                            src_task, src_machine,
                            pending_same=app.cpu_demand(dst_task),
                        )
                        if both_fit:
                            candidates.append((src_machine, dst_machine))
                    elif cpu_fits(src_task, src_machine) and cpu_fits(dst_task, dst_machine):
                        candidates.append((src_machine, dst_machine))
        return candidates

    def _pick_best(
        self,
        candidates: List[Tuple[str, str]],
        rate_of,
    ) -> Tuple[str, str]:
        """Lines 12-14: choose the candidate path with the highest rate."""
        def sort_key(pair: Tuple[str, str]):
            src, dst = pair
            rate = rate_of(src, dst)
            colocated = 1 if (self.prefer_colocation and src == dst) else 0
            # Highest rate first, then colocation, then deterministic names.
            return (-rate, -colocated, src, dst)

        return min(candidates, key=sort_key)

    def _pick_hierarchical(
        self,
        hierarchy: Tuple[List[str], List[List[str]]],
        app: Application,
        src_task: str,
        dst_task: str,
        src_placed: Optional[str],
        dst_placed: Optional[str],
        cpu_fits,
        rate_of,
    ) -> Optional[Tuple[str, str]]:
        """Two-stage candidate search: representatives first, then members.

        Stage 1 ranks cluster-representative pairs by the flat selection
        key; stage 2 enumerates only the winning pair's cluster members
        with the flat feasibility rules.  Ranked representative pairs are
        walked until one yields a feasible candidate, so across the walk
        the reachable candidate set is exactly the flat one — ``None``
        comes back only when the flat enumeration would be empty too.
        """
        leaders, clusters = hierarchy

        def sort_key(pair: Tuple[str, str]):
            src, dst = pair
            rate = rate_of(src, dst)
            colocated = 1 if (self.prefer_colocation and src == dst) else 0
            return (-rate, -colocated, src, dst)

        if src_placed is not None:
            # Source pinned (line 4): rank destination clusters by the rep
            # path from the pinned machine, then place within.
            ranked = sorted(
                range(len(leaders)),
                key=lambda i: sort_key((src_placed, leaders[i])),
            )
            for i in ranked:
                stage2 = [
                    (src_placed, machine)
                    for machine in clusters[i]
                    if cpu_fits(dst_task, machine)
                ]
                if stage2:
                    return self._pick_best(stage2, rate_of)
            return None

        if dst_placed is not None:
            # Destination pinned (line 6), symmetric.
            ranked = sorted(
                range(len(leaders)),
                key=lambda i: sort_key((leaders[i], dst_placed)),
            )
            for i in ranked:
                stage2 = [
                    (machine, dst_placed)
                    for machine in clusters[i]
                    if cpu_fits(src_task, machine)
                ]
                if stage2:
                    return self._pick_best(stage2, rate_of)
            return None

        # Neither pinned (lines 7-8): rank ordered representative pairs,
        # including same-representative (whose stage 2 holds the
        # colocation candidates).
        pairs = [
            (i, j)
            for i in range(len(leaders))
            for j in range(len(leaders))
        ]
        pairs.sort(key=lambda ij: sort_key((leaders[ij[0]], leaders[ij[1]])))
        for i, j in pairs:
            stage2: List[Tuple[str, str]] = []
            if i == j:
                for src_machine in clusters[i]:
                    for dst_machine in clusters[j]:
                        if src_machine == dst_machine:
                            both_fit = cpu_fits(
                                src_task, src_machine,
                                pending_same=app.cpu_demand(dst_task),
                            )
                            if both_fit:
                                stage2.append((src_machine, dst_machine))
                        elif cpu_fits(src_task, src_machine) and cpu_fits(
                            dst_task, dst_machine
                        ):
                            stage2.append((src_machine, dst_machine))
            else:
                src_ok = [m for m in clusters[i] if cpu_fits(src_task, m)]
                if src_ok:
                    dst_ok = [m for m in clusters[j] if cpu_fits(dst_task, m)]
                    stage2 = [(s, d) for s in src_ok for d in dst_ok]
            if stage2:
                return self._pick_best(stage2, rate_of)
        return None
