"""Tests for the datacenter-scale hot paths: the array-backed (vectorised)
max-min solve and the hierarchical greedy placer.

The central property, as everywhere in this suite: the fast paths are
*exact*.  The vector solve must be bit-identical to the scalar solve (not
merely close), and hierarchical greedy with singleton clusters must
reproduce flat greedy assignment-for-assignment.
"""

import math
import random

import pytest

from repro.core.network_profile import MatrixNetworkProfile, NetworkProfile
from repro.core.placement.base import ClusterState, Machine
from repro.core.placement.greedy import (
    GreedyPlacer,
    cluster_vms_by_rate_profile,
    set_default_cluster_threshold,
)
from repro.errors import MeasurementError, PlacementError, SimulationError
from repro.net.alloc import (
    IncrementalAllocator,
    set_vector_thresholds,
    vector_thresholds,
)
from repro.net.fairness import FlowDemand, max_min_allocation
from repro.net.flows import Flow
from repro.net.fluid import (
    ALLOCATOR_INCREMENTAL,
    ALLOCATOR_REFERENCE,
    ALLOCATOR_VECTOR,
    FluidSimulation,
)
from repro.net.topology import build_two_rack_cloud
from repro.units import GBITPS, MBYTE

np = pytest.importorskip("numpy")


def _random_instance(rng, n_links_max=14, n_flows_max=30):
    """Capacities and demands covering caps, empty-link flows, zero-capacity
    edges, and shared bottlenecks — the same families the reference property
    tests use."""
    n_links = rng.randint(1, n_links_max)
    caps = {}
    for i in range(n_links):
        roll = rng.random()
        if roll < 0.08:
            caps[f"l{i}"] = 0.0
        elif roll < 0.12:
            caps[f"l{i}"] = math.inf
        else:
            caps[f"l{i}"] = rng.uniform(0.05 * GBITPS, 4 * GBITPS)
    link_ids = list(caps)
    demands = {}
    for f in range(rng.randint(1, n_flows_max)):
        if rng.random() < 0.06:
            links = ()
        else:
            links = tuple(
                rng.sample(link_ids, rng.randint(1, min(4, n_links)))
            )
        cap = rng.uniform(0.01 * GBITPS, 1 * GBITPS) if rng.random() < 0.35 else None
        demands[f"f{f}"] = FlowDemand(links=links, max_rate=cap)
    return caps, demands


class TestVectorSolveBitIdentity:
    def test_vector_matches_scalar_bitwise_on_random_instances(self):
        """The headline invariant: dict-equality (==), not approximate."""
        for trial in range(120):
            rng = random.Random(1000 + trial)
            caps, demands = _random_instance(rng)
            scalar = IncrementalAllocator(caps, mode="scalar")
            vector = IncrementalAllocator(caps, mode="vector")
            for fid, demand in demands.items():
                scalar.add_demand(fid, demand)
                vector.add_demand(fid, demand)
            assert scalar.solve() == vector.solve(), f"trial {trial}"

    def test_vector_matches_scalar_bitwise_under_churn(self):
        rng = random.Random(77)
        caps, demands = _random_instance(rng, n_links_max=20, n_flows_max=60)
        scalar = IncrementalAllocator(caps, mode="scalar")
        vector = IncrementalAllocator(caps, mode="vector")
        active = []
        pool = list(demands)
        for step in range(200):
            if pool and (not active or rng.random() < 0.55):
                fid = pool.pop(rng.randrange(len(pool)))
                scalar.add_demand(fid, demands[fid])
                vector.add_demand(fid, demands[fid])
                active.append(fid)
            else:
                fid = active.pop(rng.randrange(len(active)))
                scalar.remove_flow(fid)
                vector.remove_flow(fid)
                pool.append(fid)
            assert scalar.solve() == vector.solve(), f"step {step}"

    def test_vector_agrees_with_reference_allocator(self):
        for trial in range(40):
            rng = random.Random(9000 + trial)
            caps, demands = _random_instance(rng)
            vector = IncrementalAllocator(caps, mode="vector")
            for fid, demand in demands.items():
                vector.add_demand(fid, demand)
            got = vector.solve()
            ref = max_min_allocation(demands, caps)
            assert set(ref) == set(got)
            for fid, expected in ref.items():
                actual = got[fid]
                if math.isinf(expected) or math.isinf(actual):
                    assert expected == actual, fid
                else:
                    assert abs(expected - actual) <= 1e-9 * max(1.0, expected), fid

    def test_duplicate_link_paths_fall_back_to_scalar(self):
        """A path crossing the same link twice drains capacity twice; only
        the scalar solver models that, so the vector allocator must defer."""
        caps = {"a": 1 * GBITPS, "b": 2 * GBITPS}
        allocator = IncrementalAllocator(caps, mode="vector")
        allocator.add_flow("loop", ["a", "b", "a"])
        allocator.add_flow("plain", ["b"])
        assert not allocator.uses_vector_path()
        scalar = IncrementalAllocator(caps, mode="scalar")
        scalar.add_flow("loop", ["a", "b", "a"])
        scalar.add_flow("plain", ["b"])
        assert allocator.solve() == scalar.solve()
        # Removing the duplicate-link flow re-enables the vector path.
        allocator.remove_flow("loop")
        assert allocator.uses_vector_path()

    def test_infinite_capacity_universe(self):
        caps = {"a": math.inf, "b": math.inf}
        scalar = IncrementalAllocator(caps, mode="scalar")
        vector = IncrementalAllocator(caps, mode="vector")
        for alloc in (scalar, vector):
            alloc.add_flow("x", ["a"])
            alloc.add_flow("y", ["a", "b"])
            alloc.add_demand("z", FlowDemand(links=("b",), max_rate=3.0))
        assert scalar.solve() == vector.solve()
        assert vector.solve()["x"] == math.inf
        assert vector.solve()["z"] == 3.0


class TestVectorModeSelection:
    def test_mode_validation(self):
        with pytest.raises(SimulationError):
            IncrementalAllocator({"l": 1.0}, mode="simd")

    def test_auto_thresholds_gate_the_vector_path(self):
        caps = {f"l{i}": 1 * GBITPS for i in range(8)}
        allocator = IncrementalAllocator(caps)
        for f in range(8):
            allocator.add_flow(f"f{f}", [f"l{f}"])
        assert not allocator.uses_vector_path()  # below default thresholds
        previous = set_vector_thresholds(flows=0, links=0)
        try:
            assert allocator.uses_vector_path()
        finally:
            set_vector_thresholds(*previous)
        assert vector_thresholds() == previous
        assert not allocator.uses_vector_path()

    def test_threshold_validation_and_restore(self):
        with pytest.raises(SimulationError):
            set_vector_thresholds(flows=-1)
        previous = set_vector_thresholds(flows=10, links=20)
        try:
            assert vector_thresholds() == (10, 20)
        finally:
            set_vector_thresholds(*previous)

    def test_forced_vector_below_thresholds_still_exact(self):
        caps = {"l": 1 * GBITPS}
        vector = IncrementalAllocator(caps, mode="vector")
        vector.add_flow("a", ["l"])
        vector.add_flow("b", ["l"])
        assert vector.uses_vector_path()
        assert vector.solve() == {"a": 0.5 * GBITPS, "b": 0.5 * GBITPS}


class TestFluidVectorAllocator:
    def _flows(self, seed, n_pairs, n_flows):
        rng = random.Random(seed)
        flows = []
        for i in range(n_flows):
            src = f"s{rng.randint(1, n_pairs)}"
            dst = f"r{rng.randint(1, n_pairs)}"
            start = rng.uniform(0.0, 3.0)
            if rng.random() < 0.2:
                flows.append(
                    Flow(
                        flow_id=f"bg{i}", src=src, dst=dst, size_bytes=None,
                        start_time=start, end_time=start + rng.uniform(0.5, 2.0),
                    )
                )
            else:
                flows.append(
                    Flow(
                        flow_id=f"x{i}", src=src, dst=dst,
                        size_bytes=rng.uniform(2, 60) * MBYTE,
                        start_time=start,
                    )
                )
        return flows

    def test_vector_allocator_mode_matches_reference_and_incremental(self):
        topo = build_two_rack_cloud(n_pairs=6)
        flows = self._flows(5, 6, 40)
        results = {}
        for mode in (ALLOCATOR_REFERENCE, ALLOCATOR_INCREMENTAL, ALLOCATOR_VECTOR):
            sim = FluidSimulation(topo, allocator=mode)
            sim.add_flows(flows)
            results[mode] = sim.run()
        ref = results[ALLOCATOR_REFERENCE]
        for mode in (ALLOCATOR_INCREMENTAL, ALLOCATOR_VECTOR):
            got = results[mode]
            assert set(ref.completion_times) == set(got.completion_times)
            for fid, t in ref.completion_times.items():
                assert abs(t - got.completion_times[fid]) <= 1e-9 * max(1.0, t)
            assert abs(ref.end_time - got.end_time) <= 1e-9 * max(1.0, ref.end_time)

    def test_unknown_allocator_mode_rejected(self):
        topo = build_two_rack_cloud(n_pairs=2)
        with pytest.raises(SimulationError):
            FluidSimulation(topo, allocator="gpu")


class TestRateMatrix:
    def _profile(self, n=5, seed=3):
        rng = random.Random(seed)
        vms = [f"m{i}" for i in range(n)]
        rates = {
            (a, b): rng.uniform(0.1 * GBITPS, 1 * GBITPS)
            for a in vms for b in vms if a != b
        }
        return vms, rates, NetworkProfile(vms=vms, rates_bps=rates)

    def test_matrix_matches_pairwise_rates(self):
        vms, rates, profile = self._profile()
        matrix = profile.rate_matrix()
        for i, a in enumerate(vms):
            for j, b in enumerate(vms):
                if i == j:
                    assert math.isinf(matrix[i, j])
                else:
                    assert matrix[i, j] == rates[(a, b)]

    def test_matrix_reorders_and_rejects_unknown_vms(self):
        vms, rates, profile = self._profile()
        order = list(reversed(vms))
        matrix = profile.rate_matrix(order=order)
        assert matrix[0, 1] == rates[(vms[-1], vms[-2])]
        with pytest.raises(MeasurementError):
            profile.rate_matrix(order=["nope"])

    def test_matrix_cache_invalidates_when_pairs_are_added(self):
        vms = ["a", "b", "c"]
        profile = NetworkProfile(vms=vms, rates_bps={("a", "b"): 1.0 * GBITPS})
        first = profile.rate_matrix()
        assert math.isnan(first[1, 2])
        assert profile.rate_matrix() is first  # cached for the default order
        profile.rates_bps[("b", "c")] = 42.0
        second = profile.rate_matrix()
        assert second[1, 2] == 42.0
        assert math.isnan(first[1, 2])  # the cached copy was not mutated

    def test_matrix_profile_equivalent_to_dict_profile(self):
        vms, rates, profile = self._profile(n=6, seed=11)
        matrix = profile.rate_matrix()
        dense = MatrixNetworkProfile(vms, matrix)
        for a in vms:
            for b in vms:
                if a != b:
                    assert dense.rate(a, b) == profile.rate(a, b)
                    assert dense.has_pair(a, b)
        assert set(dense.pairs()) == set(profile.pairs())
        np.testing.assert_array_equal(dense.rate_matrix(), matrix)


class TestHierarchicalGreedyEquivalence:
    def _instance(self, rng, n_machines):
        from repro.workloads.application import Application, Task, TrafficMatrix

        vms = [f"m{i}" for i in range(n_machines)]
        rates = {
            (a, b): rng.choice([0.2, 0.5, 0.9]) * GBITPS * rng.uniform(0.9, 1.1)
            for a in vms for b in vms if a != b
        }
        profile = NetworkProfile(vms=vms, rates_bps=rates)
        cluster = ClusterState(
            machines=[Machine(m, cores=rng.choice([2.0, 4.0])) for m in vms]
        )
        n_tasks = rng.randint(2, min(8, n_machines))
        tasks = [Task(f"t{i}", rng.choice([0.5, 1.0])) for i in range(n_tasks)]
        traffic = TrafficMatrix()
        for i in range(n_tasks):
            for j in range(n_tasks):
                if i != j and rng.random() < 0.5:
                    traffic.add(f"t{i}", f"t{j}", rng.uniform(1, 50) * MBYTE)
        return Application("app", tasks, traffic), cluster, profile

    def test_singleton_clusters_reproduce_flat_exactly(self):
        """Hierarchical greedy with one VM per cluster IS flat greedy."""
        for trial in range(40):
            rng = random.Random(4000 + trial)
            n = rng.randint(3, 16)
            app, cluster, profile = self._instance(rng, n)
            flat = GreedyPlacer(cluster_threshold=10**9)
            hier = GreedyPlacer(cluster_threshold=1, n_clusters=n)
            try:
                expected = flat.place(app, cluster, profile)
            except PlacementError:
                with pytest.raises(PlacementError):
                    hier.place(app, cluster, profile)
                continue
            got = hier.place(app, cluster, profile)
            assert expected.assignments == got.assignments, f"trial {trial}"

    def test_below_threshold_instances_take_the_flat_path(self):
        rng = random.Random(5)
        app, cluster, profile = self._instance(rng, 12)
        placer = GreedyPlacer()  # default threshold is far above 12 machines
        placement = placer.place(app, cluster, profile)
        assert placer.last_cluster_stats is None
        flat = GreedyPlacer(cluster_threshold=10**9).place(app, cluster, profile)
        assert placement.assignments == flat.assignments

    def test_default_threshold_is_settable_and_validated(self):
        previous = set_default_cluster_threshold(8)
        try:
            rng = random.Random(6)
            app, cluster, profile = self._instance(rng, 12)
            placer = GreedyPlacer()
            placer.place(app, cluster, profile)
            assert placer.last_cluster_stats is not None
        finally:
            set_default_cluster_threshold(previous)
        with pytest.raises(PlacementError):
            set_default_cluster_threshold(0)

    def test_hierarchical_placements_remain_feasible_at_scale(self):
        rng = random.Random(7)
        n = 128
        vms = [f"m{i}" for i in range(n)]
        rack = np.arange(n) // 16
        base = np.where(rack[:, None] == rack[None, :], 0.9 * GBITPS, 0.2 * GBITPS)
        noise = np.random.default_rng(7).uniform(0.95, 1.05, (n, n))
        profile = MatrixNetworkProfile(vms, base * noise)
        cluster = ClusterState(machines=[Machine(m, cores=2.0) for m in vms])
        app, _, _ = self._instance(rng, 8)
        placer = GreedyPlacer(cluster_threshold=64)
        placement = placer.place(app, cluster, profile)
        stats = placer.last_cluster_stats
        assert stats is not None and stats["n_clusters"] > 1
        assert set(placement.assignments.values()) <= set(vms)
        # Every task lands on a machine with enough CPU headroom.
        used = {}
        for task, vm in placement.assignments.items():
            used[vm] = used.get(vm, 0.0) + app.cpu_demand(task)
        for vm, cores in ((m.name, m.cores) for m in cluster.machines):
            assert used.get(vm, 0.0) <= cores + 1e-9


class TestTierOneScenarioBitIdentity:
    @pytest.mark.parametrize("scenario", ["smoke", "all-to-all"])
    def test_forced_vector_reproduces_scalar_trial_records(self, scenario):
        """Tier-1 scenarios produce the same trial metrics whether the auto
        thresholds leave everything scalar (default at these sizes) or force
        the vector solve onto every allocation."""
        from repro.experiments.trials import run_trial
        from repro.net.topology import clear_route_cache

        def run():
            clear_route_cache()
            record = run_trial(scenario, "greedy", trial=0, base_seed=42)
            assert record.ok, record.error
            return (
                record.status,
                record.makespan_s,
                record.total_running_time_s,
                record.n_apps,
                record.n_vms,
            )

        baseline = run()
        previous = set_vector_thresholds(flows=0, links=0)
        try:
            forced = run()
        finally:
            set_vector_thresholds(*previous)
        assert forced == baseline


class TestClusteringHeuristic:
    def test_partition_is_deterministic_and_covers_all_vms(self):
        n = 48
        vms = [f"m{i}" for i in range(n)]
        rack = np.arange(n) // 12
        base = np.where(rack[:, None] == rack[None, :], 1.0 * GBITPS, 0.1 * GBITPS)
        profile = MatrixNetworkProfile(vms, base)
        reps_a, members_a = cluster_vms_by_rate_profile(profile, vms, 4)
        reps_b, members_b = cluster_vms_by_rate_profile(profile, vms, 4)
        assert reps_a == reps_b and members_a == members_b
        flattened = sorted(vm for group in members_a for vm in group)
        assert flattened == sorted(vms)
        # The rack structure is strong enough that the 4 clusters ARE racks.
        assert {frozenset(g) for g in members_a} == {
            frozenset(vms[i * 12:(i + 1) * 12]) for i in range(4)
        }

    def test_representatives_belong_to_their_clusters(self):
        rng = random.Random(9)
        vms = [f"m{i}" for i in range(20)]
        rates = {
            (a, b): rng.uniform(0.1, 1.0) * GBITPS
            for a in vms for b in vms if a != b
        }
        profile = NetworkProfile(vms=vms, rates_bps=rates)
        reps, members = cluster_vms_by_rate_profile(profile, vms, 5)
        assert len(reps) == len(members)
        for rep, group in zip(reps, members):
            assert rep in group
