"""Simulated traceroute (paper §3.3.1, §4.2).

The paper uses traceroute hop counts to "fit" a multi-rooted tree onto the
measured topology: hop counts of 1, 2, 4, 6 or 8 map to same-machine,
same-rack, same-pod, via-core, and via a deeper core respectively.  Some
providers obscure parts of their topology (the paper suspects Rackspace's
traceroutes hide hops, since only 1- and 4-hop paths appear); the optional
``visible_hops`` mapping reproduces that behaviour.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.net.topology import Topology


def traceroute_hop_count(
    topology: Topology,
    src: str,
    dst: str,
    visible_hops: Optional[Mapping[int, int]] = None,
) -> int:
    """Hop count reported by traceroute between two hosts.

    Args:
        topology: the datacenter topology.
        src, dst: host names (VM-to-host mapping is the caller's concern).
        visible_hops: optional mapping from true hop count to the hop count
            the provider's traceroute actually reports (identity when
            omitted).  Unmapped hop counts pass through unchanged.

    Returns:
        The (possibly obscured) hop count.
    """
    true_hops = topology.hop_count(src, dst)
    if visible_hops is None:
        return true_hops
    return visible_hops.get(true_hops, true_hops)


def classify_hop_count(hops: int) -> str:
    """Human-readable locality class for a hop count (Figure 8 categories)."""
    if hops <= 1:
        return "same-machine"
    if hops == 2:
        return "same-rack"
    if hops == 4:
        return "same-pod"
    if hops == 6:
        return "via-core"
    return "via-deep-core"


def cluster_hosts_by_rack(
    topology: Topology, hosts: Sequence[str]
) -> dict:
    """Group hosts by their ToR switch, as Choreo's bottleneck finder does.

    Hosts without a ToR (degenerate topologies) are grouped under ``None``.
    """
    clusters: dict = {}
    for host in hosts:
        clusters.setdefault(topology.rack_of(host), []).append(host)
    return clusters
