"""Execution substrate: run placed applications on a synthetic cloud.

The paper's evaluation transfers real traffic on EC2 once applications are
placed ("we do not merely calculate what the application completion time
would have been", §6.1).  Our stand-in is the fluid simulator: the executor
turns a placement plus a traffic matrix into VM-level flows, runs them on
the provider, and reports completion times that include all sharing effects
(hose caps, shared paths, colocation, and concurrent applications).
"""

from repro.runtime.executor import (
    ApplicationRun,
    placement_to_flows,
    run_application,
    run_applications,
)
from repro.runtime.sequence import SequenceResult, SequentialPlacementRunner
from repro.runtime.migration import MigrationEvent, MigratingSequenceRunner
from repro.runtime.metrics import (
    relative_speedup,
    speedup_summary,
    SpeedupSummary,
)

__all__ = [
    "ApplicationRun",
    "placement_to_flows",
    "run_application",
    "run_applications",
    "SequenceResult",
    "SequentialPlacementRunner",
    "MigrationEvent",
    "MigratingSequenceRunner",
    "relative_speedup",
    "speedup_summary",
    "SpeedupSummary",
]
