"""Event-driven flow-level ("fluid") network simulator.

This simulator stands in for the real EC2/Rackspace networks the paper
measured and for the ns-2 simulations it used to validate the cross-traffic
estimator.  Flows are fluid: at every instant the set of active flows shares
the network according to max-min fairness (see :mod:`repro.net.fairness`),
which matches the paper's working assumption that TCP splits a bottleneck
equally among backlogged connections.

Between consecutive events (a flow starting, a finite flow completing, an
unbounded flow being switched off) every flow's rate is constant, so the
simulation advances event-to-event, recording a piece-wise constant rate
timeline for every flow.  Those timelines power:

* completion-time computation for placed applications (§6),
* the 10 ms throughput samples used by the cross-traffic estimator (§3.2),
* bulk-TCP ("netperf") throughput measurements (§2.2).
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.net.alloc import IncrementalAllocator
from repro.net.fairness import FlowDemand, max_min_allocation
from repro.net.flows import Flow, FlowState
from repro.net.hose import HoseModel
from repro.net.topology import Topology
from repro.units import BITS_PER_BYTE

# Numerical tolerances: bytes below _BYTE_EPS are "done"; time differences
# below _TIME_EPS are simultaneous.
_BYTE_EPS = 1e-6
_TIME_EPS = 1e-12


def _grow(arr: np.ndarray, size: int) -> np.ndarray:
    """Copy of ``arr`` zero-padded to ``size`` entries."""
    grown = np.zeros(size, dtype=arr.dtype)
    grown[: arr.shape[0]] = arr
    return grown


@dataclass
class RateSegment:
    """A constant-rate interval of a flow's lifetime."""

    start: float
    end: float
    rate_bps: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bytes_moved(self) -> float:
        if math.isinf(self.rate_bps):
            return math.inf
        return self.rate_bps * self.duration / BITS_PER_BYTE


class RateTimeline:
    """Piece-wise constant history of a single flow's rate.

    Segments are appended in chronological order (the fluid simulator emits
    them event by event), so lookups bisect on segment start times instead
    of scanning — timelines grow long in bursty scenarios.
    """

    def __init__(self) -> None:
        self.segments: List[RateSegment] = []
        self._starts: List[float] = []

    def append(self, start: float, end: float, rate_bps: float) -> None:
        """Record one constant-rate interval (zero-length intervals ignored).

        Raises:
            SimulationError: if ``start`` precedes the last recorded segment
                (segments must arrive in chronological order).
        """
        if end - start <= _TIME_EPS:
            return
        if self._starts and start < self._starts[-1] - _TIME_EPS:
            raise SimulationError(
                "rate segments must be appended in chronological order"
            )
        # Merge with the previous segment if the rate did not change.
        if (
            self.segments
            and abs(self.segments[-1].end - start) <= _TIME_EPS
            and self.segments[-1].rate_bps == rate_bps
        ):
            self.segments[-1].end = end
            return
        self.segments.append(RateSegment(start, end, rate_bps))
        self._starts.append(start)

    @property
    def start_time(self) -> Optional[float]:
        return self.segments[0].start if self.segments else None

    @property
    def end_time(self) -> Optional[float]:
        return self.segments[-1].end if self.segments else None

    def rate_at(self, t: float) -> float:
        """Rate at time ``t`` (0 outside the flow's active intervals)."""
        i = bisect.bisect_right(self._starts, t) - 1
        if i >= 0:
            segment = self.segments[i]
            if segment.start <= t < segment.end:
                return segment.rate_bps
        return 0.0

    def average_rate(self, start: float, end: float) -> float:
        """Time-average rate over ``[start, end]`` (gaps count as zero)."""
        if end <= start:
            raise SimulationError("average_rate needs end > start")
        moved_bits = 0.0
        # First segment that can overlap [start, end): the one covering
        # ``start``, or the first one starting after it.
        i = max(0, bisect.bisect_right(self._starts, start) - 1)
        for segment in self.segments[i:]:
            if segment.start >= end:
                break
            lo = max(start, segment.start)
            hi = min(end, segment.end)
            if hi > lo:
                moved_bits += segment.rate_bps * (hi - lo)
        return moved_bits / (end - start)

    def sample(self, interval: float, start: Optional[float] = None,
               end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Average-rate samples of width ``interval`` (e.g. 10 ms probes).

        Returns a list of ``(sample_end_time, average_rate)`` tuples covering
        ``[start, end)``.  Defaults to the flow's own active span.
        """
        if interval <= 0:
            raise SimulationError("sample interval must be positive")
        if not self.segments:
            return []
        lo = self.start_time if start is None else start
        hi = self.end_time if end is None else end
        samples: List[Tuple[float, float]] = []
        t = lo
        while t + interval <= hi + _TIME_EPS:
            samples.append((t + interval, self.average_rate(t, t + interval)))
            t += interval
        return samples

    def total_bytes(self) -> float:
        """Total bytes moved over the flow's recorded lifetime."""
        return sum(segment.bytes_moved for segment in self.segments)


@dataclass
class FluidResult:
    """Outcome of a fluid simulation run."""

    completion_times: Dict[str, float]
    timelines: Dict[str, RateTimeline]
    remaining_bytes: Dict[str, float]
    end_time: float
    states: Dict[str, FlowState]

    def completion_time(self, flow_id: str) -> float:
        """Absolute completion time of a finite flow.

        Raises:
            SimulationError: if the flow did not complete during the run.
        """
        if flow_id not in self.completion_times:
            raise SimulationError(f"flow {flow_id!r} did not complete")
        return self.completion_times[flow_id]

    def makespan(self, flow_ids: Optional[Iterable[str]] = None) -> float:
        """Latest completion time among the given flows (default: all)."""
        ids = list(flow_ids) if flow_ids is not None else list(self.completion_times)
        if not ids:
            return 0.0
        return max(self.completion_time(fid) for fid in ids)


#: Allocator implementations :class:`FluidSimulation` can use.
ALLOCATOR_INCREMENTAL = "incremental"
ALLOCATOR_REFERENCE = "reference"
ALLOCATOR_VECTOR = "vector"

_ALLOCATORS = (ALLOCATOR_INCREMENTAL, ALLOCATOR_REFERENCE, ALLOCATOR_VECTOR)

_default_allocator = ALLOCATOR_INCREMENTAL


def set_default_allocator(name: str) -> str:
    """Set the allocator new simulations default to; returns the previous one.

    ``"incremental"`` (the default) re-solves through
    :class:`~repro.net.alloc.IncrementalAllocator` in its ``auto`` mode,
    which switches to the array-backed water-filling path above the
    :func:`repro.net.alloc.set_vector_thresholds` sizes; ``"vector"``
    forces that array-backed path at every size; ``"reference"`` calls
    :func:`~repro.net.fairness.max_min_allocation` from scratch at every
    event, exactly as the pre-optimisation code did.  The switch exists for
    A/B benchmarking (``python -m repro.bench``) and for debugging the
    incremental engine.
    """
    global _default_allocator
    if name not in _ALLOCATORS:
        raise SimulationError(f"unknown allocator {name!r}")
    previous = _default_allocator
    _default_allocator = name
    return previous


#: Event-loop implementations :class:`FluidSimulation` can use.
LOOP_AUTO = "auto"
LOOP_SCALAR = "scalar"
LOOP_VECTOR = "vector"

#: Process-wide fluid-engine counters (``obs.metrics.snapshot()``):
#: simulation runs and event-loop batches (one batch per allocate →
#: advance → retire pass; batch counts accumulate locally and post once
#: per run so the hot loop pays one integer add per batch).
_FLUID_RUNS = obs.Counter("repro.fluid.runs")
_FLUID_BATCHES = obs.Counter("repro.fluid.batches")

_LOOPS = (LOOP_AUTO, LOOP_SCALAR, LOOP_VECTOR)

_default_loop = LOOP_AUTO

# Flow count below which the vectorised event loop is not worth its NumPy
# dispatch overhead in ``loop="auto"`` mode.
_LOOP_MIN_FLOWS = 512


def set_default_loop(name: str) -> str:
    """Set the event loop new simulations default to; returns the previous.

    ``"scalar"`` is the original per-flow Python event loop; ``"vector"``
    holds flow state (remaining bytes, current rate, open rate segment) in
    parallel NumPy arrays, picks the next event with an ``argmin`` over the
    finish-time vector, drains and retires co-finishing flows in batches,
    and only touches Python objects when a flow's rate actually changes
    (lazily flushed rate segments).  Both produce bit-identical
    :class:`FluidResult` contents; ``"auto"`` (the default) vectorises at
    or above :func:`set_loop_threshold` registered flows.  Simulations
    using the ``"reference"`` allocator always run the scalar loop — that
    pairing *is* the reference implementation the A/B benchmarks compare
    against.
    """
    global _default_loop
    if name not in _LOOPS:
        raise SimulationError(f"unknown loop {name!r}")
    previous = _default_loop
    _default_loop = name
    return previous


def set_loop_threshold(flows: int) -> int:
    """Set the ``loop="auto"`` vectorisation flow threshold; returns the old.

    A simulation in ``"auto"`` loop mode runs the vectorised event loop
    only when at least this many flows are registered.  Pass ``0`` to
    always vectorise.
    """
    global _LOOP_MIN_FLOWS
    if flows < 0:
        raise SimulationError("loop flow threshold must be >= 0")
    previous = _LOOP_MIN_FLOWS
    _LOOP_MIN_FLOWS = int(flows)
    return previous


def loop_threshold() -> int:
    """Current ``loop="auto"`` vectorisation flow threshold."""
    return _LOOP_MIN_FLOWS


class FluidSimulation:
    """Max-min fair, event-driven flow-level simulator.

    Args:
        topology: the network to simulate on.
        hose: optional per-node egress caps (the provider's hose model).
        capacity_overrides: per-link capacity replacements, used by the cloud
            providers to model spatially varying or drifting paths.
        extra_capacities: additional *virtual* links (e.g. per-VM hose links
            when several VMs share a physical host); flows traverse them via
            the ``extra_links`` argument of :meth:`add_flow`.
        allocator: ``"incremental"``, ``"vector"``, or ``"reference"``;
            ``None`` uses the module default (see
            :func:`set_default_allocator`).
        loop: ``"auto"``, ``"scalar"``, or ``"vector"`` event loop; ``None``
            uses the module default (see :func:`set_default_loop`).
    """

    def __init__(
        self,
        topology: Topology,
        hose: Optional[HoseModel] = None,
        capacity_overrides: Optional[Mapping[str, float]] = None,
        extra_capacities: Optional[Mapping[str, float]] = None,
        allocator: Optional[str] = None,
        loop: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.hose = hose
        self._capacities: Dict[str, float] = dict(topology.capacities())
        if capacity_overrides:
            for link_id, cap in capacity_overrides.items():
                if link_id not in self._capacities:
                    raise SimulationError(
                        f"capacity override for unknown link {link_id!r}"
                    )
                if cap <= 0:
                    raise SimulationError(
                        f"capacity override for {link_id!r} must be positive"
                    )
                self._capacities[link_id] = cap
        if hose is not None:
            self._capacities.update(
                hose.link_capacities(topology.graph.nodes())
            )
        if extra_capacities:
            for link_id, cap in extra_capacities.items():
                if cap <= 0:
                    raise SimulationError(
                        f"extra capacity for {link_id!r} must be positive"
                    )
                self._capacities[link_id] = cap
        if allocator is None:
            allocator = _default_allocator
        if allocator not in _ALLOCATORS:
            raise SimulationError(f"unknown allocator {allocator!r}")
        self._allocator_mode = allocator
        if loop is None:
            loop = _default_loop
        if loop not in _LOOPS:
            raise SimulationError(f"unknown loop {loop!r}")
        self._loop_mode = loop
        self._flows: Dict[str, Flow] = {}
        self._demands: Dict[str, FlowDemand] = {}

    # ------------------------------------------------------------------ setup
    @property
    def capacities(self) -> Dict[str, float]:
        """The (possibly overridden) link capacity map used for allocation."""
        return dict(self._capacities)

    def add_flow(self, flow: Flow, extra_links: Sequence[str] = ()) -> None:
        """Register a flow before the run starts.

        Args:
            flow: the flow to add; ``flow.src``/``flow.dst`` are host names.
            extra_links: additional (virtual) link ids the flow traverses,
                which must have been declared via ``extra_capacities``.
        """
        if flow.flow_id in self._flows:
            raise SimulationError(f"duplicate flow id {flow.flow_id!r}")
        links = [link.link_id for link in self.topology.path_links(flow.src, flow.dst)]
        if self.hose is not None:
            links = self.hose.links_for_flow(flow.src, flow.dst) + links
        for link_id in extra_links:
            if link_id not in self._capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} uses undeclared extra link {link_id!r}"
                )
        links = list(extra_links) + links
        self._flows[flow.flow_id] = flow
        self._demands[flow.flow_id] = FlowDemand(
            links=tuple(links), max_rate=flow.max_rate_bps
        )

    def add_flows(self, flows: Iterable[Flow]) -> None:
        """Register several flows."""
        for flow in flows:
            self.add_flow(flow)

    def flow(self, flow_id: str) -> Flow:
        """Look up a registered flow."""
        try:
            return self._flows[flow_id]
        except KeyError as exc:
            raise SimulationError(f"unknown flow {flow_id!r}") from exc

    # -------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> FluidResult:
        """Run the simulation until all finite flows complete (or ``until``).

        Unbounded flows stop at their ``end_time``.  If ``until`` is given,
        the simulation stops there and the per-flow ``remaining_bytes`` in
        the result reflect partially transferred finite flows.

        The scalar and vector event loops produce bit-identical results;
        which one runs is controlled by the ``loop`` constructor argument
        (see :func:`set_default_loop`).  The ``"reference"`` allocator always
        uses the scalar loop — that pairing is the reference implementation.
        """
        loop = self._loop_mode
        if loop == LOOP_AUTO:
            loop = (
                LOOP_VECTOR
                if len(self._flows) >= _LOOP_MIN_FLOWS
                else LOOP_SCALAR
            )
        use_vector = (
            loop == LOOP_VECTOR and self._allocator_mode != ALLOCATOR_REFERENCE
        )
        _FLUID_RUNS.inc()
        with obs.span(
            "fluid.run",
            loop="vector" if use_vector else "scalar",
            flows=len(self._flows),
        ):
            if use_vector:
                return self._run_vector(until)
            return self._run_scalar(until)

    def _run_scalar(self, until: Optional[float]) -> FluidResult:
        """The original per-flow Python event loop."""
        flows = self._flows
        timelines: Dict[str, RateTimeline] = {fid: RateTimeline() for fid in flows}
        completion: Dict[str, float] = {}
        states: Dict[str, FlowState] = {fid: FlowState.PENDING for fid in flows}
        remaining: Dict[str, float] = {
            fid: flow.remaining_or_inf() for fid, flow in flows.items()
        }

        pending = sorted(flows.values(), key=lambda f: (f.start_time, f.flow_id))
        pending_idx = 0
        n_pending = len(pending)
        # Finite and unbounded flows take different paths through every scan
        # below, so keep them apart (unbounded flows always carry an
        # end_time — Flow validates that — which is all the loop needs).
        active_finite: Dict[str, Flow] = {}
        active_unbounded: Dict[str, float] = {}
        incremental: Optional[IncrementalAllocator] = None
        if self._allocator_mode != ALLOCATOR_REFERENCE:
            incremental = IncrementalAllocator(
                self._capacities,
                mode=(
                    "vector"
                    if self._allocator_mode == ALLOCATOR_VECTOR
                    else "auto"
                ),
            )
        inf = math.inf

        # Zero-byte flows complete instantly at their start time.
        now = min((f.start_time for f in flows.values()), default=0.0)
        end_time = now
        batches = 0

        while True:
            # Activate flows whose start time has arrived.
            while pending_idx < n_pending and pending[pending_idx].start_time <= now + _TIME_EPS:
                flow = pending[pending_idx]
                pending_idx += 1
                fid = flow.flow_id
                if flow.is_unbounded:
                    if flow.end_time <= flow.start_time + _TIME_EPS:
                        states[fid] = FlowState.STOPPED
                        continue
                    active_unbounded[fid] = flow.end_time
                else:
                    if remaining[fid] <= _BYTE_EPS:
                        completion[fid] = flow.start_time
                        states[fid] = FlowState.COMPLETED
                        continue
                    active_finite[fid] = flow
                states[fid] = FlowState.ACTIVE
                if incremental is not None:
                    incremental.add_demand(fid, self._demands[fid])

            if not active_finite and not active_unbounded and pending_idx >= n_pending:
                end_time = now
                break
            if until is not None and now >= until - _TIME_EPS:
                end_time = until
                break

            batches += 1
            # Allocate rates for the active flows.  The incremental engine
            # only re-solves when the active set changed since the last
            # allocation; the reference path recomputes from scratch.
            if incremental is not None:
                rates = incremental.solve()
            else:
                demands = self._demands
                active_demands = {fid: demands[fid] for fid in active_finite}
                for fid in active_unbounded:
                    active_demands[fid] = demands[fid]
                rates = max_min_allocation(active_demands, self._capacities)

            # Time of the next event.
            next_time = inf
            finish_at: Dict[str, float] = {}
            if pending_idx < n_pending:
                next_time = pending[pending_idx].start_time
            if active_unbounded:
                next_time = min(next_time, min(active_unbounded.values()))
            for fid in active_finite:
                rate = rates[fid]
                if rate == inf:
                    next_time = now  # completes immediately
                    finish_at[fid] = now
                elif rate > 0:
                    finish = now + remaining[fid] * BITS_PER_BYTE / rate
                    finish_at[fid] = finish
                    if finish < next_time:
                        next_time = finish
            if until is not None and until < next_time:
                next_time = until

            if next_time == inf:
                raise SimulationError(
                    "simulation stalled: active flows receive zero rate and "
                    "no further events are scheduled"
                )
            if next_time < now:
                next_time = now

            # Advance to next_time, recording rate segments and draining bytes.
            dt = next_time - now
            for fid in active_unbounded:
                timelines[fid].append(now, next_time, rates[fid])
            for fid in active_finite:
                rate = rates[fid]
                timelines[fid].append(now, next_time, rate)
                if rate == inf:
                    remaining[fid] = 0.0
                elif rate > 0:
                    drained = remaining[fid] - rate * dt / BITS_PER_BYTE
                    remaining[fid] = drained if drained > 0.0 else 0.0

            # A flow whose projected finish coincides with this event has
            # drained: force its residue to zero.  Without this, rounding in
            # ``remaining -= rate * dt`` can leave a few bytes' residue whose
            # refill step is below the ulp of ``now``, so ``dt`` collapses to
            # zero and the loop livelocks (Zeno steps) on long simulations.
            for fid, finish in finish_at.items():
                if finish <= next_time + _TIME_EPS and fid in active_finite:
                    remaining[fid] = 0.0

            now = next_time
            end_time = now

            # Retire flows that completed or were switched off at ``now``.
            completed = [
                fid for fid in active_finite if remaining[fid] <= _BYTE_EPS
            ]
            for fid in completed:
                completion[fid] = now
                states[fid] = FlowState.COMPLETED
                del active_finite[fid]
                if incremental is not None:
                    incremental.remove_flow(fid)
            stopped = [
                fid
                for fid, stop_at in active_unbounded.items()
                if stop_at <= now + _TIME_EPS
            ]
            for fid in stopped:
                states[fid] = FlowState.STOPPED
                del active_unbounded[fid]
                if incremental is not None:
                    incremental.remove_flow(fid)

            if until is not None and now >= until - _TIME_EPS:
                end_time = until
                break

        _FLUID_BATCHES.inc(batches)
        # Flows still pending or active when the run stops keep their state.
        for fid in flows:
            if states[fid] is FlowState.ACTIVE:
                states[fid] = FlowState.STOPPED
        return FluidResult(
            completion_times=completion,
            timelines=timelines,
            remaining_bytes={
                fid: (0.0 if math.isinf(rem) else rem) for fid, rem in remaining.items()
            },
            end_time=end_time,
            states=states,
        )

    def _run_vector(self, until: Optional[float]) -> FluidResult:
        """Array-backed event loop; bit-identical to :meth:`_run_scalar`.

        Flow state lives in slot-indexed NumPy arrays (the slots are the
        allocator's own flow slots, so rate vectors from
        :meth:`~repro.net.alloc.IncrementalAllocator.solve_slots` gather
        directly).  The next event comes from a min over the finish-time
        vector, bytes drain in one vector step, and Python objects are only
        touched when a flow's rate actually changes: rate segments are held
        open in ``seg_start``/``seg_rate`` and flushed to the
        :class:`RateTimeline` lazily.  Because a flow's timeline merges
        contiguous equal-rate appends, the flushed segments are exactly the
        merged segments the scalar loop records, and every floating-point
        operation (finish projection, drain, Zeno residue reset) applies
        the same ops to the same values as the scalar loop, so results
        match bit for bit.
        """
        flows = self._flows
        timelines: Dict[str, RateTimeline] = {fid: RateTimeline() for fid in flows}
        completion: Dict[str, float] = {}
        states: Dict[str, FlowState] = {fid: FlowState.PENDING for fid in flows}
        remaining_out: Dict[str, float] = {
            fid: flow.remaining_or_inf() for fid, flow in flows.items()
        }

        pending = sorted(flows.values(), key=lambda f: (f.start_time, f.flow_id))
        pending_idx = 0
        n_pending = len(pending)
        incremental = IncrementalAllocator(
            self._capacities,
            mode=(
                "vector" if self._allocator_mode == ALLOCATOR_VECTOR else "auto"
            ),
        )
        inf = math.inf
        n_flows = len(flows)

        # Slot-indexed flow state (slots are allocator slots; a retired
        # flow's slot may be reused, by which time its state was flushed).
        rem = np.zeros(0, dtype=np.float64)
        stop_arr = np.zeros(0, dtype=np.float64)
        seg_start = np.zeros(0, dtype=np.float64)
        # -1.0 marks "no open rate segment" (real rates are never negative).
        seg_rate = np.zeros(0, dtype=np.float64)
        fid_of: List[Optional[str]] = []
        # Active finite / unbounded slots, in activation order (the order
        # the scalar loop's dicts iterate in, which retirement must match).
        af_buf = np.empty(n_flows, dtype=np.intp)
        naf = 0
        au_buf = np.empty(n_flows, dtype=np.intp)
        nau = 0

        now = min((f.start_time for f in flows.values()), default=0.0)
        end_time = now
        batches = 0

        while True:
            # Activate flows whose start time has arrived.
            while pending_idx < n_pending and pending[pending_idx].start_time <= now + _TIME_EPS:
                flow = pending[pending_idx]
                pending_idx += 1
                fid = flow.flow_id
                if flow.is_unbounded:
                    if flow.end_time <= flow.start_time + _TIME_EPS:
                        states[fid] = FlowState.STOPPED
                        continue
                else:
                    if remaining_out[fid] <= _BYTE_EPS:
                        completion[fid] = flow.start_time
                        states[fid] = FlowState.COMPLETED
                        continue
                states[fid] = FlowState.ACTIVE
                slot = incremental.add_demand(fid, self._demands[fid])
                if slot >= rem.shape[0]:
                    new_size = max(16, 2 * rem.shape[0], slot + 1)
                    rem = _grow(rem, new_size)
                    stop_arr = _grow(stop_arr, new_size)
                    seg_start = _grow(seg_start, new_size)
                    seg_rate = _grow(seg_rate, new_size)
                    fid_of.extend([None] * (new_size - len(fid_of)))
                fid_of[slot] = fid
                seg_rate[slot] = -1.0
                if flow.is_unbounded:
                    rem[slot] = inf
                    stop_arr[slot] = flow.end_time
                    au_buf[nau] = slot
                    nau += 1
                else:
                    rem[slot] = remaining_out[fid]
                    af_buf[naf] = slot
                    naf += 1

            if naf == 0 and nau == 0 and pending_idx >= n_pending:
                end_time = now
                break
            if until is not None and now >= until - _TIME_EPS:
                end_time = until
                break

            batches += 1
            # Allocate rates and project the next event time.
            rate_vec = incremental.solve_slots()
            af = af_buf[:naf]
            au = au_buf[:nau]
            next_time = inf
            if pending_idx < n_pending:
                next_time = pending[pending_idx].start_time
            if nau:
                stop_u = stop_arr[au]
                stop_min = stop_u.min()
                if stop_min < next_time:
                    next_time = stop_min
            if naf:
                rates_f = rate_vec[af]
                rem_f = rem[af]
                # rate 0 -> finish inf (no event); rate inf -> finish now,
                # exactly the scalar loop's explicit ``next_time = now``.
                with np.errstate(divide="ignore"):
                    ft = now + rem_f * BITS_PER_BYTE / rates_f
                ft_min = ft.min()
                if ft_min < next_time:
                    next_time = ft_min
            if until is not None and until < next_time:
                next_time = until
            if next_time == inf:
                raise SimulationError(
                    "simulation stalled: active flows receive zero rate and "
                    "no further events are scheduled"
                )
            if next_time < now:
                next_time = now
            next_time = float(next_time)
            dt = next_time - now

            # Lazily flush rate segments for flows whose rate changed, then
            # drain finite flows in one vector step.
            if nau:
                rates_u = rate_vec[au]
                changed_u = rates_u != seg_rate[au]
                if changed_u.any():
                    rows = au[changed_u]
                    for slot in rows.tolist():
                        sr = seg_rate[slot]
                        if sr != -1.0:
                            timelines[fid_of[slot]].append(
                                float(seg_start[slot]), now, float(sr)
                            )
                    seg_start[rows] = now
                    seg_rate[rows] = rates_u[changed_u]
            if naf:
                changed_f = rates_f != seg_rate[af]
                if changed_f.any():
                    rows = af[changed_f]
                    for slot in rows.tolist():
                        sr = seg_rate[slot]
                        if sr != -1.0:
                            timelines[fid_of[slot]].append(
                                float(seg_start[slot]), now, float(sr)
                            )
                    seg_start[rows] = now
                    seg_rate[rows] = rates_f[changed_f]
                drained = rem_f - rates_f * dt / BITS_PER_BYTE
                new_rem = np.where(drained > 0.0, drained, 0.0)
                new_rem[np.isinf(rates_f)] = 0.0
                # Zeno residue reset: a flow whose projected finish
                # coincides with this event has drained (see _run_scalar).
                new_rem[ft <= next_time + _TIME_EPS] = 0.0
                rem[af] = new_rem

            now = next_time
            end_time = now

            # Retire flows that completed or were switched off at ``now``,
            # in activation order (matches the scalar loop's dict order and
            # keeps the allocator's slot free-list identical).
            if naf:
                done_mask = new_rem <= _BYTE_EPS
                if done_mask.any():
                    for i in np.nonzero(done_mask)[0].tolist():
                        slot = int(af[i])
                        fid = fid_of[slot]
                        sr = seg_rate[slot]
                        if sr != -1.0:
                            timelines[fid].append(
                                float(seg_start[slot]), now, float(sr)
                            )
                        completion[fid] = now
                        states[fid] = FlowState.COMPLETED
                        remaining_out[fid] = float(new_rem[i])
                        incremental.remove_flow(fid)
                    kept = af[~done_mask]
                    naf = kept.shape[0]
                    af_buf[:naf] = kept
            if nau:
                stop_mask = stop_u <= now + _TIME_EPS
                if stop_mask.any():
                    for i in np.nonzero(stop_mask)[0].tolist():
                        slot = int(au[i])
                        fid = fid_of[slot]
                        sr = seg_rate[slot]
                        if sr != -1.0:
                            timelines[fid].append(
                                float(seg_start[slot]), now, float(sr)
                            )
                        states[fid] = FlowState.STOPPED
                        incremental.remove_flow(fid)
                    kept = au[~stop_mask]
                    nau = kept.shape[0]
                    au_buf[:nau] = kept

            if until is not None and now >= until - _TIME_EPS:
                end_time = until
                break

        _FLUID_BATCHES.inc(batches)
        # Flush segments still open at the stop time and record the
        # remaining bytes of flows the run left active.
        for buf, count in ((af_buf, naf), (au_buf, nau)):
            for slot in buf[:count].tolist():
                sr = seg_rate[slot]
                if sr != -1.0:
                    timelines[fid_of[slot]].append(
                        float(seg_start[slot]), now, float(sr)
                    )
                remaining_out[fid_of[slot]] = float(rem[slot])
        # Flows still pending or active when the run stops keep their state.
        for fid in flows:
            if states[fid] is FlowState.ACTIVE:
                states[fid] = FlowState.STOPPED
        return FluidResult(
            completion_times=completion,
            timelines=timelines,
            remaining_bytes={
                fid: (0.0 if math.isinf(r) else r)
                for fid, r in remaining_out.items()
            },
            end_time=end_time,
            states=states,
        )


def measure_bulk_throughput(
    topology: Topology,
    src: str,
    dst: str,
    duration: float = 10.0,
    hose: Optional[HoseModel] = None,
    capacity_overrides: Optional[Mapping[str, float]] = None,
    background_flows: Optional[Sequence[Flow]] = None,
) -> float:
    """Throughput (bits/s) of one bulk TCP connection, netperf-style (§2.2).

    A single backlogged flow runs from ``src`` to ``dst`` for ``duration``
    seconds while any ``background_flows`` share the network; the returned
    value is the probe's average rate over the measurement window.
    """
    if duration <= 0:
        raise SimulationError("duration must be positive")
    sim = FluidSimulation(topology, hose=hose, capacity_overrides=capacity_overrides)
    probe = Flow(
        flow_id="__netperf__",
        src=src,
        dst=dst,
        size_bytes=None,
        start_time=0.0,
        end_time=duration,
        tag="netperf",
    )
    sim.add_flow(probe)
    if background_flows:
        sim.add_flows(background_flows)
    result = sim.run(until=duration)
    return result.timelines["__netperf__"].average_rate(0.0, duration)
