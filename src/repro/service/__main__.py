"""Command-line entry point: ``python -m repro.service``.

A thin alias for ``python -m repro service`` (see :mod:`repro.cli`, which
owns the shared ``--seed``/``--output``/``--param`` flags).  Two commands:

* ``list`` — show the available drift generators and predictors;
* ``run`` — run one churn session (streaming admission over a drifting
  network) and, unless ``--no-oracle``, a paired oracle session on the same
  seed; prints per-application completion vs. the oracle and the predictor's
  regret, and writes the structured JSON report.

``run`` accepts the two unified parameter conventions: ``--param
KEY=VALUE`` overrides a session-builder parameter (same keys as the
dedicated flags: ``n_vms``, ``hours``, ``drift``, …), and ``--placer-param
PLACER:KEY=VALUE`` forwards constructor overrides to the selected
``--placer`` (e.g. ``greedy:cluster_threshold=64``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.cli import common_parser, parse_params, parse_placer_params
from repro.errors import ReproError, ServiceError
from repro.faults import FAULT_NAMES
from repro.service.forecast import PREDICTOR_NAMES
from repro.service.session import build_churn_session, run_churn_session
from repro.service.timeline import DEFAULT_EPOCH_S, DRIFT_NAMES

#: Session-builder keys overridable via ``--param`` (mirroring the dedicated
#: flags, whose argparse dests they share).
_SESSION_PARAM_KEYS = (
    "apps_per_hour",
    "drift",
    "drift_strength",
    "epoch_s",
    "fault_strength",
    "faults",
    "hours",
    "max_tasks",
    "n_vms",
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``list``/``run`` commands to ``parser``.

    Called both by :func:`repro.cli.build_parser` (``python -m repro
    service``) and by this module's own :func:`main` (``python -m
    repro.service``), so the two spellings cannot diverge.
    """
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list drift generators and predictors")
    list_cmd.set_defaults(handler=_cmd_list)

    run_cmd = sub.add_parser(
        "run",
        help="run one churn session",
        parents=[
            common_parser(
                seed=0, output="service_report.json",
                params=True, placer_params=True,
            )
        ],
    )
    run_cmd.add_argument("--hours", type=float, default=6.0,
                         help="admission horizon in epochs (default 6)")
    run_cmd.add_argument("--drift", default="random-walk", choices=DRIFT_NAMES)
    run_cmd.add_argument(
        "--drift-strength", type=float, default=None,
        help="generator knob (walk sigma / diurnal amplitude / flap fraction)",
    )
    run_cmd.add_argument(
        "--predictor", default="combined", choices=PREDICTOR_NAMES,
    )
    run_cmd.add_argument("--placer", default="greedy",
                         help="placer registry name (aliases accepted)")
    run_cmd.add_argument("--n-vms", type=int, default=8)
    run_cmd.add_argument("--apps-per-hour", type=float, default=1.5)
    run_cmd.add_argument("--max-tasks", type=int, default=6)
    run_cmd.add_argument("--epoch-s", type=float, default=DEFAULT_EPOCH_S,
                         help="epoch length in seconds (default: one hour)")
    run_cmd.add_argument(
        "--ttl-s", type=float, default=None,
        help="measurement-cache TTL (default: half an epoch)",
    )
    run_cmd.add_argument("--no-migrate", action="store_true",
                         help="disable §2.4 re-evaluation at epoch ticks")
    run_cmd.add_argument(
        "--no-oracle", action="store_true",
        help="skip the paired oracle session (no regret report)",
    )
    run_cmd.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="replay a recorded timeline JSON instead of generating one",
    )
    run_cmd.add_argument(
        "--save-timeline", default=None, metavar="PATH",
        help="write the session's (generated or loaded) timeline to PATH",
    )
    run_cmd.add_argument(
        "--faults", default="none", choices=FAULT_NAMES,
        help="fault-timeline generator (default: none — no faults injected)",
    )
    run_cmd.add_argument(
        "--fault-strength", type=float, default=None,
        help="generator knob (preempted fraction / flappy fraction / "
             "per-pair loss probability)",
    )
    run_cmd.add_argument(
        "--faults-file", default=None, metavar="PATH",
        help="replay a recorded fault timeline JSON (overrides --faults)",
    )
    run_cmd.add_argument(
        "--save-faults", default=None, metavar="PATH",
        help="write the session's (generated or loaded) fault timeline to PATH",
    )
    run_cmd.add_argument(
        "--telemetry", action="store_true",
        help="attach the opt-in telemetry block (metrics snapshot, wall "
        "clocks) to the JSON report; canonical forms drop it either way",
    )
    run_cmd.set_defaults(handler=_cmd_run)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description=(
            "Online placement service: admit a stream of applications onto "
            "a time-varying cloud, forecasting next-epoch rates with the "
            "paper's §6.1 predictors."
        ),
    )
    configure_parser(parser)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    print("drift generators:", ", ".join(DRIFT_NAMES))
    print("predictors:      ", ", ".join(PREDICTOR_NAMES))
    print("fault generators:", ", ".join(FAULT_NAMES))
    print("(oracle reads true rates off the timeline; stale freezes the "
          "hour-0 profile)")
    return 0


def _apply_session_overrides(args: argparse.Namespace) -> None:
    """Fold ``--param KEY=VALUE`` overrides onto the dedicated flags."""
    overrides = parse_params(args.param)
    unknown = sorted(set(overrides) - set(_SESSION_PARAM_KEYS))
    if unknown:
        raise ServiceError(
            f"--param key(s) {unknown} are not session parameters; choose "
            f"from {list(_SESSION_PARAM_KEYS)} (placer constructor overrides "
            f"go through --placer-param PLACER:KEY=VALUE instead)"
        )
    for key, value in overrides.items():
        setattr(args, key, value)


def _resolve_placer_overrides(args: argparse.Namespace):
    """Return constructor overrides for the selected ``--placer``."""
    overrides = parse_placer_params(args.placer_param)
    if not overrides:
        return None
    from repro.experiments.placers import resolve_placer

    canonical = resolve_placer(args.placer).name
    stray = sorted(set(overrides) - {canonical})
    if stray:
        raise ServiceError(
            f"--placer-param given for {stray} but this session places with "
            f"--placer {canonical}; pass overrides for that placer only"
        )
    return overrides.get(canonical)


def _cmd_run(args: argparse.Namespace) -> int:
    _apply_session_overrides(args)
    placer_params = _resolve_placer_overrides(args)
    session_kwargs = dict(
        n_vms=args.n_vms,
        hours=args.hours,
        drift=args.drift,
        drift_strength=args.drift_strength,
        apps_per_hour=args.apps_per_hour,
        max_tasks=args.max_tasks,
        epoch_s=args.epoch_s,
        timeline_path=args.timeline,
        faults=args.faults,
        fault_strength=args.fault_strength,
        faults_path=args.faults_file,
    )
    if args.save_timeline or args.save_faults:
        provider, _, _, timeline = build_churn_session(args.seed, **session_kwargs)
        if args.save_timeline:
            timeline.save(args.save_timeline)
            print(f"wrote timeline to {args.save_timeline}", file=sys.stderr)
        if args.save_faults:
            from repro.faults import FaultTimeline

            fault_timeline = provider.fault_timeline or FaultTimeline()
            fault_timeline.save(args.save_faults)
            print(f"wrote fault timeline to {args.save_faults}", file=sys.stderr)

    report = run_churn_session(
        args.seed,
        predictor=args.predictor,
        placer=args.placer,
        placer_params=placer_params,
        migrate=not args.no_migrate,
        ttl_s=args.ttl_s,
        telemetry=args.telemetry,
        **session_kwargs,
    )
    oracle = None
    if not args.no_oracle and args.predictor != "oracle":
        oracle = run_churn_session(
            args.seed,
            predictor="oracle",
            placer=args.placer,
            placer_params=placer_params,
            migrate=not args.no_migrate,
            ttl_s=args.ttl_s,
            **session_kwargs,
        )

    line = (
        f"session: {args.hours:g} epoch(s) of {args.epoch_s:g}s, drift "
        f"{args.drift}, predictor {args.predictor}, placer {args.placer}, "
        f"seed {args.seed}"
    )
    if args.faults_file:
        line += f", faults from {args.faults_file}"
    elif args.faults != "none":
        line += f", faults {args.faults}"
    print(line)
    oracle_by_name = (
        {a.name: a for a in oracle.apps} if oracle is not None else {}
    )
    for outcome in report.apps:
        if outcome.status != "completed":
            print(f"  {outcome.name:<10} rejected ({outcome.error})")
            continue
        line = (
            f"  {outcome.name:<10} arrived {outcome.arrived_at:8.0f}s  "
            f"completed in {outcome.duration:9.1f}s"
        )
        ref = oracle_by_name.get(outcome.name)
        if ref is not None and ref.duration:
            line += (
                f"  (oracle {ref.duration:9.1f}s, "
                f"regret {100.0 * (outcome.duration / ref.duration - 1.0):+6.1f}%)"
            )
        if outcome.migrations:
            line += f"  [{outcome.migrations} migration(s)]"
        print(line)

    completed = report.completed()
    print(
        f"completed {len(completed)}/{len(report.apps)} app(s), "
        f"{len(report.migrations)} migration(s), "
        f"measured {report.measurement.get('pairs_measured', 0)} pair(s) in "
        f"{report.measurement.get('campaigns', 0)} campaign(s) "
        f"(reused {report.measurement.get('pairs_reused', 0)})"
    )
    if report.recovery:
        replaced = sum(1 for a in report.recovery if a.action == "re-placed")
        print(
            f"recovery: {len(report.recovery)} action(s), "
            f"{replaced} re-placement(s), "
            f"{report.measurement.get('pairs_degraded', 0)} degraded pair(s)"
        )
    payload = {"report": report.to_json_dict()}
    if completed:
        print(f"mean completion time: {report.mean_completion_time_s:.1f}s")
    if oracle is not None and completed and oracle.completed():
        regret = (
            report.mean_completion_time_s / oracle.mean_completion_time_s - 1.0
        )
        print(
            f"oracle mean completion time: "
            f"{oracle.mean_completion_time_s:.1f}s "
            f"-> mean regret {100.0 * regret:+.1f}%"
        )
        payload["oracle_report"] = oracle.to_json_dict()
        payload["mean_regret_vs_oracle"] = round(regret, 6)

    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.service``); exit code."""
    from repro import obs

    args = _build_parser().parse_args(argv)
    obs.apply_observability_args(args)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
