"""Application arrival processes (paper §6.3).

In the sequential-placement evaluation, applications arrive one by one and
are placed in order of their observed start times from the HP Cloud dataset.
We do not have that dataset, so these processes generate realistic start
times: a homogeneous Poisson process, a diurnal (time-of-day modulated)
Poisson process matching the hour-over-hour structure §6.1 relies on, and a
trace-driven process for replaying explicit timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.units import HOUR


@dataclass
class PoissonArrivals:
    """Homogeneous Poisson arrivals with ``rate_per_hour`` applications/hour."""

    rate_per_hour: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise WorkloadError("rate_per_hour must be positive")

    def sample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """``n`` arrival times (seconds), in increasing order."""
        if n < 0:
            raise WorkloadError("n must be >= 0")
        rng = rng if rng is not None else np.random.default_rng()
        gaps = rng.exponential(HOUR / self.rate_per_hour, size=n)
        return list(np.cumsum(gaps))


@dataclass
class DiurnalArrivals:
    """Poisson arrivals whose rate follows a sinusoidal day/night cycle.

    The rate at hour ``h`` is ``base * (1 + amplitude * sin(2*pi*(h - peak_hour + 6)/24))``
    so that the maximum occurs at ``peak_hour``.  Sampling uses thinning.
    """

    base_rate_per_hour: float = 2.0
    amplitude: float = 0.6
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.base_rate_per_hour <= 0:
            raise WorkloadError("base_rate_per_hour must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise WorkloadError("amplitude must be in [0, 1)")

    def rate_at(self, t_seconds: float) -> float:
        """Instantaneous arrival rate (per hour) at absolute time ``t_seconds``."""
        hour_of_day = (t_seconds / HOUR) % 24.0
        phase = 2.0 * np.pi * (hour_of_day - self.peak_hour) / 24.0
        return self.base_rate_per_hour * (1.0 + self.amplitude * float(np.cos(phase)))

    def sample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """``n`` arrival times (seconds) from the non-homogeneous process."""
        if n < 0:
            raise WorkloadError("n must be >= 0")
        rng = rng if rng is not None else np.random.default_rng()
        rate_max = self.base_rate_per_hour * (1.0 + self.amplitude)
        arrivals: List[float] = []
        t = 0.0
        while len(arrivals) < n:
            t += float(rng.exponential(HOUR / rate_max))
            if rng.random() < self.rate_at(t) / rate_max:
                arrivals.append(t)
        return arrivals


@dataclass
class TraceArrivals:
    """Replay explicit start times (e.g. parsed from a trace file)."""

    start_times: Sequence[float]

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.start_times):
            raise WorkloadError("start times must be >= 0")

    def sample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """The first ``n`` start times, sorted."""
        if n > len(self.start_times):
            raise WorkloadError(
                f"trace has only {len(self.start_times)} start times, asked for {n}"
            )
        return sorted(self.start_times)[:n]
