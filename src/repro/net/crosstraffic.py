"""ON/OFF cross-traffic processes (paper §3.2, Figure 4).

Background connections in the paper's ns-2 validation follow an ON/OFF model
whose transition times are exponentially distributed with a 5-second mean.
While ON, a source is backlogged (sends as fast as TCP allows); while OFF it
is silent.  :func:`generate_on_intervals` samples such a process over a
finite horizon, and :meth:`OnOffSource.to_flows` converts the ON intervals
into unbounded flows that can be fed straight into the fluid simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.net.flows import Flow


@dataclass(frozen=True)
class OnOffInterval:
    """A single ON period of a background source."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError("ON interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def active_at(self, t: float) -> bool:
        """True if the source is ON at time ``t`` (half-open interval)."""
        return self.start <= t < self.end


def generate_on_intervals(
    horizon: float,
    mean_on: float = 5.0,
    mean_off: float = 5.0,
    rng: Optional[np.random.Generator] = None,
    start_on_probability: float = 0.5,
) -> List[OnOffInterval]:
    """Sample the ON intervals of an exponential ON/OFF process.

    Args:
        horizon: length of the observation window in seconds.
        mean_on: mean ON duration (seconds); the paper uses 5 s.
        mean_off: mean OFF duration (seconds).
        rng: numpy random generator (a fresh default generator is used when
            omitted, which makes results non-reproducible — pass one).
        start_on_probability: probability the source is ON at time zero,
            defaulting to the stationary value for equal means.

    Returns:
        ON intervals clipped to ``[0, horizon]``, in chronological order.
    """
    if horizon <= 0:
        raise SimulationError("horizon must be positive")
    if mean_on <= 0 or mean_off <= 0:
        raise SimulationError("mean_on and mean_off must be positive")
    rng = rng if rng is not None else np.random.default_rng()

    intervals: List[OnOffInterval] = []
    t = 0.0
    is_on = bool(rng.random() < start_on_probability)
    while t < horizon:
        duration = float(rng.exponential(mean_on if is_on else mean_off))
        end = min(t + duration, horizon)
        if is_on and end > t:
            intervals.append(OnOffInterval(start=t, end=end))
        t += duration
        is_on = not is_on
    return intervals


@dataclass
class OnOffSource:
    """A backlogged ON/OFF background source between two hosts."""

    name: str
    src: str
    dst: str
    mean_on: float = 5.0
    mean_off: float = 5.0
    max_rate_bps: Optional[float] = None

    def sample(
        self,
        horizon: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[OnOffInterval]:
        """Sample the source's ON intervals over ``horizon`` seconds."""
        return generate_on_intervals(
            horizon, mean_on=self.mean_on, mean_off=self.mean_off, rng=rng
        )

    def to_flows(
        self,
        horizon: float,
        rng: Optional[np.random.Generator] = None,
        tag: str = "cross-traffic",
    ) -> List[Flow]:
        """Unbounded fluid-simulator flows for each sampled ON interval."""
        flows: List[Flow] = []
        for index, interval in enumerate(self.sample(horizon, rng)):
            if interval.duration <= 0:
                continue
            flows.append(
                Flow(
                    flow_id=f"{self.name}#{index}",
                    src=self.src,
                    dst=self.dst,
                    size_bytes=None,
                    start_time=interval.start,
                    end_time=interval.end,
                    max_rate_bps=self.max_rate_bps,
                    tag=tag,
                )
            )
        return flows


def count_active(intervals: Sequence[Sequence[OnOffInterval]], t: float) -> int:
    """Number of sources that are ON at time ``t``.

    ``intervals`` is one list of ON intervals per source.  Used as the
    "actual" series against which the cross-traffic estimator is compared in
    the Figure 4 reproduction.
    """
    return sum(
        1
        for source_intervals in intervals
        if any(interval.active_at(t) for interval in source_intervals)
    )
