"""Online placement service over a time-varying network (§2.4, §6.1).

The paper's premise is that last-hour and time-of-day measurements predict
the *next* hour's network behaviour.  This package turns the offline
evaluator into the online system that premise implies:

* :mod:`repro.service.timeline` — piecewise-hourly ground-truth rate
  matrices with configurable drift generators, attachable to any provider;
* :mod:`repro.service.cache` — a measurement cache with per-pair TTL, so
  campaigns re-probe only the stale slice of the mesh;
* :mod:`repro.service.forecast` — next-epoch rate forecasts built from the
  §6.1 predictors (previous-hour / time-of-day / combined);
* :mod:`repro.service.engine` — the :class:`PlacementService` itself:
  streaming admission, live-placement tracking, and predictor-triggered
  re-evaluation/migration;
* :mod:`repro.service.session` — seeded churn sessions (provider +
  timeline + arrival stream) shared by the CLI, the ``service-churn``
  scenario, and the ``service_churn`` benchmark.

``python -m repro.service run`` drives a churn session from the command
line and reports per-application completion against an oracle that sees the
true future rates.
"""

from repro.service.cache import MeasurementCache
from repro.service.engine import PlacementService, ServiceReport
from repro.service.forecast import PREDICTOR_NAMES, RateForecaster
from repro.service.session import build_churn_session, run_churn_session
from repro.service.timeline import (
    DRIFT_NAMES,
    NetworkTimeline,
    attach_timeline,
    generate_timeline,
)

__all__ = [
    "DRIFT_NAMES",
    "MeasurementCache",
    "NetworkTimeline",
    "PREDICTOR_NAMES",
    "PlacementService",
    "RateForecaster",
    "ServiceReport",
    "attach_timeline",
    "build_churn_session",
    "generate_timeline",
    "run_churn_session",
]
