"""Burst-level packet-train transmission model (paper §3.1).

Choreo estimates pairwise TCP throughput by sending *packet trains*: ``K``
bursts of ``B`` back-to-back ``P``-byte UDP packets, with a gap of ``delta``
between bursts.  The receiver records the kernel timestamps of the first and
last packet of each burst plus the number of packets delivered.

This module is the network side of that experiment.  Because we do not have
real NICs, the burst is pushed through a small analytical model of the path:

* the *unlimited* path rate (what a burst would see absent any rate
  limiting) — in practice the physical bottleneck divided among the cross
  traffic present during the burst;
* an optional provider rate limiter modelled as a :class:`TokenBucket`.
  EC2-style enforcement uses a shallow bucket (the burst is served at the
  hose rate almost immediately); Rackspace-style enforcement uses a deep
  bucket, so short bursts ride the line rate and over-estimate the
  sustainable throughput — which is exactly why the paper needs 2000-packet
  bursts on Rackspace (Figure 6b);
* timestamp jitter (kernel timestamping and VM scheduling noise) and random
  packet loss.

The measurement-side estimator that consumes these observations lives in
:mod:`repro.core.measurement.packet_train`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import MeasurementError
from repro.units import BITS_PER_BYTE


@dataclass
class TokenBucket:
    """A classic token bucket rate limiter.

    Attributes:
        rate_bps: long-term token refill rate (the enforced rate).
        depth_bytes: bucket depth; bursts shorter than this pass at line
            rate before the limiter bites.
        tokens_bytes: current fill level (defaults to a full bucket).
    """

    rate_bps: float
    depth_bytes: float
    tokens_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise MeasurementError("token bucket rate must be positive")
        if self.depth_bytes < 0:
            raise MeasurementError("token bucket depth must be >= 0")
        if self.tokens_bytes is None:
            self.tokens_bytes = self.depth_bytes
        self.tokens_bytes = min(self.tokens_bytes, self.depth_bytes)

    def refill(self, elapsed_s: float) -> None:
        """Add ``elapsed_s`` seconds worth of tokens (capped at the depth)."""
        if elapsed_s < 0:
            raise MeasurementError("cannot refill for negative time")
        self.tokens_bytes = min(
            self.depth_bytes,
            self.tokens_bytes + self.rate_bps * elapsed_s / BITS_PER_BYTE,
        )

    def drain_time(self, burst_bytes: float, fast_rate_bps: float) -> float:
        """Seconds to push ``burst_bytes`` through the limiter, consuming tokens.

        While tokens remain the burst is served at ``fast_rate_bps`` (tokens
        drain at the difference between service and refill); once the bucket
        empties the remainder is served at the refill rate.  The bucket's
        fill level is updated in place.
        """
        if burst_bytes <= 0:
            return 0.0
        fast_rate = max(fast_rate_bps, self.rate_bps)
        if fast_rate <= self.rate_bps or self.depth_bytes == 0:
            # The limiter is never the binding constraint beyond its rate.
            self.tokens_bytes = min(self.depth_bytes, self.tokens_bytes)
            return burst_bytes * BITS_PER_BYTE / self.rate_bps

        # Phase 1: tokens available, serve at the fast rate.
        token_drain_rate = (fast_rate - self.rate_bps) / BITS_PER_BYTE  # bytes/s
        time_to_empty = self.tokens_bytes / token_drain_rate if token_drain_rate > 0 else math.inf
        fast_phase_bytes = fast_rate * time_to_empty / BITS_PER_BYTE

        if burst_bytes <= fast_phase_bytes:
            duration = burst_bytes * BITS_PER_BYTE / fast_rate
            self.tokens_bytes -= token_drain_rate * duration
            self.tokens_bytes = max(0.0, self.tokens_bytes)
            return duration

        # Phase 2: bucket empty, serve the remainder at the refill rate.
        remainder = burst_bytes - fast_phase_bytes
        self.tokens_bytes = 0.0
        return time_to_empty + remainder * BITS_PER_BYTE / self.rate_bps


@dataclass
class PathTransmissionModel:
    """Everything the burst model needs to know about one VM-to-VM path.

    Attributes:
        line_rate_bps: rate at which the sender's NIC emits packets.
        unlimited_rate_bps: rate the path would deliver absent provider rate
            limiting (physical bottleneck share given current cross traffic).
        limiter: optional provider rate limiter (hose enforcement).
        base_delay_s: one-way propagation plus forwarding delay.
        jitter_std_s: standard deviation of the timestamp noise added to the
            first/last packet receive times of each burst.
        loss_rate: independent per-packet loss probability.
    """

    line_rate_bps: float
    unlimited_rate_bps: float
    limiter: Optional[TokenBucket] = None
    base_delay_s: float = 100e-6
    jitter_std_s: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.line_rate_bps <= 0 or self.unlimited_rate_bps <= 0:
            raise MeasurementError("line and unlimited rates must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise MeasurementError("loss_rate must be in [0, 1)")
        if self.jitter_std_s < 0 or self.base_delay_s < 0:
            raise MeasurementError("delays must be non-negative")


@dataclass(frozen=True)
class PacketTrainSpec:
    """Parameters of a packet train (paper §3.1 and §4.1).

    Defaults follow the paper: 1472-byte packets, 10 bursts, 1 ms between
    bursts.  The burst length is the knob Figure 6 sweeps (200 packets works
    on EC2, 2000 on Rackspace).
    """

    packet_size_bytes: int = 1472
    n_bursts: int = 10
    burst_length: int = 200
    inter_burst_gap_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.packet_size_bytes <= 0:
            raise MeasurementError("packet size must be positive")
        if self.n_bursts < 1 or self.burst_length < 2:
            raise MeasurementError("need >= 1 burst of >= 2 packets")
        if self.inter_burst_gap_s < 0:
            raise MeasurementError("inter-burst gap must be >= 0")

    @property
    def burst_bytes(self) -> float:
        """Bytes in one burst."""
        return float(self.packet_size_bytes * self.burst_length)

    @property
    def total_packets(self) -> int:
        """Packets in the whole train."""
        return self.n_bursts * self.burst_length


@dataclass(frozen=True)
class BurstObservation:
    """What the receiver records for one burst.

    ``first_index`` / ``last_index`` are the sequence numbers (within the
    burst) of the first and last packets actually received; the estimator
    uses them to correct the time span when edge packets were lost, as
    described in §3.1.
    """

    n_sent: int
    n_received: int
    first_rx_time: float
    last_rx_time: float
    first_index: int
    last_index: int

    @property
    def span(self) -> float:
        """Receive-time difference between the last and first packets."""
        return self.last_rx_time - self.first_rx_time


@dataclass
class TrainObservation:
    """All burst observations of one packet train on one path."""

    spec: PacketTrainSpec
    bursts: List[BurstObservation] = field(default_factory=list)
    send_duration_s: float = 0.0
    rtt_s: float = 1e-3

    @property
    def packets_sent(self) -> int:
        return sum(burst.n_sent for burst in self.bursts)

    @property
    def packets_received(self) -> int:
        return sum(burst.n_received for burst in self.bursts)

    @property
    def loss_rate(self) -> float:
        """Overall fraction of train packets that were lost."""
        sent = self.packets_sent
        if sent == 0:
            return 0.0
        return 1.0 - self.packets_received / sent


def send_packet_train(
    model: PathTransmissionModel,
    spec: PacketTrainSpec,
    rng: Optional[np.random.Generator] = None,
    rtt_s: float = 1e-3,
) -> TrainObservation:
    """Simulate sending one packet train over a path.

    Returns the per-burst receiver observations that
    :func:`repro.core.measurement.packet_train.estimate_throughput` consumes.
    """
    rng = rng if rng is not None else np.random.default_rng()
    observation = TrainObservation(spec=spec, rtt_s=rtt_s)

    fast_rate = min(model.line_rate_bps, model.unlimited_rate_bps)
    send_clock = 0.0
    limiter = model.limiter
    burst_bytes = spec.burst_bytes
    burst_length = spec.burst_length
    packet_bits = spec.packet_size_bytes * BITS_PER_BYTE
    base_delay = model.base_delay_s
    jitter_std = model.jitter_std_s
    loss_rate = model.loss_rate
    emit_time = burst_bytes * BITS_PER_BYTE / model.line_rate_bps
    step = emit_time + spec.inter_burst_gap_s
    if limiter is None:
        # Lossless paths without a limiter (the common EC2-style mesh) serve
        # every burst identically, so hoist the per-burst drain.
        fixed_drain = burst_bytes * BITS_PER_BYTE / fast_rate
    # Draw the per-burst jitter in one vectorised call when no other RNG
    # consumer interleaves (loss draws happen between jitter draws); numpy
    # Generators fill arrays from the same stream as repeated scalar draws,
    # so the observations are bit-identical either way.
    jitter_draws = None
    if jitter_std > 0 and loss_rate == 0:
        jitter_draws = np.abs(rng.normal(0.0, jitter_std, size=2 * spec.n_bursts))
    bursts = observation.bursts

    for burst_no in range(spec.n_bursts):
        # Time for the whole burst to drain through the path.
        if limiter is not None:
            drain = limiter.drain_time(burst_bytes, fast_rate)
        else:
            drain = fixed_drain

        # The first packet arrives after its own serialisation at the rate
        # it was served with (fast if tokens were available).
        initial_rate = fast_rate
        if limiter is not None and limiter.depth_bytes < spec.packet_size_bytes:
            initial_rate = min(fast_rate, limiter.rate_bps)
        first_rx = send_clock + base_delay + packet_bits / initial_rate
        last_rx = send_clock + base_delay + drain

        # Packet loss: drop each packet independently.
        lost = int(rng.binomial(burst_length, loss_rate)) if loss_rate > 0 else 0
        n_received = burst_length - lost
        first_index, last_index = 0, burst_length - 1
        if lost > 0 and n_received > 0:
            # Choose which positions were lost to know whether the edges moved.
            lost_positions = set(
                rng.choice(burst_length, size=lost, replace=False).tolist()
            )
            received_positions = [
                i for i in range(burst_length) if i not in lost_positions
            ]
            first_index, last_index = received_positions[0], received_positions[-1]
            per_packet = (last_rx - first_rx) / max(burst_length - 1, 1)
            first_rx += per_packet * first_index
            last_rx -= per_packet * (burst_length - 1 - last_index)

        # Kernel timestamping / VM scheduling jitter.
        if jitter_draws is not None:
            first_rx += float(jitter_draws[2 * burst_no]) * 0.1
            last_rx += float(jitter_draws[2 * burst_no + 1])
        elif jitter_std > 0:
            first_rx += abs(float(rng.normal(0.0, jitter_std))) * 0.1
            last_rx += abs(float(rng.normal(0.0, jitter_std)))
        if last_rx <= first_rx:
            last_rx = first_rx + packet_bits / fast_rate

        if n_received > 0:
            bursts.append(
                BurstObservation(
                    n_sent=burst_length,
                    n_received=n_received,
                    first_rx_time=first_rx,
                    last_rx_time=last_rx,
                    first_index=first_index,
                    last_index=last_index,
                )
            )

        # Advance the sender clock: the burst is emitted at line rate, then
        # the inter-burst gap elapses (during which the limiter refills).
        send_clock += step
        if limiter is not None:
            limiter.refill(step)

    observation.send_duration_s = send_clock
    return observation
