"""Sweep-grade ILP tests: exactness of the pruned + warm-started MILP
against brute force and the dense reference formulation, graceful warm-start
rejection, candidate restriction, solver stats plumbing, placer aliases, and
the rack-hotspot scenario's greedy gap."""

import json
import math
import random

import pytest

from repro.core.estimator import estimate_completion_time
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Machine, cpu_feasible_machines
from repro.core.placement.greedy import GreedyPlacer, greedy_incumbent
from repro.core.placement.ilp import BruteForcePlacer, OptimalPlacer
from repro.errors import ExperimentError, PlacementError
from repro.experiments.cache import ResultStore
from repro.experiments.cli import main as cli_main
from repro.experiments.placers import canonical_placer_name, get_placer
from repro.experiments.runner import DEFAULT_PLACERS, ExperimentConfig
from repro.experiments.trials import WorkItem, run_trial
from repro.units import GBITPS, GBYTE
from repro.workloads.application import Application, Task, TrafficMatrix


# ---------------------------------------------------------------------------
# Randomized instances
# ---------------------------------------------------------------------------
def _random_instance(rng: random.Random, uniform_rates: bool = False):
    n_tasks = rng.randint(2, 4)
    n_machines = rng.randint(2, 4)
    tasks = [
        Task(f"t{i}", rng.choice([0.5, 1.0, 2.0, 4.0])) for i in range(n_tasks)
    ]
    names = [t.name for t in tasks]
    traffic = TrafficMatrix()
    for i in range(n_tasks):
        for j in range(n_tasks):
            if i != j and rng.random() < 0.5:
                traffic.add(names[i], names[j], rng.uniform(0.05, 3.0) * GBYTE)
    app = Application("app", tasks, traffic)
    machines = [f"m{i}" for i in range(n_machines)]
    cluster = ClusterState(machines=[Machine(m, cores=4.0) for m in machines])
    if uniform_rates:
        profile = NetworkProfile.from_uniform_rate(machines, 0.5 * GBITPS)
    else:
        rates = {
            (a, b): rng.uniform(0.1, 1.0) * GBITPS
            for a in machines
            for b in machines
            if a != b
        }
        intra = math.inf if rng.random() < 0.5 else 4 * GBITPS
        profile = NetworkProfile(
            vms=machines, rates_bps=rates, intra_vm_rate_bps=intra
        )
    return app, cluster, profile


def _objective(placement, app, profile, model):
    return estimate_completion_time(placement.assignments, app, profile, model=model)


def _random_feasible_instance(rng: random.Random, uniform_rates: bool = False):
    """Redraw until the instance passes the basic CPU feasibility checks."""
    while True:
        app, cluster, profile = _random_instance(rng, uniform_rates=uniform_rates)
        total = sum(t.cpu_cores for t in app.tasks)
        if total <= cluster.total_available_cpu():
            return app, cluster, profile


@pytest.mark.parametrize("model", ["hose", "pipe"])
def test_pruned_warm_milp_matches_brute_force_on_randomized_instances(model):
    """>= 50 instances per model (>= 100 total with the parametrisation)."""
    rng = random.Random(42 if model == "hose" else 43)
    checked = 0
    attempts = 0
    while checked < 50 and attempts < 200:
        attempts += 1
        # Every third instance uses uniform rates, which makes machines
        # interchangeable and exercises the symmetry-breaking rows.
        app, cluster, profile = _random_instance(
            rng, uniform_rates=(attempts % 3 == 0)
        )
        try:
            brute = BruteForcePlacer(model=model).place(app, cluster, profile)
        except PlacementError:
            continue  # CPU-infeasible draw
        optimal = OptimalPlacer(model=model, mip_rel_gap=1e-9).place(
            app, cluster, profile
        )
        t_brute = _objective(brute, app, profile, model)
        t_optimal = _objective(optimal, app, profile, model)
        assert t_optimal == pytest.approx(t_brute, rel=1e-6, abs=1e-9), (
            f"instance {attempts}: pruned+warm {t_optimal} != brute {t_brute}"
        )
        checked += 1
    assert checked == 50


@pytest.mark.parametrize("model", ["hose", "pipe"])
def test_sparse_matches_dense_formulation_objective(model):
    """candidate_k=None sparse == the dense reference on randomized instances."""
    rng = random.Random(7)
    for trial in range(8):
        app, cluster, profile = _random_feasible_instance(
            rng, uniform_rates=(trial % 4 == 0)
        )
        sparse = OptimalPlacer(model=model, mip_rel_gap=1e-9, candidate_k=None)
        dense = OptimalPlacer(
            model=model, mip_rel_gap=1e-9, formulation="dense",
            warm_start=False, symmetry_breaking=False,
        )
        t_sparse = _objective(sparse.place(app, cluster, profile), app, profile, model)
        t_dense = _objective(dense.place(app, cluster, profile), app, profile, model)
        assert t_sparse == pytest.approx(t_dense, rel=1e-6, abs=1e-9)
        assert sparse.last_solve_stats["n_vars"] <= dense.last_solve_stats["n_vars"]


def _greedy_dead_end_instance():
    """Greedy colocates (a, b) on m1 by name tie-break, stranding c(4)."""
    app = Application(
        "trap",
        tasks=[Task("a", 1.0), Task("b", 1.0), Task("c", 4.0)],
        traffic=TrafficMatrix({("a", "b"): 1 * GBYTE}),
    )
    cluster = ClusterState(
        machines=[Machine("m1", cores=4.0), Machine("m2", cores=2.0)]
    )
    profile = NetworkProfile.from_uniform_rate(["m1", "m2"], 0.5 * GBITPS)
    return app, cluster, profile


def test_greedy_infeasible_warm_start_rejected_gracefully():
    app, cluster, profile = _greedy_dead_end_instance()
    with pytest.raises(PlacementError):
        GreedyPlacer().place(app, cluster, profile)
    assert greedy_incumbent(app, cluster, profile) is None

    placer = OptimalPlacer(mip_rel_gap=1e-9)  # warm_start=True by default
    placement = placer.place(app, cluster, profile)
    assert placement.machine_of("c") == "m1"
    assert placement.machine_of("a") == placement.machine_of("b") == "m2"
    stats = placer.last_solve_stats
    assert stats["warm_start_accepted"] is False
    assert stats["fallback_used"] is False


def test_warm_start_accepted_and_bound_recorded():
    rng = random.Random(3)
    app, cluster, profile = _random_feasible_instance(rng)
    placer = OptimalPlacer(mip_rel_gap=1e-9)
    placement = placer.place(app, cluster, profile)
    stats = placer.last_solve_stats
    assert stats["warm_start_accepted"] is True
    assert stats["warm_bound_s"] >= stats["objective_s"] - 1e-9
    assert placer.stats_history[-1][0] == app.name
    assert _objective(placement, app, profile, "hose") <= stats["warm_bound_s"] + 1e-9


def test_candidate_k_exact_when_covering_and_never_worse_than_greedy():
    rng = random.Random(11)
    for _ in range(5):
        app, cluster, profile = _random_feasible_instance(rng)
        full = OptimalPlacer(mip_rel_gap=1e-9)
        t_full = _objective(full.place(app, cluster, profile), app, profile, "hose")
        # k = all machines: exact.
        k_all = OptimalPlacer(mip_rel_gap=1e-9, candidate_k=len(cluster.machines))
        t_all = _objective(k_all.place(app, cluster, profile), app, profile, "hose")
        assert t_all == pytest.approx(t_full, rel=1e-6, abs=1e-9)
        # k = 1: heuristic, but never worse than the greedy incumbent.
        k_one = OptimalPlacer(mip_rel_gap=1e-9, candidate_k=1)
        t_one = _objective(k_one.place(app, cluster, profile), app, profile, "hose")
        greedy = greedy_incumbent(app, cluster, profile)
        t_greedy = _objective(greedy, app, profile, "hose")
        assert t_one <= t_greedy + 1e-6


def test_candidate_k_restriction_cannot_manufacture_failure():
    """A task whose feasible machines miss the top-k set keeps its full set."""
    app = Application(
        "a",
        tasks=[Task("big", 4.0), Task("small", 0.5)],
        traffic=TrafficMatrix({("big", "small"): 1 * GBYTE}),
    )
    # The two fastest machines are too small for `big`; only the slowest
    # machine fits it.
    cluster = ClusterState(
        machines=[
            Machine("fast1", cores=1.0),
            Machine("fast2", cores=1.0),
            Machine("slowbig", cores=8.0),
        ]
    )
    rates = {}
    for a, b in [(x, y) for x in ("fast1", "fast2", "slowbig")
                 for y in ("fast1", "fast2", "slowbig") if x != y]:
        fast = a.startswith("fast") and b.startswith("fast")
        rates[(a, b)] = (1.0 if fast else 0.1) * GBITPS
    profile = NetworkProfile(
        vms=["fast1", "fast2", "slowbig"], rates_bps=rates
    )
    placer = OptimalPlacer(mip_rel_gap=1e-9, candidate_k=2, warm_start=False)
    placement = placer.place(app, cluster, profile)
    assert placement.machine_of("big") == "slowbig"


def test_boolean_placer_params_parse_and_apply():
    from repro.experiments.cli import _parse_value

    assert _parse_value("false") is False
    assert _parse_value("True") is True
    assert _parse_value("3") == 3
    placer = get_placer("ilp").create(0, {"warm_start": "false"})
    assert placer.warm_start is False
    placer = get_placer("ilp").create(0, {"symmetry_breaking": False})
    assert placer.symmetry_breaking is False
    with pytest.raises(ExperimentError):
        get_placer("ilp").create(0, {"warm_start": "maybe"})


def test_cpu_feasible_machines_filters_by_free_cores():
    app = Application(
        "a", tasks=[Task("small", 1.0), Task("big", 4.0)], traffic=TrafficMatrix()
    )
    cluster = ClusterState(
        machines=[Machine("m1", cores=4.0), Machine("m2", cores=2.0)],
        cpu_used={"m1": 1.0},
    )
    feasible = cpu_feasible_machines(app, cluster)
    assert feasible["small"] == ["m1", "m2"]
    assert feasible["big"] == []


def test_fallback_or_raise_uses_incumbent_else_raises():
    placer = OptimalPlacer()
    app = Application("x", tasks=[Task("t", 1.0)], traffic=TrafficMatrix())
    from repro.core.placement.base import Placement

    incumbent = Placement(app_name="x", assignments={"t": "m1"})
    stats = {"fallback_used": False}
    assert placer._fallback_or_raise(app, incumbent, stats, "limit") is incumbent
    assert stats["fallback_used"] is True
    with pytest.raises(PlacementError):
        placer._fallback_or_raise(app, None, {"fallback_used": False}, "limit")


# ---------------------------------------------------------------------------
# Experiments integration
# ---------------------------------------------------------------------------
def test_placer_alias_resolution():
    assert canonical_placer_name("choreo-optimal") == "ilp"
    assert canonical_placer_name("choreo-greedy") == "greedy"
    assert get_placer("choreo-optimal").name == "ilp"
    config = ExperimentConfig(
        scenarios=("smoke",), placers=("choreo-optimal",), baseline="random"
    )
    assert config.placers == ("ilp",)


def test_ilp_in_default_placer_grid():
    assert "ilp" in DEFAULT_PLACERS


def test_placer_params_validated_and_keyed():
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",),
            placers=("ilp",),
            placer_params={"ilp": {"not_a_param": 1}},
        )
    config = ExperimentConfig(
        scenarios=("smoke",),
        placers=("choreo-optimal",),
        placer_params={"choreo-optimal": {"time_limit_s": 5.0}},
    )
    assert config.placer_params == {"ilp": {"time_limit_s": 5.0}}
    # An alias and its canonical name both carrying params is ambiguous.
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",),
            placers=("ilp",),
            placer_params={
                "choreo-optimal": {"time_limit_s": 5.0},
                "ilp": {"mip_rel_gap": 1e-2},
            },
        )

    store = ResultStore("/tmp/unused", version="v0")
    key_a = store.key_for("s", "ilp", 0, 1, placer_params={"time_limit_s": 5.0})
    key_b = store.key_for("s", "ilp", 0, 1, placer_params={"time_limit_s": 9.0})
    assert key_a.digest() != key_b.digest()

    item = WorkItem.make("s", "ilp", 0, 1, placer_params={"time_limit_s": 5.0})
    assert WorkItem.from_json_dict(item.to_json_dict()) == item


def test_trial_records_solver_stats_for_ilp():
    record = run_trial(
        "smoke", "ilp", 0, 0, placer_params={"time_limit_s": 5.0}
    )
    assert record.status == "ok"
    assert record.solver_stats
    stats = next(iter(record.solver_stats.values()))
    assert stats["warm_start_accepted"] in (True, False)
    assert "mip_gap" in stats and "mip_nodes" in stats
    assert stats["formulation"] == "sparse"
    # The record survives a JSON round-trip with its stats intact.
    from dataclasses import asdict

    from repro.experiments.results import TrialRecord

    clone = TrialRecord(**json.loads(json.dumps(asdict(record))))
    assert clone.solver_stats == record.solver_stats


def test_rack_hotspot_greedy_leaves_rate_on_the_table():
    """On the hotspot scenario the exact placer strictly beats greedy."""
    greedy_rec = run_trial("rack-hotspot", "greedy", 0, 0)
    ilp_rec = run_trial(
        "rack-hotspot", "ilp", 0, 0, placer_params={"time_limit_s": 10.0}
    )
    assert greedy_rec.status == "ok" and ilp_rec.status == "ok"
    assert ilp_rec.total_running_time_s < 0.9 * greedy_rec.total_running_time_s
    stats = next(iter(ilp_rec.solver_stats.values()))
    assert stats["warm_start_accepted"] is True
    # The ILP's predicted objective improves on the greedy warm bound, i.e.
    # greedy's plan left rate on the table even under its own model.
    assert stats["objective_s"] < stats["warm_bound_s"] - 1e-6


def test_ilp_canonical_results_identical_across_backends():
    """solver_stats are modeled except solve_wall_s, which the canonical
    form strips — so ilp cells compare bit-identical across backends."""
    from repro.experiments.runner import ExperimentRunner

    def run(backend, workers):
        config = ExperimentConfig(
            scenarios=("smoke",), placers=("ilp",), trials=1,
            workers=workers, backend=backend,
            placer_params={"ilp": {"time_limit_s": 5.0}},
        )
        return ExperimentRunner(config).run().canonical_json_dict()

    inline = run("inline", 1)
    pooled = run("subprocess-pool", 2)
    assert json.dumps(inline, sort_keys=True) == json.dumps(pooled, sort_keys=True)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_accepts_ilp_alias_and_placer_params(tmp_path, capsys):
    out = tmp_path / "results.json"
    code = cli_main(
        [
            "run", "--scenario", "smoke", "--trials", "1",
            "--placers", "choreo-optimal", "--baseline", "random",
            "--placer-param", "choreo-optimal:time_limit_s=5",
            "--output", str(out),
        ]
    )
    assert code == 0
    data = json.loads(out.read_text())
    assert set(data["placers"]) == {"ilp", "random"}
    ilp_records = [rec for rec in data["records"] if rec["placer"] == "ilp"]
    assert ilp_records and all(rec["solver_stats"] for rec in ilp_records)


def test_cli_cache_stats_flag(tmp_path, capsys):
    out = tmp_path / "results.json"
    store = tmp_path / "store"
    args = [
        "run", "--scenario", "smoke", "--trials", "1",
        "--placers", "greedy", "--cache-dir", str(store),
        "--cache-stats", "--output", str(out),
    ]
    assert cli_main(args) == 0
    cold = capsys.readouterr().out
    assert "executed 2 trial(s)" in cold
    assert "store stats: hits=0" in cold and "stored=2" in cold

    assert cli_main(args) == 0
    warm = capsys.readouterr().out
    # The executed line still prints on a fully-warm run, plus store stats.
    assert "executed 0 trial(s)" in warm
    assert "store stats: hits=2" in warm

    # --cache-stats is now a deprecated alias for --stats, so it works
    # without a store too: no store line, telemetry snapshot only.
    assert (
        cli_main(
            ["run", "--scenario", "smoke", "--trials", "1",
             "--placers", "greedy", "--cache-stats", "--output", str(out)]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "note: --cache-stats is deprecated" in captured.err
    assert "store stats:" not in captured.out
    assert "telemetry snapshot:" in captured.out


def test_cli_rejects_malformed_placer_param(tmp_path):
    code = cli_main(
        [
            "run", "--scenario", "smoke", "--trials", "1",
            "--placers", "greedy", "--placer-param", "nonsense",
            "--output", str(tmp_path / "r.json"),
        ]
    )
    assert code == 2
