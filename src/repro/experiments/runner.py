"""Parallel experiment runner: sweep scenario x placer x trial grids.

One *trial* re-creates a scenario from a derived seed, runs one placer on
it, executes the resulting placement on the provider's fluid simulator, and
records the timings into a :class:`~repro.experiments.results.TrialRecord`.
The per-trial seed depends only on ``(base_seed, scenario, trial)`` — not on
the placer — so every placer faces the *same* ground-truth network and
applications and per-trial speedups are paired comparisons, as in §6.

Trials are independent, so the runner fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`; everything a worker needs
is named (scenario name, placer name, seed), making the work items picklable
and the run reproducible regardless of scheduling order.
"""

from __future__ import annotations

import copy
import time
import zlib
from concurrent import futures
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.errors import ExperimentError, ReproError
from repro.experiments.placers import get_placer
from repro.experiments.results import ExperimentResult, TrialRecord
from repro.experiments.scenarios import (
    MODE_SEQUENCE,
    ScenarioInstance,
    get_scenario,
)
from repro.runtime.executor import run_applications
from repro.runtime.sequence import SequentialPlacementRunner

DEFAULT_PLACERS: Tuple[str, ...] = ("greedy", "random", "round-robin")


def trial_seed(base_seed: int, scenario_name: str, trial: int) -> int:
    """Deterministic per-trial seed, independent of the placer.

    Uses CRC32 (stable across processes and Python versions, unlike
    ``hash``) so parallel workers derive identical seeds.
    """
    key = f"{base_seed}:{scenario_name}:{trial}".encode()
    return zlib.crc32(key)


@dataclass(frozen=True)
class ExperimentConfig:
    """A sweep grid: which scenarios, placers, and trials to run.

    Attributes:
        scenarios: registered scenario names to sweep.
        placers: registered placer names to compare.
        trials: trials per (scenario, placer) cell.
        base_seed: root seed the per-trial seeds derive from.
        baseline: placer the speedups are computed against; it is added to
            the grid automatically when missing.
        workers: worker processes; ``1`` runs inline (no pool), ``None``
            sizes the pool to the grid (capped at the CPU count).
        scenario_params: per-scenario builder parameter overrides.
    """

    scenarios: Tuple[str, ...]
    placers: Tuple[str, ...] = DEFAULT_PLACERS
    trials: int = 3
    base_seed: int = 0
    baseline: str = "random"
    workers: Optional[int] = 1
    scenario_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ExperimentError("an experiment needs at least one scenario")
        if self.trials < 1:
            raise ExperimentError("trials must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ExperimentError("workers must be >= 1 (or None for auto)")
        for name in self.placers:
            get_placer(name)  # fail fast on typos
        get_placer(self.baseline)
        for name in self.scenarios:
            get_scenario(name)
        for name, params in self.scenario_params.items():
            get_scenario(name).validate_params(params)

    @property
    def effective_placers(self) -> Tuple[str, ...]:
        """The placer grid with the baseline guaranteed present."""
        if self.baseline in self.placers:
            return self.placers
        return self.placers + (self.baseline,)


def run_trial(
    scenario_name: str,
    placer_name: str,
    trial: int,
    base_seed: int,
    scenario_params: Optional[Mapping[str, object]] = None,
) -> TrialRecord:
    """Run one grid cell and return its record.

    Library failures (:class:`ReproError`) are captured in the record so one
    infeasible trial cannot sink a whole sweep; programming errors propagate.
    """
    seed = trial_seed(base_seed, scenario_name, trial)
    record = TrialRecord(
        scenario=scenario_name, placer=placer_name, trial=trial, seed=seed
    )
    started = time.perf_counter()
    try:
        spec = get_scenario(scenario_name)
        instance = spec.build(seed=seed, **dict(scenario_params or {}))
        record.n_apps = len(instance.apps)
        record.n_vms = len(instance.cluster.machines)
        if instance.mode == MODE_SEQUENCE:
            _run_sequence_trial(instance, placer_name, seed, record)
        else:
            _run_batch_trial(instance, placer_name, seed, record)
    except ReproError as exc:
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
    record.trial_wall_s = time.perf_counter() - started
    return record


def _measurement_plan() -> MeasurementPlan:
    # The paper's comparison charges the same measurement time to every
    # scheme rather than letting campaigns advance the clock mid-trial.
    return MeasurementPlan(advance_clock=False)


def _run_batch_trial(
    instance: ScenarioInstance, placer_name: str, seed: int, record: TrialRecord
) -> None:
    """Place every application at time zero and run them together."""
    placer_spec = get_placer(placer_name)
    placer = placer_spec.factory(seed)
    provider, cluster = instance.provider, instance.cluster

    place_started = time.perf_counter()
    profile: Optional[NetworkProfile] = None
    if placer_spec.needs_profile:
        measurer = NetworkMeasurer(provider, plan=_measurement_plan())
        profile = measurer.measure(
            cluster.machine_names(), background=instance.background
        )
        record.measurement_overhead_s = profile.measurement_duration_s

    placements = {}
    state = cluster
    for app in instance.apps:
        placement = placer.place(app, state, profile)
        placements[app.name] = placement
        state = state.with_usage(placement.cpu_usage(app))
    record.placement_wall_s = time.perf_counter() - place_started

    runs = run_applications(
        provider,
        placements=placements,
        apps=instance.apps,
        start_times={app.name: 0.0 for app in instance.apps},
        background=instance.background,
    )
    _fill_run_metrics(record, runs.values())


def _run_sequence_trial(
    instance: ScenarioInstance, placer_name: str, seed: int, record: TrialRecord
) -> None:
    """Replay the §2.4 arrival sequence with the placer under test."""
    placer_spec = get_placer(placer_name)
    placer = placer_spec.factory(seed)
    runner = SequentialPlacementRunner(
        instance.provider,
        instance.cluster,
        placer,
        measurement=_measurement_plan(),
        measure_network=placer_spec.needs_profile,
        background=instance.background,
    )
    result = runner.run(instance.apps)
    record.placement_wall_s = result.placement_wall_s
    record.measurement_overhead_s = sum(
        profile.measurement_duration_s
        for profile in result.profiles.values()
        if profile is not None
    )
    _fill_run_metrics(record, result.runs.values())


def _fill_run_metrics(record: TrialRecord, runs) -> None:
    runs = list(runs)
    record.per_app_duration_s = {run.app_name: run.duration for run in runs}
    record.total_running_time_s = sum(run.duration for run in runs)
    record.makespan_s = max(run.completion_time for run in runs) - min(
        run.start_time for run in runs
    )
    record.network_bytes = sum(run.network_bytes for run in runs)
    record.colocated_bytes = sum(run.colocated_bytes for run in runs)


class ExperimentRunner:
    """Executes a sweep grid, in parallel when asked to."""

    def __init__(self, config: ExperimentConfig):
        self.config = config

    def cells(self) -> List[Tuple[str, str, int]]:
        """The grid as ``(scenario, placer, trial)`` work items."""
        return [
            (scenario, placer, trial)
            for scenario in self.config.scenarios
            for placer in self.config.effective_placers
            for trial in range(self.config.trials)
        ]

    def _cell_key(self, scenario: str, placer: str, trial: int) -> Tuple:
        """Memoization key: everything that determines a trial's outcome.

        Two cells with the same ``(scenario, params, placer, trial, seed)``
        run the identical simulation, so repeated grid cells — e.g. a
        baseline listed twice, or duplicated scenario entries — are
        simulated once per run and their records reused (the first step of
        the ROADMAP's result caching).  The trial index stays in the key so
        distinct trials can never merge through a CRC32 seed collision.
        """
        params = self.config.scenario_params.get(scenario) or {}
        params_key = tuple(sorted((str(k), repr(v)) for k, v in params.items()))
        seed = trial_seed(self.config.base_seed, scenario, trial)
        return (scenario, params_key, placer, trial, seed)

    def run(self) -> ExperimentResult:
        """Run every cell and return the aggregated result."""
        config = self.config
        cells = self.cells()
        unique: Dict[Tuple, Tuple[str, str, int]] = {}
        for cell in cells:
            unique.setdefault(self._cell_key(*cell), cell)
        work = list(unique.items())

        workers = config.workers
        if workers is None:
            import os

            workers = max(1, min(len(work), os.cpu_count() or 1))

        if workers == 1:
            memo = {
                key: run_trial(
                    scenario, placer, trial, config.base_seed,
                    config.scenario_params.get(scenario),
                )
                for key, (scenario, placer, trial) in work
            }
        else:
            memo = self._run_parallel(work, workers)

        records: List[TrialRecord] = []
        seen: set = set()
        for cell in cells:
            key = self._cell_key(*cell)
            record = memo[key]
            if key in seen:
                # A reused record: hand out an independent copy.
                record = copy.deepcopy(record)
            seen.add(key)
            records.append(record)

        records.sort(key=lambda rec: (rec.scenario, rec.placer, rec.trial))
        return ExperimentResult(
            scenarios=list(config.scenarios),
            placers=list(config.effective_placers),
            trials=config.trials,
            base_seed=config.base_seed,
            baseline=config.baseline,
            records=records,
        )

    def _run_parallel(
        self,
        work: Sequence[Tuple[Tuple, Tuple[str, str, int]]],
        workers: int,
    ) -> Dict[Tuple, TrialRecord]:
        config = self.config
        memo: Dict[Tuple, TrialRecord] = {}
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            pending: Dict[futures.Future, Tuple] = {
                pool.submit(
                    run_trial, scenario, placer, trial, config.base_seed,
                    config.scenario_params.get(scenario),
                ): key
                for key, (scenario, placer, trial) in work
            }
            for future in futures.as_completed(pending):
                memo[pending[future]] = future.result()
        return memo
