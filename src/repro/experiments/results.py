"""Structured results of experiment runs (the §6 comparison data).

A trial is one (scenario, placer, trial-index) cell of the sweep grid; its
:class:`TrialRecord` carries the timings the paper reports: per-application
running times, the makespan, the measurement campaign overhead, and the wall
clock the placer itself consumed.  :class:`ExperimentResult` aggregates a
full grid, computes the Figure-9-style speedup-over-baseline summaries via
:mod:`repro.runtime.metrics`, and serialises everything to JSON.
"""

from __future__ import annotations

import copy
import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.runtime.metrics import relative_speedup, speedup_summary

#: Record fields measuring *host* wall clock — nondeterministic across runs,
#: machines, and backends, unlike the modeled (simulated) quantities.
HOST_TIMING_FIELDS = ("trial_wall_s", "placement_wall_s")

#: solver_stats keys that depend on the solver *run* rather than the
#: formulation: wall clock, and anything that varies when a time limit
#: binds earlier on one host than another (node counts, residual gap,
#: termination status, fallback).  Stripped from the canonical form.
SOLVER_RUN_STAT_KEYS = (
    "solve_wall_s", "mip_nodes", "mip_gap", "status", "fallback_used",
)


@dataclass
class TrialRecord:
    """Outcome of running one scenario trial under one placer.

    Attributes:
        scenario: registered scenario name.
        placer: placer name from the placer registry.
        trial: trial index within the sweep.
        seed: the derived per-trial seed (identical across placers so every
            placer sees the same ground-truth network and applications).
        status: ``"ok"`` or ``"error"``.
        error: the failure message when ``status == "error"``.
        n_apps, n_vms: scenario size.
        makespan_s: completion time of the last application transfer,
            relative to the earliest application start.
        total_running_time_s: sum of per-application running times (the
            §6.3 comparison metric).
        per_app_duration_s: running time of each application.
        measurement_overhead_s: wall-clock cost of the measurement
            campaign(s) the placer required (0 for network-oblivious ones).
        placement_wall_s: host wall-clock spent inside placement + setup.
        trial_wall_s: host wall-clock for the whole trial.
        network_bytes: bytes that crossed the provider network.
        colocated_bytes: bytes that stayed on a VM thanks to colocation.
        solver_stats: per-application exact-solver statistics (MIP gap, node
            count, warm-start acceptance, formulation sizes) for placers
            backed by a MILP; ``None`` for everything else.
    """

    scenario: str
    placer: str
    trial: int
    seed: int
    status: str = "ok"
    error: Optional[str] = None
    n_apps: int = 0
    n_vms: int = 0
    makespan_s: float = 0.0
    total_running_time_s: float = 0.0
    per_app_duration_s: Dict[str, float] = field(default_factory=dict)
    measurement_overhead_s: float = 0.0
    placement_wall_s: float = 0.0
    trial_wall_s: float = 0.0
    network_bytes: float = 0.0
    colocated_bytes: float = 0.0
    solver_stats: Optional[Dict[str, dict]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ExperimentResult:
    """A completed sweep over scenario x placer x trial."""

    scenarios: List[str]
    placers: List[str]
    trials: int
    base_seed: int
    baseline: str
    records: List[TrialRecord] = field(default_factory=list)

    # ------------------------------------------------------------- accessors
    def record(self, scenario: str, placer: str, trial: int) -> TrialRecord:
        """Look up one grid cell."""
        for rec in self.records:
            if rec.scenario == scenario and rec.placer == placer and rec.trial == trial:
                return rec
        raise ExperimentError(
            f"no record for scenario={scenario!r} placer={placer!r} trial={trial}"
        )

    def ok_records(self, scenario: str, placer: str) -> List[TrialRecord]:
        """Successful trials of one (scenario, placer) cell, by trial index."""
        return sorted(
            (
                rec
                for rec in self.records
                if rec.scenario == scenario and rec.placer == placer and rec.ok
            ),
            key=lambda rec: rec.trial,
        )

    def dropped_trials(self) -> List[dict]:
        """Every errored grid cell with its captured exception string.

        The keep-going runner turns raising trials into ``status ==
        "error"`` records instead of aborting the sweep; this surfaces them
        in one place (and at the top level of the result JSON) so a sweep
        that silently lost cells is impossible.
        """
        return [
            {
                "scenario": rec.scenario,
                "placer": rec.placer,
                "trial": rec.trial,
                "error": rec.error or "",
            }
            for rec in self.records
            if not rec.ok
        ]

    # --------------------------------------------------------------- summary
    def speedups_vs_baseline(self, scenario: str, placer: str) -> List[float]:
        """Per-trial relative speedup of ``placer`` over the baseline placer.

        Positive values mean ``placer`` finished faster than the baseline on
        the same trial (same seed, hence the same network and applications).
        Trials whose speedup is undefined (a zero-duration baseline against a
        nonzero competitor yields ``-inf``) are dropped so summaries and
        their JSON serialisation stay finite; :meth:`summary` surfaces how
        many were dropped per cell.
        """
        return self._paired_speedups(scenario, placer)[0]

    def _paired_speedups(self, scenario: str, placer: str) -> Tuple[List[float], int]:
        """Finite per-trial speedups plus the count of ok trials dropped.

        A trial is dropped when its baseline pair is missing (the baseline
        errored on that seed) or when the speedup is non-finite.
        """
        if self.baseline not in self.placers:
            raise ExperimentError(
                f"baseline placer {self.baseline!r} is not part of the sweep"
            )
        base = {rec.trial: rec for rec in self.ok_records(scenario, self.baseline)}
        speedups: List[float] = []
        dropped = 0
        for rec in self.ok_records(scenario, placer):
            ref = base.get(rec.trial)
            if ref is None:
                dropped += 1
                continue
            speedup = relative_speedup(
                ref.total_running_time_s, rec.total_running_time_s
            )
            if math.isfinite(speedup):
                speedups.append(speedup)
            else:
                dropped += 1
        return speedups, dropped

    def summary(self) -> dict:
        """Per-(scenario, placer) aggregate timings and speedup summaries."""
        out: dict = {}
        for scenario in self.scenarios:
            per_placer: dict = {}
            for placer in self.placers:
                records = self.ok_records(scenario, placer)
                errors = [
                    rec
                    for rec in self.records
                    if rec.scenario == scenario and rec.placer == placer and not rec.ok
                ]
                cell: dict = {
                    "trials_ok": len(records),
                    "trials_failed": len(errors),
                }
                if records:
                    cell.update(
                        {
                            "mean_total_running_time_s": _mean(
                                [r.total_running_time_s for r in records]
                            ),
                            "mean_makespan_s": _mean([r.makespan_s for r in records]),
                            "mean_measurement_overhead_s": _mean(
                                [r.measurement_overhead_s for r in records]
                            ),
                            "mean_placement_wall_s": _mean(
                                [r.placement_wall_s for r in records]
                            ),
                        }
                    )
                if placer != self.baseline:
                    speedups, dropped = self._paired_speedups(scenario, placer)
                    # A dropped trial silently thins the speedup sample;
                    # surface the count so thinner summaries are visible.
                    cell["dropped_trials"] = dropped
                    if speedups:
                        cell["speedup_vs_" + self.baseline] = speedup_summary(
                            speedups
                        ).as_percentages()
                per_placer[placer] = cell
            out[scenario] = per_placer
        return out

    # ----------------------------------------------------------------- (de)ser
    def to_json_dict(self) -> dict:
        """The full result (grid metadata, records, summary) as plain JSON."""
        return {
            "schema": "repro.experiments/result/v1",
            "scenarios": list(self.scenarios),
            "placers": list(self.placers),
            "trials": self.trials,
            "base_seed": self.base_seed,
            "baseline": self.baseline,
            "records": [asdict(rec) for rec in self.records],
            "dropped_trials": self.dropped_trials(),
            "summary": self.summary(),
        }

    def canonical_json_dict(self) -> dict:
        """:meth:`to_json_dict` with host wall-clock fields zeroed.

        Modeled quantities (running times, makespans, measurement overhead,
        bytes) are deterministic functions of the config, but host timings
        vary run to run.  Backend-equivalence checks compare this form: two
        backends agree iff their canonical dicts are bit-identical.
        """
        clone = copy.deepcopy(self)
        for rec in clone.records:
            for field_name in HOST_TIMING_FIELDS:
                setattr(rec, field_name, 0.0)
            if rec.solver_stats:
                # Formulation sizes and warm-start facts are modeled; keys
                # describing the solver run itself are host-dependent when
                # the time limit binds.  (A binding limit can still change
                # the returned *placement* — per-cell budgets should be
                # generous enough that solves finish when bit-identical
                # cross-backend results matter.)
                for stats in rec.solver_stats.values():
                    for key in SOLVER_RUN_STAT_KEYS:
                        stats.pop(key, None)
        return clone.to_json_dict()

    def save(self, path) -> Path:
        """Write the result to ``path`` as indented JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True))
        return target

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        try:
            records = [TrialRecord(**rec) for rec in data["records"]]
            return cls(
                scenarios=list(data["scenarios"]),
                placers=list(data["placers"]),
                trials=int(data["trials"]),
                base_seed=int(data["base_seed"]),
                baseline=str(data["baseline"]),
                records=records,
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed experiment result: {exc}") from exc


def _mean(values: Sequence[float]) -> float:
    return float(sum(values) / len(values)) if values else 0.0
