"""Placer registry for the evaluation sweep grid (paper §6).

Maps the placer names used on the CLI and in result files to factories.
Network-aware placers (``needs_profile=True``) get a measurement campaign
charged to their trial; network-oblivious baselines skip it, exactly as the
paper's comparison does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.placement.base import Placer
from repro.core.placement.baselines import (
    MinimumMachinesPlacer,
    RandomPlacer,
    RoundRobinPlacer,
)
from repro.core.placement.greedy import GreedyPlacer
from repro.core.placement.ilp import BruteForcePlacer, OptimalPlacer
from repro.errors import ExperimentError

#: Factory signature: ``factory(seed) -> Placer`` (seed ignored by
#: deterministic placers).
PlacerFactory = Callable[[int], Placer]


@dataclass(frozen=True)
class PlacerSpec:
    """A named placement algorithm available to the experiment runner."""

    name: str
    description: str
    factory: PlacerFactory
    needs_profile: bool = False


_PLACERS: Dict[str, PlacerSpec] = {}


def _register(spec: PlacerSpec) -> PlacerSpec:
    if spec.name in _PLACERS:
        raise ExperimentError(f"placer {spec.name!r} is already registered")
    _PLACERS[spec.name] = spec
    return spec


_register(
    PlacerSpec(
        name="greedy",
        description="Choreo's greedy network-aware placement (Algorithm 1, §5).",
        factory=lambda seed: GreedyPlacer(model="hose"),
        needs_profile=True,
    )
)
_register(
    PlacerSpec(
        name="ilp",
        description="The Appendix's linearised optimal placement (HiGHS MILP).",
        factory=lambda seed: OptimalPlacer(model="hose", time_limit_s=30.0),
        needs_profile=True,
    )
)
_register(
    PlacerSpec(
        name="brute-force",
        description="Exhaustive optimal placement; tiny instances only.",
        factory=lambda seed: BruteForcePlacer(model="hose"),
        needs_profile=True,
    )
)
_register(
    PlacerSpec(
        name="random",
        description="Tasks on random CPU-feasible VMs (the paper's baseline).",
        factory=lambda seed: RandomPlacer(seed=seed),
    )
)
_register(
    PlacerSpec(
        name="round-robin",
        description="Tasks round-robin across VMs, skipping full ones.",
        factory=lambda seed: RoundRobinPlacer(),
    )
)
_register(
    PlacerSpec(
        name="min-machines",
        description="First-fit packing onto as few VMs as possible.",
        factory=lambda seed: MinimumMachinesPlacer(),
    )
)


def get_placer(name: str) -> PlacerSpec:
    """Look up a placer spec by name."""
    try:
        return _PLACERS[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown placer {name!r}; registered: {placer_names()}"
        ) from exc


def placer_names() -> List[str]:
    """All registered placer names, sorted."""
    return sorted(_PLACERS)
