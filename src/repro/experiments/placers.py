"""Placer registry for the evaluation sweep grid (paper §6).

Maps the placer names used on the CLI and in result files to factories.
Network-aware placers (``needs_profile=True``) get a measurement campaign
charged to their trial; network-oblivious baselines skip it, exactly as the
paper's comparison does.

Factories take ``(seed, **params)``: ``params`` are per-cell overrides from
:attr:`~repro.experiments.runner.ExperimentConfig.placer_params` (e.g. the
ILP's solver budget), validated by the factory so typos fail fast.  Aliases
let the ROADMAP/bench names address registry entries (``choreo-optimal`` is
``ilp``, ``choreo-greedy`` is ``greedy``); configs canonicalise them so
result files and cache keys always carry the registry name.

:func:`resolve_placer` and :func:`list_placers` are the public facade —
also re-exported from :mod:`repro` — and the *only* place alias
canonicalisation lives: CLIs and configs hand any accepted spelling to
``resolve_placer`` and read the canonical name off the returned spec
instead of keeping their own alias tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.placement.base import Placer
from repro.core.placement.baselines import (
    MinimumMachinesPlacer,
    RandomPlacer,
    RoundRobinPlacer,
)
from repro.core.placement.greedy import GreedyPlacer
from repro.core.placement.ilp import BruteForcePlacer, OptimalPlacer
from repro.errors import ExperimentError

__all__ = [
    "PLACER_ALIASES",
    "PlacerSpec",
    "canonical_placer_name",
    "get_placer",
    "list_placers",
    "placer_names",
    "resolve_placer",
]

#: Factory signature: ``factory(seed, **params) -> Placer`` (seed ignored by
#: deterministic placers; unknown params raise :class:`ExperimentError`).
PlacerFactory = Callable[..., Placer]

#: Alternate spellings accepted anywhere a placer name is taken.  The values
#: are registry names; the keys are the ``Placer.name`` attributes and other
#: historical spellings, so the ROADMAP/bench vocabulary resolves too.
PLACER_ALIASES: Dict[str, str] = {
    "choreo-optimal": "ilp",
    "optimal": "ilp",
    "choreo-greedy": "greedy",
    "brute": "brute-force",
}


@dataclass(frozen=True)
class PlacerSpec:
    """A named placement algorithm available to the experiment runner."""

    name: str
    description: str
    factory: PlacerFactory
    needs_profile: bool = False

    def create(self, seed: int, params: Optional[Mapping[str, object]] = None) -> Placer:
        """Instantiate the placer with per-cell parameter overrides."""
        return self.factory(seed, **dict(params or {}))


_PLACERS: Dict[str, PlacerSpec] = {}


def _register(spec: PlacerSpec) -> PlacerSpec:
    if spec.name in _PLACERS:
        raise ExperimentError(f"placer {spec.name!r} is already registered")
    _PLACERS[spec.name] = spec
    return spec


def _reject_params(name: str, params: Mapping[str, object]) -> None:
    if params:
        raise ExperimentError(
            f"placer {name!r} takes no parameters; got {sorted(params)}"
        )


def _pick(params: Mapping[str, object], allowed: Dict[str, object]) -> Dict[str, object]:
    unknown = set(params) - set(allowed)
    if unknown:
        raise ExperimentError(
            f"unknown placer parameter(s) {sorted(unknown)}; "
            f"available: {sorted(allowed)}"
        )
    return {**allowed, **params}


def _to_bool(key: str, value: object) -> bool:
    """Strict boolean coercion: ``bool("false")`` is True, so strings are
    matched explicitly and anything ambiguous raises instead of silently
    flipping an ablation flag on."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
    raise ExperimentError(
        f"placer parameter {key!r} expects a boolean, got {value!r}"
    )


def _greedy_factory(seed: int, **params) -> Placer:
    opts = _pick(
        params,
        {"model": "hose", "cluster_threshold": None, "n_clusters": None},
    )
    cluster_threshold = opts["cluster_threshold"]
    n_clusters = opts["n_clusters"]
    return GreedyPlacer(
        model=str(opts["model"]),
        cluster_threshold=(
            None if cluster_threshold is None else int(cluster_threshold)  # type: ignore[arg-type]
        ),
        n_clusters=None if n_clusters is None else int(n_clusters),  # type: ignore[arg-type]
    )


def _ilp_factory(seed: int, **params) -> Placer:
    """The sweep-grade ILP: warm-started, pruned, budgeted per cell.

    ``candidate_k`` accepts an int, ``None``/``"all"`` (keep every machine,
    exact), or ``"auto"`` (pick k from the instance size, the ROADMAP's
    sweeps-past-20-tasks tuner).
    """
    opts = _pick(
        params,
        {
            "model": "hose",
            "time_limit_s": 10.0,
            "mip_rel_gap": 1e-4,
            "formulation": "sparse",
            "warm_start": True,
            "symmetry_breaking": True,
            "candidate_k": None,
        },
    )
    candidate_k = opts["candidate_k"]
    if candidate_k in (None, "all"):
        candidate_k = None
    elif candidate_k != "auto":
        candidate_k = int(candidate_k)  # type: ignore[arg-type]
    return OptimalPlacer(
        model=str(opts["model"]),
        time_limit_s=float(opts["time_limit_s"]),  # type: ignore[arg-type]
        mip_rel_gap=float(opts["mip_rel_gap"]),  # type: ignore[arg-type]
        formulation=str(opts["formulation"]),
        warm_start=_to_bool("warm_start", opts["warm_start"]),
        symmetry_breaking=_to_bool("symmetry_breaking", opts["symmetry_breaking"]),
        candidate_k=candidate_k,
    )


def _brute_factory(seed: int, **params) -> Placer:
    opts = _pick(params, {"model": "hose"})
    return BruteForcePlacer(model=str(opts["model"]))


def _random_factory(seed: int, **params) -> Placer:
    _reject_params("random", params)
    return RandomPlacer(seed=seed)


def _round_robin_factory(seed: int, **params) -> Placer:
    _reject_params("round-robin", params)
    return RoundRobinPlacer()


def _min_machines_factory(seed: int, **params) -> Placer:
    _reject_params("min-machines", params)
    return MinimumMachinesPlacer()


_register(
    PlacerSpec(
        name="greedy",
        description="Choreo's greedy network-aware placement (Algorithm 1, §5).",
        factory=_greedy_factory,
        needs_profile=True,
    )
)
_register(
    PlacerSpec(
        name="ilp",
        description=(
            "The Appendix's linearised optimal placement (HiGHS MILP), "
            "warm-started from greedy with pruned product variables."
        ),
        factory=_ilp_factory,
        needs_profile=True,
    )
)
_register(
    PlacerSpec(
        name="brute-force",
        description="Exhaustive optimal placement; tiny instances only.",
        factory=_brute_factory,
        needs_profile=True,
    )
)
_register(
    PlacerSpec(
        name="random",
        description="Tasks on random CPU-feasible VMs (the paper's baseline).",
        factory=_random_factory,
    )
)
_register(
    PlacerSpec(
        name="round-robin",
        description="Tasks round-robin across VMs, skipping full ones.",
        factory=_round_robin_factory,
    )
)
_register(
    PlacerSpec(
        name="min-machines",
        description="First-fit packing onto as few VMs as possible.",
        factory=_min_machines_factory,
    )
)


def resolve_placer(name: str) -> PlacerSpec:
    """Resolve any accepted placer spelling to its registry spec.

    This is the single place alias canonicalisation happens: CLIs,
    configs, and the service all pass user-facing names (``greedy``,
    ``choreo-greedy``, ``choreo-optimal``, ...) here and use
    ``resolve_placer(name).name`` as the canonical spelling for result
    files and cache keys.

    Raises:
        ExperimentError: for unknown names, listing the registered names
            and accepted aliases.
    """
    try:
        return _PLACERS[PLACER_ALIASES.get(name, name)]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown placer {name!r}; registered: {placer_names()} "
            f"(aliases: {sorted(PLACER_ALIASES)})"
        ) from exc


def list_placers() -> List[PlacerSpec]:
    """Every registered placer spec, sorted by canonical name."""
    return [_PLACERS[name] for name in sorted(_PLACERS)]


def canonical_placer_name(name: str) -> str:
    """Resolve aliases to the registry name (unknown names pass through).

    Prefer ``resolve_placer(name).name``, which validates the name too;
    this helper survives for callers that must tolerate unknown names.
    """
    return PLACER_ALIASES.get(name, name)


def get_placer(name: str) -> PlacerSpec:
    """Look up a placer spec by name (aliases accepted).

    Equivalent to :func:`resolve_placer`; kept as the historical spelling.
    """
    return resolve_placer(name)


def placer_names() -> List[str]:
    """All registered placer names, sorted (aliases excluded)."""
    return sorted(_PLACERS)
