"""Rackspace-like synthetic provider (Figures 2b, 6b, 7b).

The paper finds that every path between 8-GByte Rackspace instances runs at
almost exactly 300 Mbit/s — the advertised internal rate — with essentially
no spatial or temporal variation, and that the limit is enforced at the
source (hose model).  Packet trains need long bursts (2000 packets) before
their error drops, which we model as a deep token bucket in front of the
300 Mbit/s limiter: short bursts ride the physical rate and over-estimate
the sustainable throughput.

Rackspace's traceroutes only ever showed 1- or 4-hop paths, which the paper
suspects is the provider hiding parts of its topology; the provider here
reports hop counts through the same obscuring map.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.instances import RACKSPACE_8GB
from repro.cloud.provider import CloudProvider, ProviderParams
from repro.cloud.registry import register_provider
from repro.net.topology import TreeSpec
from repro.units import GBITPS, MBITPS

#: Observed-hop-count mapping: everything beyond the rack is reported as a
#: 4-hop path, and same-rack paths are reported as 1 hop (§4.2).
RACKSPACE_VISIBLE_HOPS = {1: 1, 2: 1, 4: 4, 6: 4, 8: 4}


def rackspace_hose_sampler(rng: np.random.Generator) -> float:
    """Rackspace egress caps: 300 Mbit/s with negligible spread."""
    return float(rng.normal(300 * MBITPS, 1.5 * MBITPS))


def rackspace_params() -> ProviderParams:
    """Parameters of the Rackspace-like provider."""
    return ProviderParams(
        name="rackspace",
        instance_type=RACKSPACE_8GB,
        hose_sampler=rackspace_hose_sampler,
        colocation_probability=0.0,
        intra_host_rate_bps=1 * GBITPS,
        temporal_sigma=0.002,
        temporal_tau_s=600.0,
        measurement_noise=0.0015,
        train_jitter_std_s=100e-6,
        train_limiter_depth_bytes=300_000.0,
        train_rate_noise=0.02,
        loss_rate=0.0,
        traceroute_visible_hops=RACKSPACE_VISIBLE_HOPS,
        tree_spec=TreeSpec(
            hosts_per_rack=4,
            racks_per_pod=2,
            pods=3,
            num_cores=2,
            host_link_bps=1 * GBITPS,
            tor_agg_link_bps=10 * GBITPS,
            agg_core_link_bps=10 * GBITPS,
            intra_host_bps=1 * GBITPS,
        ),
    )


class RackspaceProvider(CloudProvider):
    """The Rackspace-like provider with the uniform 300 Mbit/s network."""

    def __init__(self, seed: int = 0, params: Optional[ProviderParams] = None):
        super().__init__(params if params is not None else rackspace_params(), seed=seed)


register_provider("rackspace", RackspaceProvider)
