"""Hose-model egress rate limiting.

The paper finds (§4.3, §4.4) that both EC2 and Rackspace rate-limit VMs with
a *hose model* [Duffield et al., SIGCOMM 1999]: the sum of all connections
leaving a VM is capped at a per-VM egress rate, and connections from
different sources do not interfere with each other in the core.

The hose is modelled as a virtual link that every flow leaving a node
traverses before reaching the physical first hop.  Feeding these virtual
links to the max-min allocator reproduces the paper's observations exactly:
concurrent connections out of the same source always share (and halve) the
rate, while connections between four distinct endpoints never interfere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import SimulationError
from repro.net.links import hose_link_id


@dataclass
class HoseModel:
    """Per-node egress rate caps.

    Attributes:
        egress_bps: mapping of node name to egress cap in bits/second.
        default_bps: cap applied to nodes not listed in ``egress_bps``;
            ``None`` means such nodes are not hose-limited.
        limit_intra_host: whether intra-host (loopback) traffic counts
            against the hose.  Public clouds enforce the hose at the virtual
            switch, which colocated-VM traffic may bypass; the default is
            therefore ``False``.
    """

    egress_bps: Dict[str, float] = field(default_factory=dict)
    default_bps: Optional[float] = None
    limit_intra_host: bool = False

    def rate_for(self, node: str) -> Optional[float]:
        """The egress cap for ``node``, or ``None`` if it is unlimited."""
        if node in self.egress_bps:
            return self.egress_bps[node]
        return self.default_bps

    def is_limited(self, node: str) -> bool:
        """True if the node has an egress cap."""
        return self.rate_for(node) is not None

    def link_capacities(self, nodes: Iterable[str]) -> Dict[str, float]:
        """Virtual hose-link capacities for the given nodes.

        Only limited nodes produce entries.  The returned map can be merged
        with the physical link capacities before max-min allocation.
        """
        capacities: Dict[str, float] = {}
        for node in nodes:
            rate = self.rate_for(node)
            if rate is None:
                continue
            if rate <= 0:
                raise SimulationError(
                    f"hose rate for {node!r} must be positive, got {rate!r}"
                )
            capacities[hose_link_id(node)] = rate
        return capacities

    def links_for_flow(self, src: str, dst: str) -> List[str]:
        """Virtual link ids a flow from ``src`` to ``dst`` must traverse."""
        if src == dst and not self.limit_intra_host:
            return []
        if self.is_limited(src):
            return [hose_link_id(src)]
        return []

    def set_rate(self, node: str, rate_bps: float) -> None:
        """Set (or update) the egress cap of a single node."""
        if rate_bps <= 0:
            raise SimulationError("hose rate must be positive")
        self.egress_bps[node] = rate_bps

    @classmethod
    def uniform(cls, nodes: Iterable[str], rate_bps: float) -> "HoseModel":
        """A hose model capping every listed node at the same rate."""
        return cls(egress_bps={node: rate_bps for node in nodes})
