"""Task placement algorithms (paper §2.3, §5, §6, Appendix).

* :mod:`repro.core.placement.base` — the :class:`Placer` interface,
  machines, cluster state, and placement validation.
* :mod:`repro.core.placement.greedy` — Algorithm 1, the greedy
  network-aware placement Choreo uses in practice.
* :mod:`repro.core.placement.ilp` — the Appendix's linearised optimisation
  solved with HiGHS (``scipy.optimize.milp``) plus a brute-force optimal
  placer for small instances.
* :mod:`repro.core.placement.baselines` — the Random, Round-robin, and
  Minimum-Machines comparison schemes of §6.
"""

from repro.core.placement.base import (
    Machine,
    ClusterState,
    Placement,
    Placer,
    validate_placement,
)
from repro.core.placement.greedy import GreedyPlacer
from repro.core.placement.ilp import OptimalPlacer, BruteForcePlacer
from repro.core.placement.baselines import (
    RandomPlacer,
    RoundRobinPlacer,
    MinimumMachinesPlacer,
)

__all__ = [
    "Machine",
    "ClusterState",
    "Placement",
    "Placer",
    "validate_placement",
    "GreedyPlacer",
    "OptimalPlacer",
    "BruteForcePlacer",
    "RandomPlacer",
    "RoundRobinPlacer",
    "MinimumMachinesPlacer",
]
