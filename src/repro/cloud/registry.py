"""Named provider registry.

The evaluation subsystem (:mod:`repro.experiments`) constructs providers by
name — "ec2", "ec2-legacy", "rackspace" — so that scenarios can be declared
as data and trials can be re-created in worker processes.  Provider modules
register a factory at import time; registration is idempotent so that
importing :mod:`repro.cloud.ec2` and :mod:`repro.cloud.ec2_legacy` side by
side (or re-importing either) never produces duplicate entries, while two
*different* factories competing for one name raise :class:`CloudError`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from repro.errors import CloudError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cloud.provider import CloudProvider

#: Factory signature: ``factory(seed=..., **kwargs) -> CloudProvider``.
ProviderFactory = Callable[..., "CloudProvider"]

_REGISTRY: Dict[str, ProviderFactory] = {}


def register_provider(name: str, factory: ProviderFactory) -> ProviderFactory:
    """Register a provider factory under ``name``.

    Re-registering the *same* factory is a no-op (module re-import safety);
    registering a different factory under an existing name raises
    :class:`CloudError` so silent shadowing cannot happen.
    """
    if not name:
        raise CloudError("provider name must be non-empty")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise CloudError(
            f"provider {name!r} is already registered by a different factory"
        )
    _REGISTRY[name] = factory
    return factory


def provider_names() -> List[str]:
    """All registered provider names, sorted."""
    return sorted(_REGISTRY)


def make_provider(name: str, seed: int = 0, **kwargs) -> "CloudProvider":
    """Construct a registered provider by name.

    Raises:
        CloudError: if no provider is registered under ``name``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise CloudError(
            f"unknown provider {name!r}; registered: {provider_names()}"
        ) from exc
    return factory(seed=seed, **kwargs)
