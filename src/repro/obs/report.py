"""Trace analysis: turn a spans JSONL file into a profile.

The profile aggregates spans by *call path* — the chain of span names
from the root to the span, reconstructed from ``span``/``parent`` ids —
and reports, per path:

* ``count`` — how many spans ran at that path;
* ``cum``   — cumulative wall time (sum of span durations);
* ``self``  — cumulative time minus the time spent in direct children,
  i.e. the time the span's own code consumed.

``self`` sums to the total traced time across the tree, so the profile
answers "where did the seconds go" without double counting.  Durations
come from per-process monotonic clocks; spans from different processes
(sweep workers) aggregate under the same paths but never nest across
process boundaries.

:func:`render_report` prints the tree plus per-span-kind duration
histograms; :func:`render_diff` compares two profiles side by side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "TraceError",
    "Profile",
    "load_events",
    "build_profile",
    "render_report",
    "render_diff",
]

#: Log-scale bucket bounds for the duration histograms (seconds).
_HISTO_BOUNDS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
)


class TraceError(ReproError):
    """A trace file is missing or malformed."""


@dataclass
class Profile:
    """Aggregated view of one trace file."""

    #: path (tuple of span names, root first) -> [count, cum_s, self_s]
    paths: Dict[Tuple[str, ...], List[float]] = field(default_factory=dict)
    #: span name -> list of durations (for histograms)
    durations: Dict[str, List[float]] = field(default_factory=dict)
    #: point-event name -> count
    points: Dict[str, int] = field(default_factory=dict)
    n_spans: int = 0
    n_processes: int = 0

    def by_name(self) -> Dict[str, Tuple[int, float, float]]:
        """Collapse paths to (count, cum, self) per span name."""
        out: Dict[str, List[float]] = {}
        for path, (count, cum, self_s) in self.paths.items():
            acc = out.setdefault(path[-1], [0, 0.0, 0.0])
            acc[0] += count
            acc[1] += cum
            acc[2] += self_s
        return {
            name: (int(c), cum, self_s)
            for name, (c, cum, self_s) in out.items()
        }

    def total_self_s(self) -> float:
        return sum(entry[2] for entry in self.paths.values())


def load_events(path) -> List[dict]:
    """Parse a JSONL trace file, skipping blank lines."""
    source = Path(path)
    if not source.exists():
        raise TraceError(f"trace file not found: {source}")
    events: List[dict] = []
    for lineno, line in enumerate(source.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{source}:{lineno}: malformed JSON: {exc}") from exc
        if isinstance(event, dict):
            events.append(event)
    return events


def build_profile(events: Sequence[dict]) -> Profile:
    """Aggregate span events into a :class:`Profile`.

    Spans whose parent id never completed (a crashed process) are
    treated as roots; children's time is only subtracted from parents
    that are present, so a truncated trace still sums consistently.
    """
    spans = [ev for ev in events if ev.get("ev") == "span"]
    profile = Profile()
    profile.n_spans = len(spans)
    profile.n_processes = len({ev.get("pid") for ev in spans}) if spans else 0

    by_id: Dict[str, dict] = {}
    for ev in spans:
        span_id = ev.get("span")
        if isinstance(span_id, str):
            by_id[span_id] = ev

    # Sum of direct-children durations per parent id.
    child_time: Dict[str, float] = {}
    for ev in spans:
        parent = ev.get("parent")
        if isinstance(parent, str) and parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + float(
                ev.get("dur", 0.0)
            )

    path_cache: Dict[str, Tuple[str, ...]] = {}

    def path_of(ev: dict) -> Tuple[str, ...]:
        span_id = ev.get("span")
        if isinstance(span_id, str) and span_id in path_cache:
            return path_cache[span_id]
        chain: List[str] = []
        seen = set()
        node: Optional[dict] = ev
        while node is not None:
            chain.append(str(node.get("name", "?")))
            parent = node.get("parent")
            if not isinstance(parent, str) or parent in seen:
                break
            seen.add(parent)
            node = by_id.get(parent)
        path = tuple(reversed(chain))
        if isinstance(span_id, str):
            path_cache[span_id] = path
        return path

    for ev in spans:
        dur = float(ev.get("dur", 0.0))
        span_id = ev.get("span")
        self_s = dur - child_time.get(span_id, 0.0) if isinstance(span_id, str) else dur
        path = path_of(ev)
        acc = profile.paths.setdefault(path, [0, 0.0, 0.0])
        acc[0] += 1
        acc[1] += dur
        acc[2] += self_s
        profile.durations.setdefault(path[-1], []).append(dur)

    for ev in events:
        if ev.get("ev") == "point":
            name = str(ev.get("name", "?"))
            profile.points[name] = profile.points.get(name, 0) + 1
    return profile


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:8.1f}s"
    if seconds >= 0.1:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.3f}ms"


def render_report(profile: Profile, top: int = 40) -> str:
    """The human-readable profile: tree, histograms, point events."""
    lines: List[str] = []
    total = profile.total_self_s()
    lines.append(
        f"trace: {profile.n_spans} span(s) across "
        f"{profile.n_processes} process(es), "
        f"total traced time {total:.3f}s"
    )
    lines.append("")
    lines.append(f"{'cumulative':>12} {'self':>12} {'count':>8}  span")
    lines.append(f"{'-' * 12:>12} {'-' * 12:>12} {'-' * 8:>8}  {'-' * 40}")

    # Depth-first over the path tree, children sorted by cumulative time.
    children: Dict[Tuple[str, ...], List[Tuple[str, ...]]] = {}
    roots: List[Tuple[str, ...]] = []
    for path in profile.paths:
        if len(path) == 1:
            roots.append(path)
        else:
            children.setdefault(path[:-1], []).append(path)

    def cum_of(path: Tuple[str, ...]) -> float:
        return profile.paths[path][1]

    emitted = 0

    def walk(path: Tuple[str, ...], depth: int) -> None:
        nonlocal emitted
        if emitted >= top:
            return
        count, cum, self_s = profile.paths[path]
        indent = "  " * depth
        lines.append(
            f"{_fmt_s(cum):>12} {_fmt_s(self_s):>12} {int(count):>8}  "
            f"{indent}{path[-1]}"
        )
        emitted += 1
        for child in sorted(children.get(path, []), key=cum_of, reverse=True):
            walk(child, depth + 1)

    for root in sorted(roots, key=cum_of, reverse=True):
        walk(root, 0)
    hidden = len(profile.paths) - emitted
    if hidden > 0:
        lines.append(f"... {hidden} more path(s) (raise --top to see them)")

    lines.append("")
    lines.append("duration histograms (per span kind):")
    for name in sorted(
        profile.durations, key=lambda n: -sum(profile.durations[n])
    ):
        lines.extend(_histogram_lines(name, profile.durations[name]))

    if profile.points:
        lines.append("")
        lines.append("point events:")
        for name in sorted(profile.points):
            lines.append(f"  {profile.points[name]:>8}  {name}")
    return "\n".join(lines)


def _histogram_lines(name: str, durations: Sequence[float]) -> List[str]:
    buckets = [0] * (len(_HISTO_BOUNDS) + 1)
    for dur in durations:
        for i, bound in enumerate(_HISTO_BOUNDS):
            if dur <= bound:
                buckets[i] += 1
                break
        else:
            buckets[-1] += 1
    peak = max(buckets)
    lines = [f"  {name}  (n={len(durations)}, total={sum(durations):.3f}s)"]
    labels = [f"<={bound:g}s" for bound in _HISTO_BOUNDS] + [
        f">{_HISTO_BOUNDS[-1]:g}s"
    ]
    for label, count in zip(labels, buckets):
        if not count:
            continue
        bar = "#" * max(1, round(30 * count / peak))
        lines.append(f"    {label:>10} {count:>8} {bar}")
    return lines


def render_diff(a: Profile, b: Profile, top: int = 40) -> str:
    """Per-span-name comparison of two profiles (b relative to a)."""
    names_a = a.by_name()
    names_b = b.by_name()
    all_names = sorted(
        set(names_a) | set(names_b),
        key=lambda n: -abs(names_b.get(n, (0, 0.0, 0.0))[1]
                           - names_a.get(n, (0, 0.0, 0.0))[1]),
    )
    lines = [
        f"diff: A={a.total_self_s():.3f}s traced, B={b.total_self_s():.3f}s traced",
        "",
        f"{'cum A':>12} {'cum B':>12} {'delta':>12} {'ratio':>7} "
        f"{'n A':>7} {'n B':>7}  span",
    ]
    for name in all_names[:top]:
        count_a, cum_a, _ = names_a.get(name, (0, 0.0, 0.0))
        count_b, cum_b, _ = names_b.get(name, (0, 0.0, 0.0))
        delta = cum_b - cum_a
        ratio = f"{cum_b / cum_a:7.2f}" if cum_a else "    new"
        lines.append(
            f"{_fmt_s(cum_a):>12} {_fmt_s(cum_b):>12} {_fmt_s(delta):>12} "
            f"{ratio} {count_a:>7} {count_b:>7}  {name}"
        )
    hidden = len(all_names) - min(len(all_names), top)
    if hidden > 0:
        lines.append(f"... {hidden} more span kind(s)")
    return "\n".join(lines)
