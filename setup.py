"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs (``pip install -e .``) work in offline environments
whose setuptools/pip combination lacks the ``wheel`` package required by the
PEP 660 build path.
"""

from setuptools import setup

setup()
