"""Canonical communication patterns (paper §1 and §6).

The paper's introduction motivates Choreo with network-intensive cloud
applications: Hadoop/MapReduce jobs, analytic database workloads,
storage/backup services, and scientific computations.  These builders create
:class:`~repro.workloads.application.Application` objects with the
corresponding task graphs so that examples, tests, and the synthetic
HP-Cloud workload generator can compose realistic mixes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.units import MBYTE
from repro.workloads.application import Application, Task, TrafficMatrix


def _cpu(value: Optional[float]) -> float:
    """Default per-task CPU demand."""
    return 1.0 if value is None else value


def mapreduce(
    name: str,
    n_mappers: int,
    n_reducers: int,
    shuffle_bytes: float,
    skew: float = 0.0,
    cpu_per_task: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    start_time: float = 0.0,
) -> Application:
    """A MapReduce shuffle: every mapper sends to every reducer.

    Args:
        shuffle_bytes: total bytes moved in the shuffle phase.
        skew: 0 gives a perfectly uniform shuffle (the pattern §7.1 notes
            Choreo cannot improve); larger values draw per-pair weights from
            a lognormal with that sigma, producing hot reducers.
    """
    if n_mappers < 1 or n_reducers < 1:
        raise WorkloadError("mapreduce needs at least one mapper and one reducer")
    if shuffle_bytes < 0:
        raise WorkloadError("shuffle_bytes must be >= 0")
    rng = rng if rng is not None else np.random.default_rng(0)
    tasks = [Task(f"m{i}", cpu_per_task) for i in range(n_mappers)]
    tasks += [Task(f"r{j}", cpu_per_task) for j in range(n_reducers)]
    weights = np.ones((n_mappers, n_reducers))
    if skew > 0:
        weights = rng.lognormal(mean=0.0, sigma=skew, size=(n_mappers, n_reducers))
    weights = weights / weights.sum() if weights.sum() > 0 else weights
    traffic = TrafficMatrix()
    for i in range(n_mappers):
        for j in range(n_reducers):
            traffic.add(f"m{i}", f"r{j}", shuffle_bytes * float(weights[i, j]))
    return Application(name=name, tasks=tasks, traffic=traffic, start_time=start_time)


def scatter_gather(
    name: str,
    n_workers: int,
    request_bytes: float = 1 * MBYTE,
    response_bytes: float = 50 * MBYTE,
    cpu_per_task: float = 1.0,
    start_time: float = 0.0,
) -> Application:
    """A frontend scatters requests to workers and gathers large responses."""
    if n_workers < 1:
        raise WorkloadError("scatter_gather needs at least one worker")
    tasks = [Task("frontend", cpu_per_task)]
    tasks += [Task(f"w{i}", cpu_per_task) for i in range(n_workers)]
    traffic = TrafficMatrix()
    for i in range(n_workers):
        traffic.add("frontend", f"w{i}", request_bytes)
        traffic.add(f"w{i}", "frontend", response_bytes)
    return Application(name=name, tasks=tasks, traffic=traffic, start_time=start_time)


def pipeline(
    name: str,
    n_stages: int,
    stage_bytes: float = 100 * MBYTE,
    decay: float = 1.0,
    cpu_per_task: float = 1.0,
    start_time: float = 0.0,
) -> Application:
    """A linear pipeline: stage ``k`` streams to stage ``k+1``.

    ``decay`` scales each successive hop's volume (e.g. 0.5 models a
    filtering pipeline where each stage halves the data).
    """
    if n_stages < 2:
        raise WorkloadError("pipeline needs at least two stages")
    if decay <= 0:
        raise WorkloadError("decay must be positive")
    tasks = [Task(f"stage{i}", cpu_per_task) for i in range(n_stages)]
    traffic = TrafficMatrix()
    volume = stage_bytes
    for i in range(n_stages - 1):
        traffic.add(f"stage{i}", f"stage{i + 1}", volume)
        volume *= decay
    return Application(name=name, tasks=tasks, traffic=traffic, start_time=start_time)


def star(
    name: str,
    n_leaves: int = 2,
    bytes_per_leaf: float = 100 * MBYTE,
    bidirectional: bool = False,
    cpu_per_task: float = 1.0,
    start_time: float = 0.0,
) -> Application:
    """The paper's introductory example: tasks A, B, ... talk to a hub S.

    With ``n_leaves=2`` this is exactly the three-task example of §1 where S
    communicates often with A and B but A and B rarely talk to each other.
    """
    if n_leaves < 1:
        raise WorkloadError("star needs at least one leaf")
    tasks = [Task("S", cpu_per_task)]
    tasks += [Task(f"L{i}", cpu_per_task) for i in range(n_leaves)]
    traffic = TrafficMatrix()
    for i in range(n_leaves):
        traffic.add(f"L{i}", "S", bytes_per_leaf)
        if bidirectional:
            traffic.add("S", f"L{i}", bytes_per_leaf)
    return Application(name=name, tasks=tasks, traffic=traffic, start_time=start_time)


def uniform_mesh(
    name: str,
    n_tasks: int,
    bytes_per_pair: float = 10 * MBYTE,
    cpu_per_task: float = 1.0,
    start_time: float = 0.0,
) -> Application:
    """Every task sends the same volume to every other task.

    This is the "relatively uniform bandwidth usage" pattern §7.1 identifies
    as a case where Choreo offers little improvement — useful as a negative
    control in tests and ablations.
    """
    if n_tasks < 2:
        raise WorkloadError("uniform_mesh needs at least two tasks")
    tasks = [Task(f"t{i}", cpu_per_task) for i in range(n_tasks)]
    traffic = TrafficMatrix()
    for i in range(n_tasks):
        for j in range(n_tasks):
            if i != j:
                traffic.add(f"t{i}", f"t{j}", bytes_per_pair)
    return Application(name=name, tasks=tasks, traffic=traffic, start_time=start_time)


def random_sparse(
    name: str,
    n_tasks: int,
    density: float = 0.3,
    total_bytes: float = 1000 * MBYTE,
    volume_sigma: float = 1.5,
    cpu_choices: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
    rng: Optional[np.random.Generator] = None,
    start_time: float = 0.0,
) -> Application:
    """A random sparse task graph with heavy-tailed per-pair volumes.

    This is the generic shape of the HP Cloud traffic matrices: most task
    pairs exchange nothing, a few pairs carry most of the bytes.

    Args:
        density: probability an ordered task pair communicates at all.
        total_bytes: total volume, split among communicating pairs with
            lognormal (sigma ``volume_sigma``) weights.
        cpu_choices: per-task CPU demands are drawn uniformly from this set
            (the paper models 0.5–4 cores).
    """
    if n_tasks < 2:
        raise WorkloadError("random_sparse needs at least two tasks")
    if not 0.0 < density <= 1.0:
        raise WorkloadError("density must be in (0, 1]")
    if total_bytes < 0:
        raise WorkloadError("total_bytes must be >= 0")
    rng = rng if rng is not None else np.random.default_rng(0)
    tasks = [
        Task(f"t{i}", float(rng.choice(list(cpu_choices)))) for i in range(n_tasks)
    ]
    pairs = [
        (f"t{i}", f"t{j}")
        for i in range(n_tasks)
        for j in range(n_tasks)
        if i != j and rng.random() < density
    ]
    if not pairs:
        # Guarantee the application is network-connected at all.
        i, j = rng.choice(n_tasks, size=2, replace=False)
        pairs = [(f"t{int(i)}", f"t{int(j)}")]
    weights = rng.lognormal(mean=0.0, sigma=volume_sigma, size=len(pairs))
    weights = weights / weights.sum()
    traffic = TrafficMatrix()
    for (src, dst), weight in zip(pairs, weights):
        traffic.add(src, dst, total_bytes * float(weight))
    return Application(name=name, tasks=tasks, traffic=traffic, start_time=start_time)
