"""Application workload substrate.

The paper evaluates Choreo with applications built from three weeks of real
traffic matrices collected (via sFlow) on the HP Cloud network.  That dataset
is not public, so this package provides a synthetic equivalent: task-level
applications (:mod:`repro.workloads.application`), the communication
patterns the paper's introduction motivates (:mod:`repro.workloads.patterns`),
a heavy-tailed HP-Cloud-like workload generator
(:mod:`repro.workloads.generator`), arrival processes
(:mod:`repro.workloads.arrivals`), an sFlow-like flow-record trace format
(:mod:`repro.workloads.trace`), and the hour-over-hour predictability
analysis of §6.1 (:mod:`repro.workloads.predictability`).
"""

from repro.workloads.application import Application, Task, TrafficMatrix, combine_applications
from repro.workloads.patterns import (
    mapreduce,
    scatter_gather,
    pipeline,
    star,
    uniform_mesh,
    random_sparse,
)
from repro.workloads.generator import HPCloudWorkloadGenerator, WorkloadSpec
from repro.workloads.arrivals import PoissonArrivals, TraceArrivals, DiurnalArrivals
from repro.workloads.trace import FlowRecord, write_trace, read_trace, records_to_traffic_matrix
from repro.workloads.predictability import (
    PredictabilityReport,
    evaluate_predictability,
    previous_hour_predictor,
    time_of_day_predictor,
    combined_predictor,
)

__all__ = [
    "Application",
    "Task",
    "TrafficMatrix",
    "combine_applications",
    "mapreduce",
    "scatter_gather",
    "pipeline",
    "star",
    "uniform_mesh",
    "random_sparse",
    "HPCloudWorkloadGenerator",
    "WorkloadSpec",
    "PoissonArrivals",
    "TraceArrivals",
    "DiurnalArrivals",
    "FlowRecord",
    "write_trace",
    "read_trace",
    "records_to_traffic_matrix",
    "PredictabilityReport",
    "evaluate_predictability",
    "previous_hour_predictor",
    "time_of_day_predictor",
    "combined_predictor",
]
