"""The remote sweep fabric: worker wire protocol, lease-based scheduling,
fault tolerance (crash / hang / straggler chaos), cost-aware chunking, and
the crash-safe shared result store under multi-writer races."""

import json
import multiprocessing
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    ResultStore,
    WorkItem,
    backend_names,
    create_backend,
)
from repro.experiments.backends import (
    COST_PRIORS,
    RemoteBackend,
    _weighted_chunks,
    item_weight,
)
from repro.experiments.worker import (
    DEFAULT_WORKER_PORT,
    WorkerClient,
    parse_endpoint,
    spawn_local_workers,
    ssh_launch_command,
)


def _items(n=6, placer="random"):
    return [WorkItem.make("smoke", placer, trial, 0) for trial in range(n)]


def _canonical(records):
    return json.dumps(
        [
            {
                k: v
                for k, v in vars(rec).items()
                if k not in ("trial_wall_s", "placement_wall_s")
            }
            for rec in records
        ],
        sort_keys=True,
    )


# ------------------------------------------------------------- endpoints
def test_endpoint_spellings():
    ep = parse_endpoint("http://10.0.0.7:9000")
    assert (ep.scheme, ep.host, ep.port, ep.user) == ("http", "10.0.0.7", 9000, None)
    assert parse_endpoint("10.0.0.7:9000") == ep  # bare host:port reads as http
    ssh = parse_endpoint("ssh://ops@big-box")
    assert (ssh.scheme, ssh.host, ssh.user) == ("ssh", "big-box", "ops")
    assert ssh.port == DEFAULT_WORKER_PORT


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "ftp://host:1",
        "http://",
        "http://host:1/path",
        "http://user@host:1",  # user@ only makes sense with ssh
        "http://host:notaport",
    ],
)
def test_endpoint_rejects_malformed(bad):
    with pytest.raises(ExperimentError):
        parse_endpoint(bad)


def test_ssh_launch_command_is_a_thin_serve_invocation():
    cmd = ssh_launch_command(
        parse_endpoint("ssh://ops@big-box:7500"), cache_dir="/mnt/shared"
    )
    assert cmd[:2] == ["ssh", "ops@big-box"]
    assert "--serve" in cmd and "7500" in cmd
    assert cmd[cmd.index("--cache-dir") + 1] == "/mnt/shared"
    with pytest.raises(ExperimentError):
        ssh_launch_command(parse_endpoint("http://host:1"))


# ------------------------------------------------------ cost-aware chunks
def test_weighted_chunks_balance_heavy_items():
    # One 100x item plus ten 1x items over two chunks: the heavy item must
    # sit alone(ish), not share a chunk with half the light ones.
    weights = [100.0] + [1.0] * 10
    chunks = _weighted_chunks(weights, 2)
    assert sorted(len(c) for c in chunks) == [1, 10]
    assert [0] in chunks  # the heavy item rides alone
    # Every position appears exactly once, in ascending order per chunk.
    assert sorted(i for c in chunks for i in c) == list(range(11))
    assert all(c == sorted(c) for c in chunks)


def test_weighted_chunks_drop_empty_chunks():
    assert _weighted_chunks([1.0, 1.0], 5) == [[0], [1]]


def test_item_weight_prefers_observed_costs_over_priors():
    ilp = WorkItem.make("smoke", "ilp", 0, 0)
    rnd = WorkItem.make("smoke", "random", 0, 0)
    assert item_weight(ilp) == COST_PRIORS["ilp"]
    assert item_weight(ilp) / item_weight(rnd) == pytest.approx(100.0)
    observed = {("smoke", "ilp"): 7.5}
    assert item_weight(ilp, observed) == 7.5
    assert item_weight(rnd, observed) == COST_PRIORS["random"]


# ----------------------------------------------------- worker round trips
def test_worker_health_and_lease_roundtrip():
    items = _items(2)
    with spawn_local_workers(1) as pool:
        client = WorkerClient(*pool.addresses[0])
        health = client.health()
        assert health["status"] == "ok" and not health["busy"]

        stream = client.open_lease("t-0", [i.to_json_dict() for i in items])
        lines, done = [], False
        for _ in range(400):
            for data in stream.poll(0.25):
                lines.append(data)
                done = done or bool(data.get("done"))
            if done or stream.eof:
                break
        stream.close()
        assert done, f"no done trailer in {lines}"
        indices = [d["index"] for d in lines if "record" in d]
        assert indices == [0, 1]
        assert client.health()["trials_done"] == 2
        assert client.shutdown()


def test_worker_refuses_wrong_schema_lease():
    import http.client

    with spawn_local_workers(1) as pool:
        host, port = pool.addresses[0]
        conn = http.client.HTTPConnection(host, port, timeout=5)
        try:
            conn.request(
                "POST", "/lease",
                body=json.dumps({"schema": "bogus/v0", "items": []}).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert b"schema" in resp.read()
        finally:
            conn.close()


# ------------------------------------------------------- the remote backend
def test_remote_backend_registered():
    assert "remote" in backend_names()


def test_remote_backend_matches_inline_bit_for_bit():
    items = [
        WorkItem.make("smoke", placer, trial, 0)
        for placer in ("greedy", "random")
        for trial in range(2)
    ]
    expected = create_backend("inline").map_trials(items)
    backend = create_backend("remote", workers=2)
    records = backend.map_trials(items)
    assert _canonical(records) == _canonical(expected)
    stats = backend.last_fabric_stats
    assert stats["workers"] == 2
    assert stats["retry_waves"] == 0 and stats["salvaged_records"] == 0
    assert 0.0 <= stats["max_worker_idle_fraction"] <= 1.0


def test_remote_backend_rejects_bad_options():
    with pytest.raises(ExperimentError):
        create_backend("remote", options={"bogus": 1})
    with pytest.raises(ExperimentError):
        RemoteBackend(max_retries=-1)
    with pytest.raises(ExperimentError):
        RemoteBackend(heartbeat_timeout_s=0.0)
    with pytest.raises(ExperimentError):
        RemoteBackend(straggler_factor=1.0)


# ------------------------------------------------------------------- chaos
def test_chaos_crash_and_hang_workers_salvaged_and_bit_identical(
    tmp_path, monkeypatch
):
    """The acceptance chaos drill: two workers, one killed mid-chunk, one
    hung past the heartbeat deadline.  The sweep must still equal the
    inline run bit-for-bit, and the streamed prefixes must be salvaged
    (not re-executed)."""
    items = [
        WorkItem.make("smoke", placer, trial, 0)
        for placer in ("greedy", "random")
        for trial in range(4)
    ]
    expected = create_backend("inline").map_trials(items)

    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "crash,hang")
    backend = create_backend(
        "remote",
        workers=2,
        options={"heartbeat_timeout_s": 2.0, "backoff_base_s": 0.05},
    )
    records = backend.map_trials(items)

    assert (tmp_path / "chaos-fired").exists(), "crash chaos never armed"
    assert (tmp_path / "chaos-fired-1").exists(), "hang chaos never armed"
    assert _canonical(records) == _canonical(expected)

    stats = backend.last_fabric_stats
    assert stats["salvaged_records"] >= 1
    assert stats["retried_trials"] < len(items), "salvage was thrown away"
    assert stats["salvaged_records"] + stats["retried_trials"] >= len(items)
    assert stats["retry_waves"] >= 1
    assert any("died mid-chunk" in f or "hung" in f for f in stats["failures"])


def test_chaos_retry_waves_are_deterministic(tmp_path, monkeypatch):
    """Same seed, same crash: the salvage-then-retry sweep is bit-identical
    across runs, down to the backoff schedule."""
    items = _items(6)
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "crash")

    outputs = []
    for run in ("a", "b"):
        chaos_dir = tmp_path / run
        chaos_dir.mkdir()
        monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(chaos_dir))
        backend = create_backend(
            "remote",
            workers=2,
            options={"backoff_seed": 7, "backoff_base_s": 0.05},
        )
        records = backend.map_trials(items)
        assert (chaos_dir / "chaos-fired").exists()
        outputs.append(
            (_canonical(records), backend.last_fabric_stats["backoff_delays_s"])
        )
    assert outputs[0][0] == outputs[1][0]
    assert outputs[0][1] == outputs[1][1] != []


def test_chaos_straggler_is_redispatched_to_idle_worker(tmp_path, monkeypatch):
    """A worker that slows to a crawl (but keeps streaming) gets its
    remaining trials re-dispatched to an idle worker; whichever copy of a
    trial lands first wins and duplicates are discarded."""
    items = _items(10)
    expected = create_backend("inline").map_trials(items)

    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "slow")
    backend = create_backend(
        "remote",
        workers=2,
        options={"heartbeat_timeout_s": 30.0, "straggler_factor": 1.5},
    )
    records = backend.map_trials(items)
    assert (tmp_path / "chaos-fired").exists(), "slow chaos never armed"
    assert _canonical(records) == _canonical(expected)
    stats = backend.last_fabric_stats
    assert stats["stragglers_redispatched"] >= 1
    assert stats["retry_waves"] == 0, "straggling is not a retry wave"


def test_chaos_crash_with_no_retry_budget_raises(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_CHAOS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKER_CHAOS_MODE", "crash")
    backend = create_backend(
        "remote", workers=1, options={"max_retries": 0}
    )
    with pytest.raises(ExperimentError, match="gave up"):
        backend.map_trials(_items(2))


# ----------------------------------------------------- config / runner wiring
def test_config_threads_remote_options():
    config = ExperimentConfig(
        scenarios=("smoke",),
        placers=("random",),
        trials=1,
        backend="remote",
        workers=2,
        endpoints=("http://a:1", "b:2"),
        heartbeat_timeout_s=12.0,
        max_retries=3,
        base_seed=11,
        cache_dir="/tmp/shared-store",
    )
    options = config.backend_options
    assert options["endpoints"] == ["http://a:1", "b:2"]
    assert options["heartbeat_timeout_s"] == 12.0
    assert options["max_retries"] == 3
    assert options["backoff_seed"] == 11
    assert options["store_root"] == "/tmp/shared-store"


def test_config_rejects_remote_knobs_on_other_backends():
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",), placers=("random",), trials=1,
            backend="inline", endpoints=("http://a:1",),
        )
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",), placers=("random",), trials=1,
            backend="process", heartbeat_timeout_s=5.0,
        )
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",), placers=("random",), trials=1,
            backend="remote", endpoints=("ftp://nope:1",),
        )
    with pytest.raises(ExperimentError):
        ExperimentConfig(
            scenarios=("smoke",), placers=("random",), trials=1,
            backend="remote", heartbeat_timeout_s=-1.0,
        )


def test_runner_remote_workers_populate_the_shared_store(tmp_path):
    """Workers write the shared store themselves: a second (inline) run
    over the same grid executes nothing, and the store's observed cost
    table has entries for the swept cells."""
    config = ExperimentConfig(
        scenarios=("smoke",),
        placers=("greedy", "random"),
        trials=2,
        backend="remote",
        workers=2,
        cache_dir=str(tmp_path),
    )
    runner = ExperimentRunner(config)
    first = runner.run()
    assert runner.last_stats.executed == 4

    rerun_runner = ExperimentRunner(
        ExperimentConfig(
            scenarios=("smoke",),
            placers=("greedy", "random"),
            trials=2,
            backend="inline",
            workers=1,
            cache_dir=str(tmp_path),
        )
    )
    second = rerun_runner.run()
    assert rerun_runner.last_stats.executed == 0
    assert rerun_runner.last_stats.cache_hits == 4
    assert json.dumps(first.canonical_json_dict(), sort_keys=True) == (
        json.dumps(second.canonical_json_dict(), sort_keys=True)
    )

    table = ResultStore(tmp_path).cost_table()
    assert ("smoke", "greedy") in table and ("smoke", "random") in table
    assert all(cost > 0 for cost in table.values())


# ------------------------------------------------- multi-writer store races
def _race_put(root, version, barrier, wall_s):
    store = ResultStore(root, version=version)
    key = store.key_for("smoke", "random", 0, 123)
    record = store_record(wall_s)
    barrier.wait(timeout=30)
    for _ in range(25):
        store.put(key, record)
    store.flush_costs()


def store_record(wall_s):
    from repro.experiments.results import TrialRecord

    return TrialRecord(
        scenario="smoke", placer="random", trial=0, seed=123,
        total_running_time_s=42.0, trial_wall_s=wall_s,
    )


def test_result_store_survives_racing_writers(tmp_path):
    """Four processes hammer the same cell concurrently; the surviving
    cell must be one writer's intact record, with no torn JSON and no
    leftover temp files — the unique-temp-name + atomic-rename contract."""
    barrier = multiprocessing.Barrier(4)
    procs = [
        multiprocessing.Process(
            target=_race_put, args=(str(tmp_path), "race-v", barrier, 0.5 + i)
        )
        for i in range(4)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    store = ResultStore(tmp_path, version="race-v")
    assert len(store) == 1
    key = store.key_for("smoke", "random", 0, 123)
    record = store.get(key)
    assert record is not None and record.total_running_time_s == 42.0
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []
    # Every writer's cost sidecar survived the race and merges cleanly.
    table = store.cost_table()
    assert table[("smoke", "random")] > 0


def test_store_cost_sidecars_do_not_count_as_cells(tmp_path):
    store = ResultStore(tmp_path, version="v")
    key = store.key_for("smoke", "random", 0, 1)
    store.put(key, store_record(1.0))
    assert store.flush_costs() is not None
    assert len(store) == 1
    pruned = store.prune_stale()
    assert len(store) == 1  # the live version's cells survive
    assert pruned == 0 or isinstance(pruned, int)
