"""Placement primitives shared by every placer.

A *machine* here is a VM from the tenant's point of view: the paper's
evaluation models each cloud machine as having four available cores and
each task as needing 0.5–4 cores.  A :class:`ClusterState` carries the
machines plus the CPU already consumed by applications that are still
running (needed when applications arrive in sequence, §6.3).  A
:class:`Placement` maps every task of one application to a machine and can
be validated against the cluster's CPU constraints.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.network_profile import NetworkProfile
from repro.errors import PlacementError
from repro.workloads.application import Application


@dataclass(frozen=True)
class Machine:
    """A schedulable machine (VM) with a CPU capacity in cores."""

    name: str
    cores: float = 4.0

    def __post_init__(self) -> None:
        if not self.name:
            raise PlacementError("machine name must be non-empty")
        if self.cores <= 0:
            raise PlacementError(f"machine {self.name!r} must have positive cores")


@dataclass
class ClusterState:
    """The tenant's machines and their current CPU usage.

    Attributes:
        machines: the machines available for placement.
        cpu_used: cores already consumed on each machine by applications
            that are still running (empty for a fresh cluster).
    """

    machines: List[Machine]
    cpu_used: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise PlacementError("duplicate machine names in cluster")
        known = set(names)
        for name, used in self.cpu_used.items():
            if name not in known:
                raise PlacementError(f"cpu_used references unknown machine {name!r}")
            if used < 0:
                raise PlacementError("cpu_used values must be >= 0")

    @classmethod
    def from_vms(cls, vms: Iterable, cores: Optional[float] = None) -> "ClusterState":
        """Build a cluster from provider VM handles (uses their instance cores)."""
        machines = [
            Machine(vm.name, cores if cores is not None else vm.cores) for vm in vms
        ]
        return cls(machines=machines)

    def machine(self, name: str) -> Machine:
        """Look up a machine by name."""
        for machine in self.machines:
            if machine.name == name:
                return machine
        raise PlacementError(f"unknown machine {name!r}")

    def machine_names(self) -> List[str]:
        """All machine names, in declaration order."""
        return [m.name for m in self.machines]

    def available_cpu(self, name: str) -> float:
        """Cores still free on a machine."""
        return self.machine(name).cores - self.cpu_used.get(name, 0.0)

    def total_available_cpu(self) -> float:
        """Cores still free across the whole cluster."""
        return sum(self.available_cpu(m.name) for m in self.machines)

    def with_usage(self, usage: Mapping[str, float]) -> "ClusterState":
        """A copy with additional CPU usage applied (for sequential placement)."""
        combined = dict(self.cpu_used)
        for name, used in usage.items():
            combined[name] = combined.get(name, 0.0) + used
        return ClusterState(machines=list(self.machines), cpu_used=combined)


@dataclass
class Placement:
    """A mapping of one application's tasks to machines."""

    app_name: str
    assignments: Dict[str, str]

    def machine_of(self, task_name: str) -> str:
        """The machine a task was placed on."""
        try:
            return self.assignments[task_name]
        except KeyError as exc:
            raise PlacementError(
                f"placement for {self.app_name!r} has no task {task_name!r}"
            ) from exc

    def tasks_on(self, machine_name: str) -> List[str]:
        """Tasks placed on one machine, sorted."""
        return sorted(
            task for task, machine in self.assignments.items() if machine == machine_name
        )

    def machines_used(self) -> List[str]:
        """Machines that received at least one task, sorted."""
        return sorted(set(self.assignments.values()))

    def cpu_usage(self, app: Application) -> Dict[str, float]:
        """Cores the placed application consumes on each machine."""
        usage: Dict[str, float] = {}
        for task, machine in self.assignments.items():
            usage[machine] = usage.get(machine, 0.0) + app.cpu_demand(task)
        return usage

    def __len__(self) -> int:
        return len(self.assignments)


def validate_placement(
    placement: Placement, app: Application, cluster: ClusterState
) -> None:
    """Check a placement covers every task and respects CPU constraints.

    Raises:
        PlacementError: if a task is missing, placed on an unknown machine,
            or any machine's CPU capacity is exceeded.
    """
    missing = set(app.task_names) - set(placement.assignments)
    if missing:
        raise PlacementError(
            f"placement for {app.name!r} is missing tasks {sorted(missing)}"
        )
    extra = set(placement.assignments) - set(app.task_names)
    if extra:
        raise PlacementError(
            f"placement for {app.name!r} has unknown tasks {sorted(extra)}"
        )
    known_machines = set(cluster.machine_names())
    for task, machine in placement.assignments.items():
        if machine not in known_machines:
            raise PlacementError(
                f"task {task!r} placed on unknown machine {machine!r}"
            )
    for machine, used in placement.cpu_usage(app).items():
        if used > cluster.available_cpu(machine) + 1e-9:
            raise PlacementError(
                f"machine {machine!r} over-committed: task demand {used:.2f} cores, "
                f"available {cluster.available_cpu(machine):.2f}"
            )


def cpu_feasible_machines(
    app: Application, cluster: ClusterState
) -> Dict[str, List[str]]:
    """For each task, the machines with enough free CPU for it alone.

    This is the per-assignment feasibility filter exact solvers can prune
    variables with: a task can never sit on a machine that lacks the cores
    for it in isolation (joint feasibility is still the solver's job).
    """
    machines = cluster.machine_names()
    available = {m: cluster.available_cpu(m) for m in machines}
    return {
        task.name: [
            m for m in machines if task.cpu_cores <= available[m] + 1e-9
        ]
        for task in app.tasks
    }


class Placer(abc.ABC):
    """Interface every placement algorithm implements."""

    #: Human-readable name used in experiment output.
    name: str = "placer"

    @abc.abstractmethod
    def place(
        self,
        app: Application,
        cluster: ClusterState,
        profile: Optional[NetworkProfile] = None,
    ) -> Placement:
        """Place ``app`` on ``cluster``.

        ``profile`` is the measured network; network-oblivious baselines
        ignore it.  Implementations must return a placement that satisfies
        :func:`validate_placement` or raise :class:`PlacementError`.
        """

    def check_feasible(self, app: Application, cluster: ClusterState) -> None:
        """Raise :class:`PlacementError` when the app cannot possibly fit."""
        if app.total_cpu > cluster.total_available_cpu() + 1e-9:
            raise PlacementError(
                f"application {app.name!r} needs {app.total_cpu:.1f} cores but the "
                f"cluster only has {cluster.total_available_cpu():.1f} available"
            )
        largest_task = max(task.cpu_cores for task in app.tasks)
        largest_slot = max(
            cluster.available_cpu(m.name) for m in cluster.machines
        )
        if largest_task > largest_slot + 1e-9:
            raise PlacementError(
                f"application {app.name!r} has a task needing {largest_task:.1f} cores "
                f"but no machine has more than {largest_slot:.1f} available"
            )
