"""Reproduction of "Choreo: Network-Aware Task Placement for Cloud Applications".

Sub-packages:

* :mod:`repro.net` — topologies, max-min fluid simulator, packet trains;
* :mod:`repro.cloud` — synthetic EC2/Rackspace-like providers;
* :mod:`repro.workloads` — applications, patterns, the HP-Cloud generator;
* :mod:`repro.core` — Choreo itself: profiling, measurement, placement;
* :mod:`repro.runtime` — executing placed applications on a provider;
* :mod:`repro.experiments` — the §6 evaluation: scenarios, sweeps, CLI.
"""

__version__ = "0.1.0"
