"""The benchmark suite behind ``python -m repro.bench``.

Every benchmark times an optimised hot path against its in-tree reference
implementation on the same inputs and *verifies agreement* while doing so:
a benchmark that gets faster by producing different numbers is a bug, not a
win.  All inputs derive from explicit seeds, so runs are reproducible.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import random
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.modes import reference_mode
from repro.core.measurement.orchestrator import MeasurementPlan, NetworkMeasurer
from repro.core.network_profile import NetworkProfile
from repro.core.placement.base import ClusterState, Machine
from repro.core.placement.greedy import GreedyPlacer
from repro.cloud.registry import make_provider
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.net.alloc import IncrementalAllocator
from repro.net.fairness import FlowDemand, max_min_allocation
from repro.net.flows import Flow
from repro.net.fluid import ALLOCATOR_INCREMENTAL, ALLOCATOR_REFERENCE, FluidSimulation
from repro.net.topology import build_two_rack_cloud, clear_route_cache
from repro.units import GBITPS, GBYTE, MBYTE
from repro.workloads.patterns import scatter_gather

#: Acceptance floors the full-size suite is expected to clear.
TARGET_ALLOCATOR_SPEEDUP = 5.0
TARGET_E2E_SPEEDUP = 2.0
TARGET_RESUME_SPEEDUP = 5.0
TARGET_ILP_SPEEDUP = 3.0
TARGET_ILP_PIPE_SPEEDUP = 2.0
TARGET_SCALE_SPEEDUP = 5.0
TARGET_FLUID_LOOP_SPEEDUP = 5.0
TARGET_ROUTING_SPEEDUP = 10.0
TARGET_MEGA_FLUID_SPEEDUP = 2.0
#: Floor on the fleet pass's *scheduled parallelism* (total worker busy
#: time / makespan): the cost-aware chunker must keep at least two of the
#: four workers fed concurrently.  Wall-clock speedup is reported alongside
#: but not floored — on a single-core host every schedule serialises, so
#: the wall ratio measures the host's core count, not the fabric.
TARGET_MULTI_WORKER_SPEEDUP = 2.0

#: No-stranding bound for the cost-aware chunker: the idlest worker of the
#: fleet pass may not sit out more than this fraction of the makespan.
MAX_WORKER_IDLE_FRACTION = 0.6

#: Telemetry overhead budgets (the ``obs`` bench): with tracing *disabled*
#: — the production default, no-op spans plus live counters — the
#: ``fluid_loop`` workload may cost at most 2% over a stubbed-out baseline;
#: with tracing *enabled* it may cost at most 10%.
MAX_OBS_DISABLED_OVERHEAD = 0.02
MAX_OBS_ENABLED_OVERHEAD = 0.10


def _env_params() -> Dict[str, object]:
    """Environment facts a reader needs to interpret the timings: library
    versions and the auto-mode thresholds that decide which code path ran."""
    import platform

    import numpy
    import scipy

    from repro.net.alloc import vector_thresholds
    from repro.net.fluid import loop_threshold

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "vector_thresholds": list(vector_thresholds()),
        "loop_threshold": loop_threshold(),
    }


def _close(a: float, b: float, tol: float = 1e-9) -> bool:
    """Equality within ``tol`` (absolute and relative), inf-aware."""
    if a == b:
        return True
    if math.isinf(a) or math.isinf(b):
        return False
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def _rates_diff(ref: Dict[str, float], got: Dict[str, float]) -> float:
    """Largest per-flow discrepancy between two allocations (inf-aware)."""
    if set(ref) != set(got):
        return math.inf
    worst = 0.0
    for fid, a in ref.items():
        b = got[fid]
        if math.isinf(a) or math.isinf(b):
            if a != b:
                return math.inf
            continue
        scale = max(1.0, abs(a), abs(b))
        worst = max(worst, abs(a - b) / scale)
    return worst


# ---------------------------------------------------------------------------
# Allocator microbench
# ---------------------------------------------------------------------------
def _random_allocation_instance(
    rng: random.Random, n_links: int, n_flows: int
) -> Tuple[Dict[str, float], Dict[str, FlowDemand]]:
    """Random capacities and demands, including caps, empty-link flows, and
    zero-capacity edges — the same families the property tests cover."""
    caps: Dict[str, float] = {}
    for i in range(n_links):
        if rng.random() < 0.03:
            caps[f"l{i}"] = 0.0
        else:
            caps[f"l{i}"] = rng.uniform(0.1 * GBITPS, 10 * GBITPS)
    link_ids = list(caps)
    demands: Dict[str, FlowDemand] = {}
    for f in range(n_flows):
        if rng.random() < 0.05:
            links: Tuple[str, ...] = ()
        else:
            links = tuple(rng.sample(link_ids, rng.randint(1, min(5, n_links))))
        cap = rng.uniform(0.01 * GBITPS, 2 * GBITPS) if rng.random() < 0.4 else None
        demands[f"f{f}"] = FlowDemand(links=links, max_rate=cap)
    return caps, demands


def bench_allocator(
    n_links: int = 120,
    n_flows: int = 400,
    n_events: int = 500,
    seed: int = 0,
) -> Dict[str, object]:
    """Replay an add/remove event churn, re-solving after every event.

    This is exactly what the fluid simulator does: the reference path
    rebuilds the demand mapping and solves from scratch per event, the
    incremental path applies a delta and re-solves.
    """
    rng = random.Random(seed)
    caps, demands = _random_allocation_instance(rng, n_links, n_flows)

    # Deterministic event script: start half-full, then churn.
    flow_ids = list(demands)
    initial = flow_ids[: n_flows // 2]
    pool = flow_ids[n_flows // 2 :]
    active_script = set(initial)
    events: List[Tuple[str, str]] = [("add", fid) for fid in initial]
    for _ in range(n_events):
        if pool and (not active_script or rng.random() < 0.5):
            fid = pool.pop(rng.randrange(len(pool)))
            events.append(("add", fid))
            active_script.add(fid)
        else:
            fid = rng.choice(sorted(active_script))
            events.append(("remove", fid))
            active_script.discard(fid)
            pool.append(fid)

    # Reference: rebuild + solve per event, as the pre-PR fluid loop did.
    active: Dict[str, FlowDemand] = {}
    ref_solutions: List[Dict[str, float]] = []
    started = time.perf_counter()
    for op, fid in events:
        if op == "add":
            active[fid] = demands[fid]
        else:
            del active[fid]
        ref_solutions.append(
            max_min_allocation({f: active[f] for f in active}, caps)
        )
    reference_s = time.perf_counter() - started

    # Incremental: apply the delta, re-solve.
    allocator = IncrementalAllocator(caps)
    inc_solutions: List[Dict[str, float]] = []
    started = time.perf_counter()
    for op, fid in events:
        if op == "add":
            allocator.add_demand(fid, demands[fid])
        else:
            allocator.remove_flow(fid)
        inc_solutions.append(allocator.solve())
    incremental_s = time.perf_counter() - started

    worst = max(
        (_rates_diff(r, g) for r, g in zip(ref_solutions, inc_solutions)),
        default=0.0,
    )
    return {
        "name": "allocator",
        "params": {"n_links": n_links, "n_flows": n_flows, "n_events": len(events)},
        "reference_s": round(reference_s, 6),
        "optimized_s": round(incremental_s, 6),
        "speedup": round(reference_s / incremental_s, 3) if incremental_s else None,
        "max_relative_diff": worst,
        "matched": worst <= 1e-9,
    }


# ---------------------------------------------------------------------------
# Fluid simulation
# ---------------------------------------------------------------------------
def _fluid_workload(seed: int, n_pairs: int, n_flows: int) -> List[Flow]:
    rng = random.Random(seed)
    flows: List[Flow] = []
    for i in range(n_flows):
        src = f"s{rng.randint(1, n_pairs)}"
        dst = f"r{rng.randint(1, n_pairs)}"
        start = rng.uniform(0.0, 5.0)
        if rng.random() < 0.15:
            flows.append(
                Flow(
                    flow_id=f"bg{i}", src=src, dst=dst, size_bytes=None,
                    start_time=start, end_time=start + rng.uniform(0.5, 4.0),
                )
            )
        else:
            cap = 0.2 * GBITPS if rng.random() < 0.3 else None
            flows.append(
                Flow(
                    flow_id=f"x{i}", src=src, dst=dst,
                    size_bytes=rng.uniform(5, 120) * MBYTE,
                    start_time=start, max_rate_bps=cap,
                )
            )
    return flows


def bench_fluid(
    n_pairs: int = 16,
    n_flows: int = 420,
    seed: int = 0,
) -> Dict[str, object]:
    """Run one bursty fluid simulation with each allocator and compare."""
    topo = build_two_rack_cloud(n_pairs=n_pairs)
    flows = _fluid_workload(seed, n_pairs, n_flows)

    def run(mode: str):
        sim = FluidSimulation(topo, allocator=mode)
        sim.add_flows(flows)
        started = time.perf_counter()
        result = sim.run()
        return time.perf_counter() - started, result

    reference_s, ref = run(ALLOCATOR_REFERENCE)
    optimized_s, got = run(ALLOCATOR_INCREMENTAL)

    matched = (
        set(ref.completion_times) == set(got.completion_times)
        and _close(ref.end_time, got.end_time)
        and all(
            _close(t, got.completion_times[fid])
            for fid, t in ref.completion_times.items()
        )
    )
    return {
        "name": "fluid",
        "params": {"n_pairs": n_pairs, "n_flows": n_flows},
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "events": sum(len(tl.segments) for tl in got.timelines.values()),
        "matched": matched,
    }


# ---------------------------------------------------------------------------
# Fluid event loop (scalar vs vectorised) on a datacenter tree
# ---------------------------------------------------------------------------
def _numeric_hosts(topo) -> List[str]:
    """Hosts in coordinate order (``host10`` after ``host9``), so slicing
    by rack size yields the builder's actual racks — ``topo.hosts()`` is
    lexicographic and interleaves pods."""
    return sorted(topo.hosts(), key=lambda h: int(h[4:]))


def _tree_rack_flows(
    topo,
    hosts_per_rack: int,
    seed: int,
    p_flow: float,
    stagger_s: float = 0.05,
    capped_frac: float = 0.3,
) -> List[Flow]:
    """Rack-local random meshes: each rack's hosts exchange flows with
    probability ``p_flow`` per ordered pair.  Racks are independent sharing
    components, so the allocator's partial re-solves stay engaged — the
    regime real tenant placements produce."""
    rng = random.Random(seed)
    hosts = _numeric_hosts(topo)
    flows: List[Flow] = []
    i = 0
    for r in range(0, len(hosts), hosts_per_rack):
        for a, b in itertools.permutations(hosts[r : r + hosts_per_rack], 2):
            if rng.random() < p_flow:
                cap = (
                    rng.choice([0.2, 0.5]) * GBITPS
                    if rng.random() < capped_frac
                    else None
                )
                flows.append(
                    Flow(
                        flow_id=f"f{i}", src=a, dst=b,
                        size_bytes=rng.uniform(0.1, 5.0) * MBYTE,
                        start_time=rng.uniform(0.0, stagger_s),
                        max_rate_bps=cap,
                    )
                )
                i += 1
    return flows


def _fluid_results_identical(a, b) -> bool:
    """Dict-level equality of two :class:`FluidResult`s — bitwise, not
    tolerance-based: completion times, remaining bytes, states, end time,
    and every per-flow rate segment."""

    def segs(result):
        return {
            fid: [(s.start, s.end, s.rate_bps) for s in tl.segments]
            for fid, tl in result.timelines.items()
        }

    return (
        a.completion_times == b.completion_times
        and a.remaining_bytes == b.remaining_bytes
        and a.end_time == b.end_time
        and a.states == b.states
        and segs(a) == segs(b)
    )


def bench_fluid_loop(
    pods: int = 8,
    racks_per_pod: int = 8,
    hosts_per_rack: int = 16,
    num_cores: int = 4,
    p_flow: float = 0.10,
    seed: int = 0,
) -> Dict[str, object]:
    """Vectorised fluid event loop vs the scalar loop, identical allocator.

    Both passes use the default (incremental) allocator on the same
    workload, so the A/B isolates the event loop itself: array-backed
    next-event search and batched drain/retire against the per-flow Python
    scan.  The results must be *bit-identical* (dict equality down to rate
    segments), which is the vector loop's contract.
    """
    from repro.net.fluid import LOOP_SCALAR, LOOP_VECTOR
    from repro.net.topology import TreeSpec, build_multi_rooted_tree

    spec = TreeSpec(
        pods=pods, racks_per_pod=racks_per_pod,
        hosts_per_rack=hosts_per_rack, num_cores=num_cores,
    )
    topo = build_multi_rooted_tree(spec)
    flows = _tree_rack_flows(topo, hosts_per_rack, seed, p_flow)

    def run(loop: str):
        sim = FluidSimulation(topo, loop=loop)
        sim.add_flows(flows)
        started = time.perf_counter()
        result = sim.run()
        return time.perf_counter() - started, result

    reference_s, ref = run(LOOP_SCALAR)
    optimized_s, got = run(LOOP_VECTOR)
    return {
        "name": "fluid_loop",
        "params": {
            "pods": pods, "racks_per_pod": racks_per_pod,
            "hosts_per_rack": hosts_per_rack, "num_cores": num_cores,
            "p_flow": p_flow, "n_hosts": len(topo.hosts()),
            **_env_params(),
        },
        "n_flows": len(flows),
        "events": sum(len(tl.segments) for tl in got.timelines.values()),
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "matched": _fluid_results_identical(ref, got),
    }


# ---------------------------------------------------------------------------
# Structured-topology routing fast path
# ---------------------------------------------------------------------------
def bench_routing(
    pods: int = 4,
    racks_per_pod: int = 4,
    hosts_per_rack: int = 64,
    num_cores: int = 4,
    nx_sample: int = 400,
    seed: int = 0,
) -> Dict[str, object]:
    """Structured tree routing vs networkx shortest-path search.

    The structured router computes paths arithmetically from host
    coordinates; networkx searches the graph.  The full ordered host mesh
    is routed through :meth:`path_links_matrix` on the structured side; the
    networkx side is timed on a deterministic sample of pairs (routing the
    full mesh through networkx would take minutes) and extrapolated —
    ``reference_s`` is the extrapolation, ``nx_sample_s`` the measured
    time.  ``matched`` requires the structured node paths and link rows to
    equal networkx's exactly on the sampled pairs.
    """
    from repro.net.links import directed_link_id
    from repro.net.topology import (
        TreeSpec,
        build_multi_rooted_tree,
        clear_route_cache,
        set_structured_routing_enabled,
    )

    spec = TreeSpec(
        pods=pods, racks_per_pod=racks_per_pod,
        hosts_per_rack=hosts_per_rack, num_cores=num_cores,
    )

    previous = set_structured_routing_enabled(False)
    try:
        clear_route_cache()
        topo_nx = build_multi_rooted_tree(spec)
        pairs = topo_nx.host_pairs()
        rng = random.Random(seed)
        sample_idx = sorted(rng.sample(range(len(pairs)), min(nx_sample, len(pairs))))
        sample_pairs = [pairs[i] for i in sample_idx]
        started = time.perf_counter()
        nx_paths = [topo_nx.node_path(a, b) for a, b in sample_pairs]
        nx_sample_s = time.perf_counter() - started
    finally:
        set_structured_routing_enabled(previous)

    clear_route_cache()
    topo_structured = build_multi_rooted_tree(spec)
    started = time.perf_counter()
    rows, lengths, link_ids = topo_structured.path_links_matrix(pairs)
    optimized_s = time.perf_counter() - started

    # Exact agreement on the sampled pairs: node paths and link-index rows.
    index = {lid: i for i, lid in enumerate(link_ids)}
    matched = True
    for k, (a, b), nx_path in zip(sample_idx, sample_pairs, nx_paths):
        if topo_structured.node_path(a, b) != nx_path:
            matched = False
            break
        expected_row = [
            index[directed_link_id(u, v)]
            for u, v in zip(nx_path, nx_path[1:])
        ]
        if rows[k, : lengths[k]].tolist() != expected_row:
            matched = False
            break

    scale_factor = len(pairs) / len(sample_pairs)
    reference_s = nx_sample_s * scale_factor
    return {
        "name": "routing",
        "params": {
            "pods": pods, "racks_per_pod": racks_per_pod,
            "hosts_per_rack": hosts_per_rack, "num_cores": num_cores,
            "n_hosts": len(topo_nx.hosts()), "nx_sample": len(sample_pairs),
            "extrapolated_reference": True,
            **_env_params(),
        },
        "n_pairs": len(pairs),
        "nx_sample_s": round(nx_sample_s, 6),
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "per_pair_nx_us": round(1e6 * nx_sample_s / len(sample_pairs), 3),
        "per_pair_structured_us": round(1e6 * optimized_s / len(pairs), 3),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "matched": matched,
    }


# ---------------------------------------------------------------------------
# Greedy placement
# ---------------------------------------------------------------------------
def _synthetic_profile(machines: Sequence[str], seed: int) -> NetworkProfile:
    rng = random.Random(seed)
    rates = {
        (a, b): rng.uniform(0.1 * GBITPS, 1 * GBITPS)
        for a in machines
        for b in machines
        if a != b
    }
    return NetworkProfile(vms=list(machines), rates_bps=rates)


def bench_greedy(
    n_machines: int = 24,
    n_workers: int = 23,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, object]:
    """Place a scatter/gather application with and without the rate table.

    Heavy worker->frontend responses pin the destination, so every transfer
    scans one candidate per machine — the pattern where the incrementally
    invalidated rate table saves the most recomputation.
    """
    machines = [f"m{i}" for i in range(n_machines)]
    cluster = ClusterState(machines=[Machine(name, cores=4.0) for name in machines])
    profile = _synthetic_profile(machines, seed)
    app = scatter_gather(
        "svc", n_workers,
        request_bytes=4 * MBYTE,
        response_bytes=400 * MBYTE,
        cpu_per_task=1.0,
    )

    def run(use_cache: bool):
        placer = GreedyPlacer(use_rate_cache=use_cache)
        started = time.perf_counter()
        placements = [
            placer.place(app, cluster, profile) for _ in range(repeats)
        ]
        return time.perf_counter() - started, placements[0], placer.last_rate_stats

    reference_s, ref, _ = run(False)
    optimized_s, got, stats = run(True)
    queries = stats["hits"] + stats["misses"]
    return {
        "name": "greedy",
        "params": {
            "n_machines": n_machines, "n_workers": n_workers, "repeats": repeats,
        },
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        # The structural win: candidate-rate queries answered from the
        # incrementally invalidated table instead of being recomputed.
        "rate_queries": queries,
        "rate_recomputed": stats["misses"],
        "rate_cache_hit_%": round(100.0 * stats["hits"] / queries, 1) if queries else None,
        "matched": ref.assignments == got.assignments,
    }


# ---------------------------------------------------------------------------
# ILP placement (Appendix formulation)
# ---------------------------------------------------------------------------
def _ilp_bench_instance(n_tasks: int, n_vms: int, seed: int):
    """A reproducible mid-size instance: a chain of transfers plus random
    extra edges over machines with heterogeneous pair rates."""
    from repro.units import MBITPS
    from repro.workloads.application import Application, Task, TrafficMatrix

    rng = random.Random(seed)
    tasks = [Task(f"t{i}", rng.choice([0.5, 1.0, 2.0])) for i in range(n_tasks)]
    names = [t.name for t in tasks]
    traffic = TrafficMatrix()
    for i in range(n_tasks):
        traffic.add(names[i], names[(i + 1) % n_tasks], rng.uniform(0.5, 4.0) * GBYTE)
    extra = 0
    while extra < n_tasks // 2:
        i, j = rng.randrange(n_tasks), rng.randrange(n_tasks)
        if i != j and traffic.get(names[i], names[j]) == 0:
            traffic.add(names[i], names[j], rng.uniform(0.2, 2.0) * GBYTE)
            extra += 1
    app = Application("ilp-bench", tasks, traffic)
    machines = [f"m{i}" for i in range(n_vms)]
    cluster = ClusterState(machines=[Machine(m, cores=4.0) for m in machines])
    rates = {
        (a, b): rng.uniform(300 * MBITPS, 1.1 * GBITPS)
        for a in machines
        for b in machines
        if a != b
    }
    profile = NetworkProfile(vms=machines, rates_bps=rates)
    return app, cluster, profile


def bench_ilp_scale(
    n_tasks: int = 12,
    n_vms: int = 10,
    seed: int = 0,
) -> Dict[str, object]:
    """Appendix MILP: dense cold formulation vs pruned + warm-started.

    Both placers solve the identical instance to (near-)proven optimality;
    the achieved objectives must agree, so the pruning and the warm-start
    cut are verified exact while being timed.
    """
    from repro.core.estimator import estimate_completion_time
    from repro.core.placement.ilp import OptimalPlacer

    app, cluster, profile = _ilp_bench_instance(n_tasks, n_vms, seed)

    dense = OptimalPlacer(
        formulation="dense", warm_start=False, symmetry_breaking=False,
        mip_rel_gap=1e-9, time_limit_s=600.0,
    )
    started = time.perf_counter()
    dense_placement = dense.place(app, cluster, profile)
    reference_s = time.perf_counter() - started

    pruned = OptimalPlacer(mip_rel_gap=1e-9, time_limit_s=600.0)
    started = time.perf_counter()
    pruned_placement = pruned.place(app, cluster, profile)
    optimized_s = time.perf_counter() - started

    dense_objective = estimate_completion_time(
        dense_placement.assignments, app, profile, model="hose"
    )
    pruned_objective = estimate_completion_time(
        pruned_placement.assignments, app, profile, model="hose"
    )
    dense_stats = dense.last_solve_stats or {}
    pruned_stats = pruned.last_solve_stats or {}
    return {
        "name": "ilp_scale",
        "params": {"n_tasks": n_tasks, "n_vms": n_vms},
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "dense_objective_s": dense_objective,
        "pruned_objective_s": pruned_objective,
        # The structural win: formulation size before/after pruning.
        "dense_vars": dense_stats.get("n_vars"),
        "dense_rows": dense_stats.get("n_rows"),
        "pruned_vars": pruned_stats.get("n_vars"),
        "pruned_rows": pruned_stats.get("n_rows"),
        "pruned_binaries": pruned_stats.get("n_binaries"),
        "warm_start_accepted": pruned_stats.get("warm_start_accepted"),
        "warm_bound_s": pruned_stats.get("warm_bound_s"),
        "mip_nodes_dense": dense_stats.get("mip_nodes"),
        "mip_nodes_pruned": pruned_stats.get("mip_nodes"),
        "matched": _close(dense_objective, pruned_objective, tol=1e-6),
    }


def bench_ilp_pipe(
    n_tasks: int = 12,
    n_vms: int = 10,
    seed: int = 0,
) -> Dict[str, object]:
    """Pipe-model MILP: dense per-pair products vs sender-aggregated rows.

    The pipe model prices every task pair on its own machine-pair rate, so
    the dense formulation carries O(pairs x machines^2) product variables.
    The pruned formulation aggregates them per sender the Glover way —
    O(tasks x machines^2) continuous variables — and must reach the same
    optimal completion time.
    """
    from repro.core.estimator import estimate_completion_time
    from repro.core.placement.ilp import OptimalPlacer

    app, cluster, profile = _ilp_bench_instance(n_tasks, n_vms, seed)

    dense = OptimalPlacer(
        model="pipe", formulation="dense", warm_start=False,
        symmetry_breaking=False, mip_rel_gap=1e-9, time_limit_s=600.0,
    )
    started = time.perf_counter()
    dense_placement = dense.place(app, cluster, profile)
    reference_s = time.perf_counter() - started

    pruned = OptimalPlacer(model="pipe", mip_rel_gap=1e-9, time_limit_s=600.0)
    started = time.perf_counter()
    pruned_placement = pruned.place(app, cluster, profile)
    optimized_s = time.perf_counter() - started

    dense_objective = estimate_completion_time(
        dense_placement.assignments, app, profile, model="pipe"
    )
    pruned_objective = estimate_completion_time(
        pruned_placement.assignments, app, profile, model="pipe"
    )
    dense_stats = dense.last_solve_stats or {}
    pruned_stats = pruned.last_solve_stats or {}
    return {
        "name": "ilp_pipe",
        "params": {"n_tasks": n_tasks, "n_vms": n_vms},
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "dense_objective_s": dense_objective,
        "pruned_objective_s": pruned_objective,
        "dense_vars": dense_stats.get("n_vars"),
        "dense_rows": dense_stats.get("n_rows"),
        "pruned_vars": pruned_stats.get("n_vars"),
        "pruned_rows": pruned_stats.get("n_rows"),
        "mip_nodes_dense": dense_stats.get("mip_nodes"),
        "mip_nodes_pruned": pruned_stats.get("mip_nodes"),
        "matched": _close(dense_objective, pruned_objective, tol=1e-6),
    }


# ---------------------------------------------------------------------------
# Measurement mesh
# ---------------------------------------------------------------------------
def bench_mesh(
    n_vms: int = 10,
    parallelism: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Full-mesh campaign, serial vs batched coordinator.

    The batched mesh reduces the *modelled* campaign wall-clock (the
    quantity the paper's 90-second budget is about); the simulated probes
    themselves still run one by one.  Determinism is checked by re-running
    the batched campaign on an identically seeded provider.
    """

    def campaign(par: int, provider_seed: int):
        provider = make_provider("ec2", seed=provider_seed)
        provider.request_vms(n_vms)
        plan = MeasurementPlan(advance_clock=False, parallelism=par)
        measurer = NetworkMeasurer(provider, plan=plan)
        started = time.perf_counter()
        profile = measurer.measure()
        return time.perf_counter() - started, profile

    serial_wall, serial_profile = campaign(1, seed)
    batched_wall, batched_profile = campaign(parallelism, seed)
    _, batched_again = campaign(parallelism, seed)

    deterministic = batched_profile.rates_bps == batched_again.rates_bps
    same_pairs = set(serial_profile.pairs()) == set(batched_profile.pairs())
    modeled_serial = serial_profile.measurement_duration_s
    modeled_batched = batched_profile.measurement_duration_s
    return {
        "name": "mesh",
        "params": {"n_vms": n_vms, "parallelism": parallelism},
        "pairs": len(serial_profile.pairs()),
        "serial_wall_s": round(serial_wall, 6),
        "batched_wall_s": round(batched_wall, 6),
        "modeled_serial_s": round(modeled_serial, 3),
        "modeled_batched_s": round(modeled_batched, 3),
        "modeled_speedup": (
            round(modeled_serial / modeled_batched, 3) if modeled_batched else None
        ),
        "matched": deterministic and same_pairs,
    }


# ---------------------------------------------------------------------------
# End-to-end experiments sweep
# ---------------------------------------------------------------------------
def bench_e2e_experiments(
    quick: bool = False,
    seed: int = 0,
) -> Dict[str, object]:
    """The ``python -m repro.experiments bench`` sweep, reference vs optimised.

    Both passes run the identical grid in-process; ``reference_mode``
    switches the library onto the pre-optimisation code paths.  Trial
    metrics must agree — the optimisations are exact.
    """
    if quick:
        scenario_params = {
            "all-to-all": {"n_vms": 6, "n_tasks": 6},
            "partition-aggregate": {"n_vms": 6, "n_workers": 5},
        }
        scenarios = ("all-to-all", "partition-aggregate")
        trials = 2
    else:
        # Weighted toward flow-heavy cells: the paper's sweeps are dominated
        # by exactly these (many concurrent transfers, event churn), which is
        # where the pre-optimisation code scales worst.
        scenario_params = {
            "all-to-all": {"n_vms": 16, "n_tasks": 36},
            "bursty-mapreduce": {"n_vms": 16, "n_mappers": 20, "n_reducers": 20},
            "multi-app-sequence": {"n_vms": 10, "n_apps": 5},
        }
        scenarios = ("all-to-all", "bursty-mapreduce", "multi-app-sequence")
        trials = 3
    config = ExperimentConfig(
        scenarios=scenarios,
        placers=("greedy",),
        trials=trials,
        base_seed=seed,
        baseline="random",
        workers=1,
        scenario_params=scenario_params,
    )

    with reference_mode():
        started = time.perf_counter()
        ref_result = ExperimentRunner(config).run()
        reference_s = time.perf_counter() - started

    clear_route_cache()  # the optimised pass must not inherit warm routes
    started = time.perf_counter()
    opt_result = ExperimentRunner(config).run()
    optimized_s = time.perf_counter() - started

    matched = len(ref_result.records) == len(opt_result.records)
    if matched:
        for ref_rec, opt_rec in zip(ref_result.records, opt_result.records):
            if (
                (ref_rec.scenario, ref_rec.placer, ref_rec.trial)
                != (opt_rec.scenario, opt_rec.placer, opt_rec.trial)
                or ref_rec.status != opt_rec.status
                or not _close(ref_rec.makespan_s or 0.0, opt_rec.makespan_s or 0.0)
                or not _close(
                    ref_rec.total_running_time_s or 0.0,
                    opt_rec.total_running_time_s or 0.0,
                )
            ):
                matched = False
                break
    return {
        "name": "e2e_experiments",
        "params": {
            "scenarios": list(scenarios),
            "trials": trials,
            "scenario_params": {k: dict(v) for k, v in scenario_params.items()},
        },
        "trials_total": len(opt_result.records),
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "matched": matched,
    }


# ---------------------------------------------------------------------------
# Sweep resume (persistent result store)
# ---------------------------------------------------------------------------
def bench_sweep_resume(
    quick: bool = False,
    seed: int = 0,
) -> Dict[str, object]:
    """Cold vs. warm sweep against a persistent :class:`ResultStore`.

    The cold pass executes every cell and populates a fresh store; the warm
    pass re-runs the *identical* config against it.  The warm pass must
    execute zero trials and reproduce the cold pass's result JSON
    bit-for-bit (cached records carry the cold run's timings), which is the
    resume guarantee the ROADMAP's persistent-cache item asks for.
    """
    if quick:
        scenarios: Tuple[str, ...] = ("smoke",)
        scenario_params: Dict[str, Dict[str, object]] = {}
        trials = 2
    else:
        # Flow-heavy cells, as in the full e2e bench: the resume win scales
        # with how expensive the cells being skipped are.
        scenarios = ("all-to-all", "bursty-mapreduce", "ec2-trace-replay")
        scenario_params = {
            "all-to-all": {"n_vms": 16, "n_tasks": 36},
            "bursty-mapreduce": {"n_vms": 16, "n_mappers": 20, "n_reducers": 20},
            "ec2-trace-replay": {"n_vms": 10, "n_apps": 4},
        }
        trials = 3

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        config = ExperimentConfig(
            scenarios=scenarios,
            placers=("greedy",),
            trials=trials,
            base_seed=seed,
            baseline="random",
            workers=1,
            backend="inline",
            cache_dir=tmp,
            scenario_params=scenario_params,
        )

        cold_runner = ExperimentRunner(config)
        started = time.perf_counter()
        cold = cold_runner.run()
        cold_s = time.perf_counter() - started

        warm_runner = ExperimentRunner(config)
        started = time.perf_counter()
        warm = warm_runner.run()
        warm_s = time.perf_counter() - started

        cold_stats = cold_runner.last_stats
        warm_stats = warm_runner.last_stats

    identical = json.dumps(cold.to_json_dict(), sort_keys=True) == json.dumps(
        warm.to_json_dict(), sort_keys=True
    )
    return {
        "name": "sweep_resume",
        "params": {
            "scenarios": list(scenarios),
            "trials": trials,
            "scenario_params": {k: dict(v) for k, v in scenario_params.items()},
        },
        "trials_total": len(cold.records),
        "cold_executed": cold_stats.executed,
        "warm_executed": warm_stats.executed,
        "warm_cache_hits": warm_stats.cache_hits,
        "reference_s": round(cold_s, 6),
        "optimized_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "matched": identical and warm_stats.executed == 0,
    }


# ---------------------------------------------------------------------------
# Multi-worker remote fabric
# ---------------------------------------------------------------------------
def bench_multi_worker(
    quick: bool = False,
    seed: int = 0,
) -> Dict[str, object]:
    """1-worker vs. N-worker wall clock through the remote sweep fabric.

    Both passes push the same mixed grid — a handful of ilp cells that
    dwarf everything else, plus cheap greedy/random cells — through real
    localhost worker processes speaking the lease protocol.  The single
    worker pass doubles as the reference: the fleet pass must reproduce
    its records bit for bit (modulo host wall-clock fields).

    The passes share one result store, so the fleet pass chunks by
    *observed* per-cell cost from the first pass rather than priors —
    which is what keeps every worker fed (``matched`` bounds the maximum
    worker idle fraction, the no-stranding guarantee of the cost-aware
    chunker).  Salvage/retry counters ride along and must stay zero: this
    is the fault-free path.

    The suite floor binds ``scheduled_parallelism`` (total worker busy
    time / makespan) rather than the wall-clock ratio: keeping >= 2 of the
    4 workers fed concurrently is the fabric's promise and holds on any
    host, while wall-clock speedup additionally needs >= 2 physical cores
    (it is still reported, with ``host_cpus`` for context).
    """
    from repro.experiments.backends import create_backend
    from repro.experiments.results import (
        HOST_TIMING_FIELDS,
        SOLVER_RUN_STAT_KEYS,
    )
    from repro.experiments.trials import WorkItem

    if quick:
        fleet = 2
        grid: List[Tuple[str, Dict[str, object], int]] = [
            ("greedy", {}, 3), ("random", {}, 3),
        ]
        scenario, scenario_params = "smoke", {}
    else:
        fleet = 4
        # ~1.2 s per ilp cell at this size; the light cells are <10 ms.
        grid = [("ilp", {}, 8), ("greedy", {}, 8), ("random", {}, 8)]
        scenario, scenario_params = "all-to-all", {"n_vms": 6, "n_tasks": 7}

    items = [
        WorkItem.make(
            scenario, placer, trial, seed,
            params=scenario_params, placer_params=placer_params,
        )
        for placer, placer_params, trials in grid
        for trial in range(trials)
    ]

    def canonical(records) -> str:
        # Same canonical form as ExperimentResult.canonical_json_dict: drop
        # host wall-clock fields, and for solver-backed cells the per-run
        # solver facts (solve wall, node counts, ...) that vary run to run.
        payload = []
        for rec in records:
            data = {
                k: v
                for k, v in vars(rec).items()
                if k not in HOST_TIMING_FIELDS
            }
            if data.get("solver_stats"):
                data["solver_stats"] = {
                    app: {
                        k: v
                        for k, v in app_stats.items()
                        if k not in SOLVER_RUN_STAT_KEYS
                    }
                    for app, app_stats in data["solver_stats"].items()
                }
            payload.append(data)
        return json.dumps(payload, sort_keys=True)

    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as tmp:
        single = create_backend(
            "remote", workers=1, options={"store_root": tmp}
        )
        started = time.perf_counter()
        reference_records = single.map_trials(items)
        reference_s = time.perf_counter() - started
        single_stats = single.last_fabric_stats

        many = create_backend(
            "remote", workers=fleet, options={"store_root": tmp}
        )
        started = time.perf_counter()
        fleet_records = many.map_trials(items)
        optimized_s = time.perf_counter() - started
        fleet_stats = many.last_fabric_stats

    identical = canonical(reference_records) == canonical(fleet_records)
    fault_free = all(
        single_stats[k] == 0 and fleet_stats[k] == 0
        for k in ("retry_waves", "retried_trials", "salvaged_records")
    )
    idle_fraction = fleet_stats["max_worker_idle_fraction"]
    scheduled = fleet_stats["scheduled_parallelism"]
    matched = identical and fault_free
    if not quick:
        # The cost-aware chunker's no-stranding guarantee: with observed
        # costs, no worker of the fleet may sit idle for most of the run.
        matched = matched and fleet_stats["cost_source"] == "observed"
        matched = matched and idle_fraction <= MAX_WORKER_IDLE_FRACTION
    return {
        "name": "multi_worker",
        "params": {
            "scenario": scenario,
            "scenario_params": scenario_params,
            "grid": [
                {"placer": placer, "trials": trials}
                for placer, _, trials in grid
            ],
            "workers": fleet,
            "host_cpus": os.cpu_count(),
        },
        "trials_total": len(items),
        "reference_s": round(reference_s, 6),
        "optimized_s": round(optimized_s, 6),
        "speedup": round(reference_s / optimized_s, 3) if optimized_s else None,
        "scheduled_parallelism": scheduled,
        "cost_source": fleet_stats["cost_source"],
        "max_worker_idle_fraction": idle_fraction,
        "max_worker_idle_fraction_max": MAX_WORKER_IDLE_FRACTION,
        "salvaged_records": fleet_stats["salvaged_records"],
        "retried_trials": fleet_stats["retried_trials"],
        "stragglers_redispatched": fleet_stats["stragglers_redispatched"],
        "matched": matched,
    }


# ---------------------------------------------------------------------------
# Service churn (online placement service)
# ---------------------------------------------------------------------------
def bench_service_churn(
    quick: bool = False,
    seed: int = 0,
) -> Dict[str, object]:
    """Churn-session throughput and predictor regret vs. the oracle.

    Times one combined-predictor session end to end (streaming admission,
    TTL-cached measurement, forecasts, migration) and reports applications
    admitted per wall-second plus the mean-completion-time regret of the
    combined and stale predictors against the oracle session on the same
    seed.  ``matched`` asserts the session is *deterministic*: an identical
    re-run must reproduce the canonical report bit for bit — the guarantee
    the CI service smoke job builds on.
    """
    from repro.service.session import run_churn_session

    if quick:
        session = dict(
            n_vms=6, hours=3.0, drift="hotspot-flap", epoch_s=120.0,
            apps_per_hour=1.5,
        )
    else:
        session = dict(
            n_vms=10, hours=6.0, drift="hotspot-flap", epoch_s=300.0,
            apps_per_hour=2.0,
        )

    started = time.perf_counter()
    report = run_churn_session(
        seed, predictor="combined", placer="greedy", **session
    )
    combined_s = time.perf_counter() - started
    rerun = run_churn_session(
        seed, predictor="combined", placer="greedy", **session
    )
    oracle = run_churn_session(
        seed, predictor="oracle", placer="greedy", **session
    )
    stale = run_churn_session(
        seed, predictor="stale", placer="greedy", **session
    )

    deterministic = json.dumps(
        report.canonical_json_dict(), sort_keys=True
    ) == json.dumps(rerun.canonical_json_dict(), sort_keys=True)
    admitted = len(report.completed())

    def _mean(rep) -> Optional[float]:
        if not rep.completed():
            return None
        return round(rep.mean_completion_time_s, 3)

    def _regret(rep) -> Optional[float]:
        if not rep.completed() or not oracle.completed():
            return None
        return round(
            rep.mean_completion_time_s / oracle.mean_completion_time_s - 1.0, 4
        )

    return {
        "name": "service_churn",
        "params": dict(session),
        "apps_admitted": admitted,
        "apps_rejected": len(report.rejected()),
        "migrations": len(report.migrations),
        "pairs_measured": report.measurement.get("pairs_measured"),
        "pairs_reused": report.measurement.get("pairs_reused"),
        "session_wall_s": round(combined_s, 6),
        "apps_admitted_per_s": (
            round(admitted / combined_s, 3) if combined_s else None
        ),
        "mean_completion_combined_s": _mean(report),
        "mean_completion_oracle_s": _mean(oracle),
        "mean_completion_stale_s": _mean(stale),
        "regret_combined_vs_oracle": _regret(report),
        "regret_stale_vs_oracle": _regret(stale),
        "matched": deterministic,
    }


# ---------------------------------------------------------------------------
# Fault injection (self-healing control loop)
# ---------------------------------------------------------------------------
def bench_faults(
    quick: bool = False,
    seed: int = 0,
) -> Dict[str, object]:
    """Recovery cost of the self-healing service under injected faults.

    Runs the same churn session fault-free and with the ``random-preempt``
    fault generator, and reports the recovery latency (fault instant to the
    epoch boundary where the service re-placed the affected tasks), the
    completion-time degradation the faults caused, and the re-placement
    throughput.  ``matched`` asserts three robustness invariants: the
    faulted session is deterministic (an identical re-run reproduces the
    canonical report bit for bit), an *empty* fault timeline leaves the
    report bit-identical to the no-faults path, and every application still
    terminates (completed or gracefully rejected) despite mid-session
    preemptions.
    """
    from repro.faults import FaultTimeline, attach_faults
    from repro.service.engine import PlacementService
    from repro.service.session import _resolve_placer, build_churn_session, run_churn_session

    if quick:
        session = dict(
            n_vms=6, hours=3.0, drift="random-walk", epoch_s=120.0,
            apps_per_hour=1.5,
        )
    else:
        session = dict(
            n_vms=10, hours=6.0, drift="random-walk", epoch_s=300.0,
            apps_per_hour=2.0,
        )
    faulted = dict(session, faults="random-preempt")

    clean = run_churn_session(seed, predictor="combined", placer="greedy", **session)
    started = time.perf_counter()
    report = run_churn_session(seed, predictor="combined", placer="greedy", **faulted)
    faulted_s = time.perf_counter() - started
    rerun = run_churn_session(seed, predictor="combined", placer="greedy", **faulted)

    deterministic = json.dumps(
        report.canonical_json_dict(), sort_keys=True
    ) == json.dumps(rerun.canonical_json_dict(), sort_keys=True)

    # Empty fault timeline must be inert: attach one explicitly and compare
    # against the plain no-faults session on the same seed.
    provider, cluster, apps, _ = build_churn_session(seed, **session)
    attach_faults(provider, FaultTimeline())
    empty_report = PlacementService(
        provider, cluster, _resolve_placer("greedy", seed, None),
        predictor="combined",
    ).run_session(apps, hours=float(session["hours"]))
    empty_inert = json.dumps(
        empty_report.canonical_json_dict(), sort_keys=True
    ) == json.dumps(clean.canonical_json_dict(), sort_keys=True)

    all_terminated = all(
        outcome.status in ("completed", "rejected") for outcome in report.apps
    )

    latencies = [action.latency_s for action in report.recovery]
    replacements = sum(
        1 for action in report.recovery if action.action == "re-placed"
    )
    apps_replaced = sum(
        len(action.apps) for action in report.recovery
        if action.action == "re-placed"
    )

    def _mean_completion(rep) -> Optional[float]:
        if not rep.completed():
            return None
        return round(rep.mean_completion_time_s, 3)

    degradation = None
    if clean.completed() and report.completed():
        degradation = round(
            report.mean_completion_time_s / clean.mean_completion_time_s - 1.0,
            4,
        )

    return {
        "name": "faults",
        "params": dict(faulted),
        "fault_events": len(report.recovery),
        "apps_replaced": apps_replaced,
        "replacements": replacements,
        "apps_rejected": len(report.rejected()),
        "pairs_degraded": report.measurement.get("pairs_degraded"),
        "mean_recovery_latency_s": (
            round(sum(latencies) / len(latencies), 3) if latencies else None
        ),
        "max_recovery_latency_s": (
            round(max(latencies), 3) if latencies else None
        ),
        "mean_completion_clean_s": _mean_completion(clean),
        "mean_completion_faulted_s": _mean_completion(report),
        "completion_degradation": degradation,
        "session_wall_s": round(faulted_s, 6),
        "apps_recovered_per_s": (
            round(apps_replaced / faulted_s, 3) if faulted_s else None
        ),
        "matched": deterministic and empty_inert and all_terminated,
    }


# ---------------------------------------------------------------------------
# Datacenter scale (vectorised allocator + hierarchical greedy)
# ---------------------------------------------------------------------------
_SCALE_RACK_SIZE = 32


def _hose_mesh_instance(
    n_vms: int, seed: int
) -> Tuple[Dict[str, float], Dict[str, FlowDemand]]:
    """A rack-structured allocation instance built directly on link ids.

    Every VM has a 1 Gbit/s access link; racks of 32 VMs share a 10 Gbit/s
    uplink.  Flows (two per VM) cross racks most of the time, so both the
    access tier and the uplinks carry real contention.  No topology object
    or routing is involved — this isolates the allocator itself, which is
    what lets the instance reach 4096 VMs.
    """
    rng = random.Random(seed * 1_000_003 + n_vms)
    n_racks = (n_vms + _SCALE_RACK_SIZE - 1) // _SCALE_RACK_SIZE
    caps: Dict[str, float] = {f"up{r}": 10 * GBITPS for r in range(n_racks)}
    for i in range(n_vms):
        caps[f"acc{i}"] = 1 * GBITPS
    demands: Dict[str, FlowDemand] = {}
    for f in range(2 * n_vms):
        src = rng.randrange(n_vms)
        dst = rng.randrange(n_vms - 1)
        if dst >= src:
            dst += 1
        links = [f"acc{src}"]
        src_rack, dst_rack = src // _SCALE_RACK_SIZE, dst // _SCALE_RACK_SIZE
        if src_rack != dst_rack:
            links += [f"up{src_rack}", f"up{dst_rack}"]
        links.append(f"acc{dst}")
        cap = rng.uniform(0.05 * GBITPS, 0.9 * GBITPS) if rng.random() < 0.3 else None
        demands[f"f{f}"] = FlowDemand(links=tuple(links), max_rate=cap)
    return caps, demands


def _rack_profile(n_vms: int, seed: int):
    """Rack-structured pair rates as a :class:`MatrixNetworkProfile`.

    Intra-rack pairs see ~1 Gbit/s and inter-rack pairs ~0.2 Gbit/s, both
    with ±10% multiplicative noise — the clustered structure the paper
    measures on EC2 and the hierarchical greedy placer exploits.
    """
    import numpy as np

    from repro.core.network_profile import MatrixNetworkProfile

    machines = [f"m{i}" for i in range(n_vms)]
    rack = np.arange(n_vms) // _SCALE_RACK_SIZE
    base = np.where(
        rack[:, None] == rack[None, :], 1.0 * GBITPS, 0.2 * GBITPS
    )
    noise = np.random.default_rng(seed * 7 + n_vms).uniform(
        0.9, 1.1, (n_vms, n_vms)
    )
    return machines, MatrixNetworkProfile(machines, base * noise)


def _scale_allocator(n_vms: int, seed: int, with_reference: bool) -> Dict[str, object]:
    caps, demands = _hose_mesh_instance(n_vms, seed)

    def solve(mode: str):
        allocator = IncrementalAllocator(caps, mode=mode)
        for fid, demand in demands.items():
            allocator.add_demand(fid, demand)
        started = time.perf_counter()
        rates = allocator.solve()
        return time.perf_counter() - started, rates, allocator

    scalar_s, scalar_rates, _ = solve("scalar")
    vector_s, vector_rates, _ = solve("vector")
    auto = IncrementalAllocator(caps)
    for fid, demand in demands.items():
        auto.add_demand(fid, demand)

    entry: Dict[str, object] = {
        "n_flows": len(demands),
        "n_links": len(caps),
        "scalar_s": round(scalar_s, 6),
        "vector_s": round(vector_s, 6),
        "auto_picks_vector": auto.uses_vector_path(),
        "bit_identical": scalar_rates == vector_rates,
    }

    if with_reference:
        started = time.perf_counter()
        ref_rates = max_min_allocation(demands, caps)
        entry["reference_s"] = round(time.perf_counter() - started, 6)
        diff = _rates_diff(ref_rates, vector_rates)
        entry["max_relative_diff_vs_reference"] = diff
        entry["speedup_vector_vs_reference"] = (
            round(entry["reference_s"] / vector_s, 3) if vector_s else None
        )
        entry["matched"] = bool(entry["bit_identical"] and diff <= 1e-9)
    else:
        entry["reference_s"] = None
        entry["matched"] = bool(entry["bit_identical"])
    entry["speedup_vector_vs_scalar"] = (
        round(scalar_s / vector_s, 3) if vector_s else None
    )
    return entry


def _scale_greedy(
    n_vms: int, seed: int, with_flat: bool, n_workers: int = 24
) -> Dict[str, object]:
    machines, profile = _rack_profile(n_vms, seed)
    cluster = ClusterState(machines=[Machine(m, cores=4.0) for m in machines])
    app = scatter_gather(
        "svc", n_workers,
        request_bytes=4 * MBYTE,
        response_bytes=400 * MBYTE,
        cpu_per_task=1.0,
    )

    hier = GreedyPlacer(cluster_threshold=1)
    started = time.perf_counter()
    hier_placement = hier.place(app, cluster, profile)
    hier_s = time.perf_counter() - started

    entry: Dict[str, object] = {
        "n_machines": n_vms,
        "n_tasks": n_workers + 1,
        "hier_s": round(hier_s, 6),
        "cluster_stats": dict(hier.last_cluster_stats or {}),
        "hier_placed": len(hier_placement.assignments),
    }
    if with_flat:
        flat = GreedyPlacer(cluster_threshold=10**9)
        started = time.perf_counter()
        flat_placement = flat.place(app, cluster, profile)
        flat_s = time.perf_counter() - started
        entry["flat_s"] = round(flat_s, 6)
        entry["speedup_hier_vs_flat"] = round(flat_s / hier_s, 3) if hier_s else None
        entry["flat_placed"] = len(flat_placement.assignments)
    else:
        entry["flat_s"] = None
    return entry


def _scale_fluid(n_vms: int, seed: int, until: float = 1.0) -> Dict[str, object]:
    from repro.net.fluid import ALLOCATOR_VECTOR

    topo = build_two_rack_cloud(n_pairs=n_vms // 2)
    flows = _fluid_workload(seed, n_vms // 2, n_vms)

    def run(mode: str):
        sim = FluidSimulation(topo, allocator=mode)
        sim.add_flows(flows)
        started = time.perf_counter()
        result = sim.run(until=until)
        return time.perf_counter() - started, result

    reference_s, ref = run(ALLOCATOR_REFERENCE)
    vector_s, got = run(ALLOCATOR_VECTOR)
    agrees = (
        set(ref.completion_times) == set(got.completion_times)
        and _close(ref.end_time, got.end_time)
        and all(
            _close(t, got.completion_times[fid])
            for fid, t in ref.completion_times.items()
        )
        and all(
            _close(rem, got.remaining_bytes[fid], tol=1e-6)
            for fid, rem in ref.remaining_bytes.items()
        )
    )
    return {
        "n_vms": n_vms,
        "n_flows": len(flows),
        "until_s": until,
        "reference_s": round(reference_s, 6),
        "vector_s": round(vector_s, 6),
        "speedup": round(reference_s / vector_s, 3) if vector_s else None,
        "matched": agrees,
    }


def _scale_fluid_mega(
    seed: int,
    pods: int = 10,
    racks_per_pod: int = 16,
    hosts_per_rack: int = 64,
    num_cores: int = 8,
    until: float = 17.0,
) -> Dict[str, object]:
    """Million-flow fluid advance on a 10k-host tree, vector vs scalar loop.

    One pod's hosts form a full ordered mesh (1024 hosts -> 1,047,552
    flows) of 1/2/4 MB transfers starting together — the most adversarial
    shape for the allocator (a single million-flow sharing component) and
    for the event loop (every event re-scans every flow on the scalar
    path).  The advance is truncated at ``until``, chosen to include the
    first completion batches; both loops run the *same* truncated window,
    and ``matched`` asserts their results are bit-identical over it.
    ``setup_s`` (topology build + flow registration) is reported separately
    from the timed advance.
    """
    from repro.net.fluid import LOOP_SCALAR, LOOP_VECTOR
    from repro.net.topology import TreeSpec, build_multi_rooted_tree

    spec = TreeSpec(
        pods=pods, racks_per_pod=racks_per_pod,
        hosts_per_rack=hosts_per_rack, num_cores=num_cores,
    )
    started = time.perf_counter()
    topo = build_multi_rooted_tree(spec)
    pod = _numeric_hosts(topo)[: racks_per_pod * hosts_per_rack]
    sizes = (1 * MBYTE, 2 * MBYTE, 4 * MBYTE)
    flows = [
        Flow(flow_id=f"f{i}", src=a, dst=b, size_bytes=sizes[i % 3], start_time=0.0)
        for i, (a, b) in enumerate(itertools.permutations(pod, 2))
    ]
    build_s = time.perf_counter() - started

    def run(loop: str):
        sim = FluidSimulation(topo, loop=loop)
        setup_started = time.perf_counter()
        sim.add_flows(flows)
        setup = time.perf_counter() - setup_started
        run_started = time.perf_counter()
        result = sim.run(until=until)
        return time.perf_counter() - run_started, setup, result

    vector_s, vector_setup_s, got = run(LOOP_VECTOR)
    scalar_s, scalar_setup_s, ref = run(LOOP_SCALAR)
    completed = sum(
        1 for state in got.states.values() if state.name == "COMPLETED"
    )
    return {
        "n_hosts": len(topo.hosts()),
        "n_flows": len(flows),
        "until_s": until,
        "completed": completed,
        "build_s": round(build_s, 6),
        "setup_s": round(vector_setup_s + scalar_setup_s, 6),
        "scalar_s": round(scalar_s, 6),
        "vector_s": round(vector_s, 6),
        "speedup": round(scalar_s / vector_s, 3) if vector_s else None,
        "matched": _fluid_results_identical(ref, got),
    }


def _scale_equivalence_control(seed: int, n_vms: int = 16) -> Dict[str, object]:
    """Flat vs singleton-clustered hierarchical greedy must coincide exactly."""
    machines, profile = _rack_profile(n_vms, seed)
    cluster = ClusterState(machines=[Machine(m, cores=4.0) for m in machines])
    app = scatter_gather(
        "ctl", n_vms - 2,
        request_bytes=4 * MBYTE,
        response_bytes=200 * MBYTE,
        cpu_per_task=1.0,
    )
    flat = GreedyPlacer(cluster_threshold=10**9).place(app, cluster, profile)
    hier = GreedyPlacer(cluster_threshold=1, n_clusters=n_vms).place(
        app, cluster, profile
    )
    return {
        "n_machines": n_vms,
        "matched": flat.assignments == hier.assignments,
    }


def bench_scale(
    sizes: Sequence[int] = (256, 1024, 4096),
    seed: int = 0,
    mega: bool = True,
) -> Dict[str, object]:
    """Datacenter-scale sweep: allocator, greedy, and one fluid advance.

    Per mesh size: the vectorised allocator against the scalar incremental
    path (bit-identical, all sizes) and the from-scratch reference
    (≤ 1024 VMs — it is the thing being beaten); hierarchical greedy
    against flat greedy (flat ≤ 1024 VMs); and one bounded fluid advance,
    vector vs reference allocator (≤ 1024 VMs, routing-limited).  Dropped
    components are recorded per entry rather than silently skipped.  The
    headline ``speedup`` is vector-vs-reference at the largest size where
    the reference ran.

    With ``mega`` (the default; disabled under ``--quick``) the sweep adds
    the million-flow fluid advance on a 10k-host tree — see
    :func:`_scale_fluid_mega` — recorded under ``"mega"`` with its own
    vector-vs-scalar speedup floor.
    """
    reference_cap = 1024
    per_size: Dict[str, Dict[str, object]] = {}
    checks: List[bool] = []
    headline: Optional[Tuple[float, Optional[float]]] = None

    for n_vms in sizes:
        with_reference = n_vms <= reference_cap
        entry: Dict[str, object] = {
            "allocator": _scale_allocator(n_vms, seed, with_reference),
            "greedy": _scale_greedy(n_vms, seed, with_flat=with_reference),
        }
        skipped = []
        if with_reference:
            entry["fluid"] = _scale_fluid(n_vms, seed)
            checks.append(bool(entry["fluid"]["matched"]))
        else:
            skipped += ["allocator_reference", "greedy_flat", "fluid"]
        entry["skipped"] = skipped
        checks.append(bool(entry["allocator"]["matched"]))
        per_size[str(n_vms)] = entry
        if with_reference:
            headline = (
                entry["allocator"]["reference_s"],
                entry["allocator"]["vector_s"],
            )

    control = _scale_equivalence_control(seed)
    checks.append(bool(control["matched"]))

    mega_entry: Optional[Dict[str, object]] = None
    if mega:
        mega_entry = _scale_fluid_mega(seed)
        checks.append(bool(mega_entry["matched"]))

    reference_s, optimized_s = headline if headline else (None, None)
    return {
        "name": "scale",
        "params": {
            "sizes": list(sizes),
            "rack_size": _SCALE_RACK_SIZE,
            "mega": mega,
            **_env_params(),
        },
        "per_size": per_size,
        "mega": mega_entry,
        "equivalence_control": control,
        "reference_s": reference_s,
        "optimized_s": optimized_s,
        "speedup": (
            round(reference_s / optimized_s, 3)
            if reference_s and optimized_s
            else None
        ),
        "matched": all(checks),
    }


# ---------------------------------------------------------------------------
# Telemetry overhead (repro.obs)
# ---------------------------------------------------------------------------
def _stub_telemetry() -> Callable[[], None]:
    """Patch the ``repro.obs`` hooks to near-zero stubs; returns an undo.

    The pre-instrumentation code no longer exists, so the baseline the
    overhead ratios divide by is approximated by swapping every hook the
    hot paths call — ``obs.span``/``obs.point`` and the instrument update
    methods — for do-nothing stand-ins.  What remains in a stubbed run is
    one Python call per site, the floor any instrumentation scheme pays.
    """
    from repro import obs
    from repro.obs.metrics import Counter, Gauge, Histogram

    class _Null:
        __slots__ = ()

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def set(self, **attrs):
            return None

    null = _Null()
    saved = (
        obs.span, obs.point,
        Counter.inc, Gauge.set, Gauge.inc, Gauge.dec, Histogram.observe,
    )
    obs.span = lambda name, **attrs: null
    obs.point = lambda name, **attrs: None
    Counter.inc = lambda self, amount=1.0: None
    Gauge.set = lambda self, value: None
    Gauge.inc = lambda self, amount=1.0: None
    Gauge.dec = lambda self, amount=1.0: None
    Histogram.observe = lambda self, value: None

    def undo() -> None:
        (obs.span, obs.point, Counter.inc, Gauge.set, Gauge.inc,
         Gauge.dec, Histogram.observe) = saved

    return undo


def bench_obs(
    pods: int = 8,
    racks_per_pod: int = 8,
    hosts_per_rack: int = 16,
    num_cores: int = 4,
    p_flow: float = 0.10,
    repeats: int = 7,
    inner: int = 3,
    seed: int = 0,
) -> Dict[str, object]:
    """Telemetry overhead on the ``fluid_loop`` workload, three ways.

    Times the same rack-mesh fluid simulation (the ``fluid_loop`` bench's
    workload, production event loop and allocator) under three telemetry
    states:

    * ``baseline`` — obs hooks stubbed out (:func:`_stub_telemetry`),
      approximating the pre-instrumentation code;
    * ``disabled`` — tracing off, the production default: no-op spans plus
      live counters;
    * ``enabled`` — tracing spans to a JSONL file.

    Rounds are interleaved (baseline, disabled, enabled, repeat) so slow
    machine drift hits all three states equally; each state keeps its best
    (minimum) round of ``inner`` summed runs, and the garbage collector is
    paused across the timed region (collections landing in one state's
    sample would drown the ≤2% budget).  ``matched`` asserts the
    three states' results are bit-identical — tracing is pure observation
    — and that the enabled pass actually wrote trace events.  The floors
    bound the overhead: disabled ≤ 2% and enabled ≤ 10% over baseline,
    exposed as *headroom* values ``(1 + budget) / ratio`` so the generic
    ``targets`` machinery (which checks ``value >= floor``) applies with a
    floor of 1.0.
    """
    from repro import obs
    from repro.net.topology import TreeSpec, build_multi_rooted_tree

    spec = TreeSpec(
        pods=pods, racks_per_pod=racks_per_pod,
        hosts_per_rack=hosts_per_rack, num_cores=num_cores,
    )
    topo = build_multi_rooted_tree(spec)
    flows = _tree_rack_flows(topo, hosts_per_rack, seed, p_flow)

    def run_once():
        sim = FluidSimulation(topo)
        sim.add_flows(flows)
        started = time.perf_counter()
        result = sim.run()
        return time.perf_counter() - started, result

    def timed_sample():
        elapsed, result = 0.0, None
        for _ in range(inner):
            wall, result = run_once()
            elapsed += wall
        return elapsed, result

    run_once()  # warm the route cache before any timed state

    prior_trace = obs.trace_path()
    best: Dict[str, float] = {}
    results: Dict[str, object] = {}

    def record(state: str, elapsed: float, result) -> None:
        if state not in best or elapsed < best[state]:
            best[state] = elapsed
        results[state] = result

    import gc

    gc_was_enabled = gc.isenabled()
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        trace_file = os.path.join(tmp, "trace.jsonl")
        try:
            gc.collect()
            gc.disable()
            for _ in range(repeats):
                undo = _stub_telemetry()
                try:
                    elapsed, result = timed_sample()
                finally:
                    undo()
                record("baseline", elapsed, result)

                obs.configure(None, export_env=False)
                record("disabled", *timed_sample())

                obs.configure(trace_file, export_env=False)
                try:
                    record("enabled", *timed_sample())
                finally:
                    obs.configure(None, export_env=False)
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
            obs.configure(prior_trace, export_env=False)
        with open(trace_file, encoding="utf-8") as fh:
            trace_events = sum(1 for _ in fh)

    baseline_s = best["baseline"]
    disabled_ratio = best["disabled"] / baseline_s if baseline_s else None
    enabled_ratio = best["enabled"] / baseline_s if baseline_s else None
    matched = (
        _fluid_results_identical(results["baseline"], results["disabled"])
        and _fluid_results_identical(results["disabled"], results["enabled"])
        and trace_events > 0
    )
    return {
        "name": "obs",
        "params": {
            "pods": pods, "racks_per_pod": racks_per_pod,
            "hosts_per_rack": hosts_per_rack, "num_cores": num_cores,
            "p_flow": p_flow, "repeats": repeats, "inner": inner,
            "n_hosts": len(topo.hosts()),
            **_env_params(),
        },
        "n_flows": len(flows),
        "trace_events": trace_events,
        "baseline_s": round(baseline_s, 6),
        "disabled_s": round(best["disabled"], 6),
        "enabled_s": round(best["enabled"], 6),
        "disabled_overhead_ratio": (
            round(disabled_ratio, 4) if disabled_ratio is not None else None
        ),
        "enabled_overhead_ratio": (
            round(enabled_ratio, 4) if enabled_ratio is not None else None
        ),
        "disabled_overhead_max": MAX_OBS_DISABLED_OVERHEAD,
        "enabled_overhead_max": MAX_OBS_ENABLED_OVERHEAD,
        "disabled_headroom": (
            round((1.0 + MAX_OBS_DISABLED_OVERHEAD) / disabled_ratio, 4)
            if disabled_ratio
            else None
        ),
        "enabled_headroom": (
            round((1.0 + MAX_OBS_ENABLED_OVERHEAD) / enabled_ratio, 4)
            if enabled_ratio
            else None
        ),
        "matched": matched,
    }


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------
_BENCHES: Dict[str, Callable[..., Dict[str, object]]] = {
    "allocator": bench_allocator,
    "fluid": bench_fluid,
    "greedy": bench_greedy,
    "ilp_scale": bench_ilp_scale,
    "ilp_pipe": bench_ilp_pipe,
    "mesh": bench_mesh,
    "e2e": bench_e2e_experiments,
    "scale": bench_scale,
    "fluid_loop": bench_fluid_loop,
    "routing": bench_routing,
    "sweep_resume": bench_sweep_resume,
    "multi_worker": bench_multi_worker,
    "service_churn": bench_service_churn,
    "faults": bench_faults,
    "obs": bench_obs,
}

_QUICK_OVERRIDES: Dict[str, Dict[str, object]] = {
    "allocator": {"n_links": 30, "n_flows": 60, "n_events": 80},
    "fluid": {"n_pairs": 8, "n_flows": 60},
    "greedy": {"n_machines": 8, "n_workers": 7, "repeats": 2},
    "ilp_scale": {"n_tasks": 8, "n_vms": 6},
    "ilp_pipe": {"n_tasks": 8, "n_vms": 6},
    "mesh": {"n_vms": 6},
    "e2e": {"quick": True},
    "scale": {"sizes": (256,), "mega": False},
    "fluid_loop": {
        "pods": 2, "racks_per_pod": 2, "hosts_per_rack": 8,
        "num_cores": 2, "p_flow": 0.5,
    },
    "routing": {
        "pods": 2, "racks_per_pod": 2, "hosts_per_rack": 8,
        "num_cores": 2, "nx_sample": 64,
    },
    "sweep_resume": {"quick": True},
    "multi_worker": {"quick": True},
    "service_churn": {"quick": True},
    "faults": {"quick": True},
    "obs": {
        "pods": 2, "racks_per_pod": 2, "hosts_per_rack": 8,
        "num_cores": 2, "p_flow": 0.5, "repeats": 2,
    },
}


#: Benches run when no ``--only`` subset is given.  ``sweep_resume``,
#: ``multi_worker``, ``ilp_scale``, ``service_churn``, ``faults``, and
#: ``obs`` are opt-in: each is tracked in its own ``BENCH_*.json``
#: (``BENCH_sweeps.json`` / ``BENCH_ilp.json`` / ``BENCH_service.json`` /
#: ``BENCH_faults.json`` / ``BENCH_obs.json``, see docs/performance.md and
#: docs/observability.md) and run as a dedicated CI step, so the default
#: suite does not pay for (or duplicate) them.
DEFAULT_SUITE: Tuple[str, ...] = (
    "allocator", "fluid", "greedy", "mesh", "e2e", "scale",
    "fluid_loop", "routing",
)

#: Speedup floors: ``(bench, targets key, minimum, path)`` where ``path``
#: navigates from the bench's result dict to the tracked speedup (so nested
#: entries like the scale sweep's ``mega`` advance get their own floor).
#: A floor applies whenever its bench ran and the path resolves; quick runs
#: are exempt (their shrunken workloads are correctness smoke, not perf).
_TARGET_FLOORS: Tuple[Tuple[str, str, float, Tuple[str, ...]], ...] = (
    ("allocator", "allocator_speedup", TARGET_ALLOCATOR_SPEEDUP, ("speedup",)),
    ("e2e", "e2e_speedup", TARGET_E2E_SPEEDUP, ("speedup",)),
    ("ilp_scale", "ilp_speedup", TARGET_ILP_SPEEDUP, ("speedup",)),
    ("ilp_pipe", "ilp_pipe_speedup", TARGET_ILP_PIPE_SPEEDUP, ("speedup",)),
    ("scale", "scale_allocator_speedup", TARGET_SCALE_SPEEDUP, ("speedup",)),
    ("scale", "mega_fluid_speedup", TARGET_MEGA_FLUID_SPEEDUP,
     ("mega", "speedup")),
    ("fluid_loop", "fluid_loop_speedup", TARGET_FLUID_LOOP_SPEEDUP,
     ("speedup",)),
    ("routing", "routing_speedup", TARGET_ROUTING_SPEEDUP, ("speedup",)),
    ("sweep_resume", "resume_speedup", TARGET_RESUME_SPEEDUP, ("speedup",)),
    ("multi_worker", "multi_worker_parallelism", TARGET_MULTI_WORKER_SPEEDUP,
     ("scheduled_parallelism",)),
    # Telemetry overhead headrooms: (1 + budget) / measured ratio, so the
    # generic >= check bounds the ratio from above (1.0 = exactly on
    # budget, above 1.0 = under budget).
    ("obs", "obs_disabled_headroom", 1.0, ("disabled_headroom",)),
    ("obs", "obs_enabled_headroom", 1.0, ("enabled_headroom",)),
)


def bench_names() -> List[str]:
    """The registered benchmark names, in run order."""
    return list(_BENCHES)


def run_benchmarks(
    quick: bool = False,
    seed: int = 0,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the suite and return the ``BENCH_*.json`` payload."""
    selected = list(only) if only else list(DEFAULT_SUITE)
    unknown = [name for name in selected if name not in _BENCHES]
    if unknown:
        raise ValueError(f"unknown benchmark(s) {unknown}; known: {bench_names()}")

    results: Dict[str, Dict[str, object]] = {}
    for name in selected:
        kwargs: Dict[str, object] = dict(_QUICK_OVERRIDES[name]) if quick else {}
        kwargs["seed"] = seed
        results[name] = _BENCHES[name](**kwargs)

    def resolve(name: str, path: Tuple[str, ...]) -> Optional[float]:
        node: object = results.get(name)
        for key in path:
            if not isinstance(node, dict):
                return None
            node = node.get(key)
        return node if isinstance(node, (int, float)) else None

    targets: Dict[str, object] = {}
    floor_checks: List[bool] = []
    for bench, key, floor, path in _TARGET_FLOORS:
        if bench not in results:
            continue
        speedup = resolve(bench, path)
        if speedup is None:
            continue
        targets[key + "_min"] = floor
        targets[key] = speedup
        floor_checks.append(speedup >= floor)
    targets["met"] = bool(quick or all(floor_checks))
    return {
        "schema": "repro.bench/v1",
        "quick": quick,
        "seed": seed,
        "params": _env_params(),
        "benches": results,
        "targets": targets,
        "all_matched": all(entry["matched"] for entry in results.values()),
    }
